"""Legacy editable-install shim.

The project is configured in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working on offline environments without the
``wheel`` package (pip then falls back to the ``setup.py develop``
editable-install path instead of building a PEP 660 wheel).
"""

from setuptools import setup

setup()
