"""Legacy setup shim.

The project is configured in ``setup.cfg``; this file exists so that
``pip install -e .`` works on offline environments without the ``wheel``
package (pip then falls back to the ``setup.py develop`` editable-install
path instead of building a wheel).
"""

from setuptools import setup

setup()
