#!/usr/bin/env python3
"""Good-period planning: how long must the network behave for consensus to complete?

An operator question the paper answers analytically: given the synchrony
characteristics of a deployment (process speed ratio ``phi``, message delay
bound ``delta``, system size ``n``) and a fault budget ``f``, how long must a
stable ("good") period last for the system to reach agreement -- both when
the stability is there from the start (a "nice run", Theorems 5 / 7) and
when it only arrives after a period of chaos (Theorems 3 / 6)?

The example prints the closed-form answers for a range of deployments, then
validates two of them in the step-level simulator.

Run with:  python examples/good_period_planner.py
"""

from __future__ import annotations

from repro.predimpl import (
    arbitrary_p2otr_length,
    corollary4_p2otr_length,
    noninitial_to_initial_ratio,
    theorem5_initial_good_period_length,
    theorem6_good_period_length,
    theorem7_initial_good_period_length,
)
from repro.workloads import measure_theorem3, measure_theorem6


DEPLOYMENTS = [
    # (label, n, f, phi, delta)
    ("small LAN cluster", 4, 1, 1.0, 2.0),
    ("medium cluster", 7, 3, 1.0, 2.0),
    ("heterogeneous hosts", 7, 3, 2.0, 2.0),
    ("WAN replicas", 5, 2, 1.0, 20.0),
]


def print_planning_table() -> None:
    print("Closed-form good-period requirements (normalised time units):\n")
    header = (
        f"{'deployment':<22} {'n':>3} {'f':>3} {'phi':>5} {'delta':>6} "
        f"{'nice run (Thm5,x=2)':>20} {'after chaos (down, Cor4)':>25} "
        f"{'after chaos (arbitrary)':>24} {'ratio 3/2 remark':>17}"
    )
    print(header)
    for label, n, f, phi, delta in DEPLOYMENTS:
        nice = theorem5_initial_good_period_length(2, n, phi, delta)
        down = corollary4_p2otr_length(n, phi, delta)
        arbitrary = arbitrary_p2otr_length(f, n, phi, delta)
        ratio = noninitial_to_initial_ratio(2, n, phi, delta)
        print(
            f"{label:<22} {n:>3} {f:>3} {phi:>5} {delta:>6} "
            f"{nice:>20.1f} {down:>25.1f} {arbitrary:>24.1f} {ratio:>17.2f}"
        )
    print()


def validate_in_simulation() -> None:
    print("Validating two rows in the step-level simulator (measured <= bound):\n")
    for measurement in (
        measure_theorem3(4, 2, phi=1.0, delta=2.0, seed=3),
        measure_theorem6(7, 3, 2, phi=1.0, delta=2.0, seed=3),
    ):
        print(" ", measurement.row())
    print()
    print("The 'nice run' needs roughly 2/3 of the good period that a recovery")
    print("from an arbitrary bad period needs (the paper's 3/2 factor), and the")
    print("pi0-arbitrary setting is considerably more expensive than pi0-down")
    print("because round synchronisation must be re-established explicitly.")


def main() -> None:
    print_planning_table()
    validate_in_simulation()


if __name__ == "__main__":
    main()
