#!/usr/bin/env python3
"""A replicated log ("repeated consensus") surviving crash-recovery and message loss.

This is the workload the paper's introduction motivates: replication needs
consensus, and real systems experience *transient, dynamic* faults --
machines reboot, packets are dropped -- rather than clean crash-stop
failures.  The example replicates a small command log over four replicas by
running one instance of the full HO stack (OneThirdRule over Algorithm 2 on
the step-level system model) per log slot, while every replica crashes and
recovers at some point and the network loses half of the messages outside
the good periods.

The point being demonstrated (Section 3.3): the *same* consensus algorithm
and the *same* predicate implementation are reused, unchanged, no matter
whether the run is fault-free, crash-stop or crash-recovery.

Run with:  python examples/crash_recovery_replicated_log.py
"""

from __future__ import annotations

from repro.algorithms import OneThirdRule
from repro.analysis import check_consensus
from repro.predimpl import build_down_stack
from repro.sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)

N_REPLICAS = 4
PARAMS = SynchronyParams(phi=1.0, delta=2.0)
#: commands proposed by each replica, per log slot
PROPOSALS = [
    ["put:x=1", "put:x=2", "del:y", "put:z=9"],
    ["put:y=4", "put:x=2", "cas:x", "put:z=9"],
    ["put:x=1", "get:x", "del:y", "append:z"],
]


def decide_slot(slot: int, proposals: list[str], seed: int) -> dict:
    """Run one consensus instance (one log slot) under crash-recovery faults."""
    stack = build_down_stack(OneThirdRule(N_REPLICAS), proposals, PARAMS)

    # A chaotic bad period (loss + every replica crashing and recovering),
    # followed by a good period long enough for the predicate to hold.
    bad_length = 80.0
    schedule = PeriodSchedule.single_good_period(
        N_REPLICAS, start=bad_length, length=300.0, kind=GoodPeriodKind.PI0_DOWN
    )
    faults = FaultSchedule.crash_recovery(
        [(replica, 10.0 + 15.0 * replica, 40.0 + 10.0 * replica) for replica in range(N_REPLICAS)]
    )
    simulator = SystemSimulator(
        stack.programs,
        PARAMS,
        schedule,
        seed=seed,
        trace=stack.trace,
        fault_schedule=faults,
        bad_network=BadPeriodNetwork(loss_probability=0.5, min_delay=1.0, max_delay=30.0),
        bad_process_behavior=BadPeriodProcessBehavior(
            min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
        ),
    )
    trace = simulator.run(until=bad_length + 300.0)
    verdict = check_consensus(trace, proposals)
    chosen = next(iter(verdict.decisions.values())) if verdict.decisions else None
    return {
        "slot": slot,
        "chosen": chosen,
        "verdict": verdict,
        "crashes": trace.crashes,
        "recoveries": trace.recoveries,
        "latency": trace.last_decision_time(range(N_REPLICAS)),
    }


def main() -> None:
    print(f"Replicating a log over {N_REPLICAS} replicas "
          f"(crash-recovery + message loss, phi={PARAMS.phi}, delta={PARAMS.delta})\n")
    log: list[str] = []
    for slot, proposals in enumerate(PROPOSALS):
        result = decide_slot(slot, proposals, seed=slot + 1)
        verdict = result["verdict"]
        status = "OK " if verdict.solved else "FAIL"
        print(
            f"slot {slot}: chose {result['chosen']!r:<12} [{status}] "
            f"crashes={result['crashes']} recoveries={result['recoveries']} "
            f"decision time={result['latency']:.1f}"
        )
        assert verdict.safe, verdict.violations
        log.append(result["chosen"])
    print("\nreplicated log:", log)


if __name__ == "__main__":
    main()
