#!/usr/bin/env python3
"""Failure detectors vs communication predicates under identical fault injections.

Reproduces, as a runnable demo, the argument of Sections 1-2 and Appendix A:

* the Chandra-Toueg ◇S algorithm (crash-stop, reliable links),
* the Aguilera et al. ◇Su algorithm (crash-recovery, lossy links, stable
  storage, retransmission), and
* the HO stack (OneThirdRule over the Algorithm 2 predicate implementation)

are each run under four fault models: fault-free, crash-stop, crash-recovery
and lossy links.  The failure-detector algorithms behave exactly as the
paper predicts -- the crash-stop one stops terminating as soon as faults are
transient or dynamic, and handling those faults required a visibly more
complex, different algorithm -- while the single HO stack covers everything.

Run with:  python examples/failure_detector_comparison.py
"""

from __future__ import annotations

from repro.analysis import algorithm_complexity_summary
from repro.workloads import FAULT_MODELS, compare_stacks


def main() -> None:
    print("Running every stack under every fault model (this takes a few seconds)...\n")
    results = compare_stacks(fault_models=FAULT_MODELS, n=4, seed=0)

    print(f"{'stack':<16} {'fault model':<16} {'safe':<6} {'terminated':<11} "
          f"{'latency':<9} messages")
    for result in results:
        latency = (
            "-" if result.metrics.last_decision_time is None
            else f"{result.metrics.last_decision_time:.1f}"
        )
        print(
            f"{result.stack:<16} {result.fault_model:<16} "
            f"{'yes' if result.safe else 'NO':<6} "
            f"{'yes' if result.verdict.termination else 'no':<11} "
            f"{latency:<9} {result.metrics.messages_sent}"
        )

    print("\nStructural complexity of the algorithms (Section 2.1 made quantitative):\n")
    for item in algorithm_complexity_summary().values():
        print(f"  {item.name}")
        print(f"    fault model handled : {item.fault_model}")
        print(f"    message kinds       : {item.message_kinds}")
        print(f"    state variables     : {item.state_variables}")
        print(f"    stable storage      : {item.needs_stable_storage}")
        print(f"    retransmission task : {item.needs_retransmission_task}")
        print(f"    failure detector    : {item.needs_failure_detector}")
        print(
            "    needs a different algorithm for crash-recovery: "
            f"{item.distinct_from_crash_stop_variant}"
        )
        print()

    print("Take-away: the failure-detector approach needed a new detector and a")
    print("substantially more complex algorithm to move from crash-stop to")
    print("crash-recovery, whereas the HO algorithmic layer is reused verbatim --")
    print("only the predicate implementation underneath deals with recoveries.")


if __name__ == "__main__":
    main()
