#!/usr/bin/env python3
"""Quickstart: consensus in the Heard-Of model in a dozen lines.

Runs the OneThirdRule algorithm (Algorithm 1 of the paper) on the round-level
HO machine, first in a fault-free environment, then under heavy message
loss, and finally under a *composed* adversary built with the
:mod:`repro.adversaries` combinators -- a churning partition that heals into
a crash-free-but-lossy regime.  After each run the communication predicates
of Table 1 are checked on the recorded heard-of collection -- and monitored
*online* by their streaming duals, which reach the same verdicts without
the collection ever being needed.  Then a monitored run demonstrates
early stopping ("end the run once P_su held for 5 consecutive rounds"),
and a small sweep grid is run through the resumable JSONL pipeline: the
"first attempt" dies halfway, and the second call picks up exactly where
it died, predicate reports included.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

from repro.adversaries import (
    FaultFreeOracle,
    IntersectOracle,
    RandomOmissionOracle,
    RotatingPartitionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from repro.algorithms import OneThirdRule
from repro.analysis import check_consensus
from repro.core import HOMachine, POtr, PRestrOtr
from repro.predicates import MonitorBank, StopAfterHeld, build_monitor
from repro.runner import JsonlSink, build_grid, run_sweep


def run(label: str, oracle, initial_values) -> None:
    algorithm = OneThirdRule(len(initial_values))
    n = len(initial_values)
    # Streaming monitors watch the predicates online, one round at a time,
    # through the engine's observer hook -- no recorded collection needed.
    bank = MonitorBank(n, [build_monitor("p_otr", n), build_monitor("p_restr_otr", n)])
    machine = HOMachine(algorithm, oracle, initial_values, observers=[bank])
    trace = machine.run_until_decision(max_rounds=50)
    verdict = check_consensus(trace, initial_values)
    reports = bank.reports()

    print(f"--- {label} ---")
    print(f"initial values : {initial_values}")
    print(f"decisions      : {trace.decisions()}")
    print(f"rounds executed: {trace.rounds_executed()}")
    print(f"P_otr holds    : {POtr().holds(trace.ho_collection)} "
          f"(monitored online: {reports['p_otr'].holds}, "
          f"first held at round {reports['p_otr'].first_hold_round})")
    print(f"P_restr_otr    : {PRestrOtr().holds(trace.ho_collection)} "
          f"(monitored online: {reports['p_restr_otr'].holds})")
    print(f"integrity      : {verdict.integrity}")
    print(f"agreement      : {verdict.agreement}")
    print(f"termination    : {verdict.termination}")
    print()


def main() -> None:
    n = 5
    initial_values = [30, 10, 20, 50, 40]

    # A fault-free environment: every process hears of everyone, every round.
    run("fault-free environment", FaultFreeOracle(n), initial_values)

    # A lossy environment: every transmission is dropped with probability 0.4.
    # Transmission faults delay the decision but never endanger safety.
    run(
        "lossy environment (40% transmission faults)",
        RandomOmissionOracle(n, loss_probability=0.4, seed=7),
        initial_values,
    )

    # A composed adversary, built with the oracle combinators: phases are
    # scripted with SequenceOracle (a churning partition, then a transient
    # crash of process 4, then calm), and IntersectOracle overlays light
    # independent loss on the whole schedule.  Every benign fault model is
    # just set algebra on heard-of sets.
    phases = SequenceOracle(
        n,
        [
            (RotatingPartitionOracle(n, blocks=2, period=3, churn=0.5, seed=1), 8),
            (StaticCrashOracle(n, {4: 1}), 4),
            (FaultFreeOracle(n), None),
        ],
    )
    composed = IntersectOracle(n, phases, RandomOmissionOracle(n, 0.1, seed=2))
    run("composed adversary (partition churn -> transient crash -> calm, +10% loss)",
        composed, initial_values)

    # An early-stopping monitored run: the bank's StopAfterHeld policy ends
    # the run once P_su held for 5 consecutive rounds -- no need to guess a
    # horizon, and the compact report says when the good period started.
    print("--- early-stopping monitored run ---")
    oracle = SequenceOracle(
        n,
        [
            (RotatingPartitionOracle(n, blocks=2, period=3, churn=0.5, seed=3), 20),
            (FaultFreeOracle(n), None),  # the good period begins at round 21
        ],
    )
    bank = MonitorBank(
        n,
        [build_monitor("p_su", n), build_monitor("p_2otr", n)],
        stop_policies=[StopAfterHeld(5, predicate="p_su")],
    )
    machine = HOMachine(OneThirdRule(n), oracle, initial_values, observers=[bank])
    while machine.current_round < 200 and not machine.engine.stop_requested:
        machine.run_round()
    report = bank.reports()["p_su"]
    print(f"stopped after round {machine.current_round} of 200: "
          f"P_su held {report.longest_good_run} rounds in a row "
          f"(first space-uniform round: {report.first_good_round}, "
          f"good-round fraction: {report.satisfaction:.2f})")
    print()

    # A resumable *monitored* sweep: grids stream one JSON line per finished
    # run into a JSONL sink -- predicate reports riding along -- so a killed
    # grid restarts where it died.  Here the "first attempt" only executes
    # half the grid; the resumed call skips those cells and completes the rest.
    print("--- resumable JSONL sweep (with streamed predicate reports) ---")
    grid = build_grid(
        ["ho-round-mobile-omission-monitored"],
        ["fault-free", "crash-stop"],
        seeds=[0, 1],
        n=4,
    )
    jsonl = Path(tempfile.mkdtemp(prefix="repro-quickstart-")) / "sweep.jsonl"
    run_sweep(grid[: len(grid) // 2], sinks=[JsonlSink(str(jsonl))])  # "killed" here
    print(f"first attempt : {len(jsonl.read_text().splitlines())}/{len(grid)} "
          f"cells persisted to {jsonl}")
    result = run_sweep(
        grid,
        sinks=[JsonlSink(str(jsonl), append=True)],
        resume_from=str(jsonl),
    )
    print(f"resumed sweep : {result.resumed} cells skipped, "
          f"{len(result) - result.resumed} executed")
    print(json.dumps(result.aggregate(), indent=2))
    print()

    # Batched replicas: the experiments the paper reports are distributions
    # over runs -- same scenario, R seeds, aggregate.  With replicas=R each
    # grid cell becomes ONE unit of work: on the batch backend the R runs
    # execute in vectorised lockstep ((R, n) estimate arrays, uint64 HO mask
    # arrays) and are bit-identical, seed by seed, to R scalar runs.  The
    # cell record carries every replica's outcome plus dispersion, so you
    # get a distribution, not a point estimate, for one cell's cost.
    print("--- batched replicas: 64 seeds per cell, one vectorised batch each ---")
    result = run_sweep(
        build_grid(["ho-classic-otr"], ["crash-stop", "lossy"], seeds=[0], n=8),
        replicas=64,
        backend="auto",
    )
    for record in result.records:
        cell = record.replicas["aggregates"]
        latency = cell["last_decision_time"]
        print(f"{record.fault_model:<11} solve_rate={cell['solve_rate']:.2f} "
              f"decision round mean={latency['mean']:.1f} "
              f"std={latency['std']:.1f} max={latency['max']:.0f} "
              f"(over {cell['replicas']} replicas)")
    print()

    # Super-batching: backend="super" goes one step further -- the WHOLE
    # grid becomes one unit of work.  Every cell (here: two algorithms x
    # two dynamic adversary families x two fault models, 32 seeds each)
    # packs its replicas into one padded row space, and a single lockstep
    # loop steps all of them, retiring rows as they decide.  The dynamic
    # families' counter-based draws make this possible: each draw is a pure
    # function of (stream key, round, process), so the array path replays
    # the scalar oracles bit for bit with no per-replica loop.  Outcomes
    # stay bit-identical to scalar runs, seed by seed.
    print("--- super-batching: the whole grid as ONE lockstep unit ---")
    result = run_sweep(
        build_grid(
            ["ho-classic-otr", "ho-round-mobile-omission", "ho-round-bursty-loss"],
            ["fault-free", "crash-stop"],
            seeds=[0],
            n=8,
        ),
        replicas=32,
        backend="super",
    )
    for record in result.records:
        cell = record.replicas["aggregates"]
        print(f"{record.scenario:<26} {record.fault_model:<11} "
              f"backend={record.replicas['backend']:<7} "
              f"solve_rate={cell['solve_rate']:.2f} "
              f"(over {cell['replicas']} replicas)")
    print()

    # The compiled tier: backend="compiled" fuses each cell's WHOLE round
    # loop into one nopython call per word chunk -- numba JIT-compiles the
    # chunk cores when it is importable (the "compiled" extra; "fast"
    # pulls it in), and without numba every cell degrades to the numpy
    # batch path with the reason recorded on the cell record.  Outcomes
    # are bit-identical on every tier, so which one executed is purely a
    # performance fact, not a scientific one.
    print("--- the compiled tier: JIT'd round loops (or a recorded fallback) ---")
    from repro._optional import have_numba

    result = run_sweep(
        build_grid(
            ["ho-classic-otr", "ho-round-bursty-loss"], ["fault-free"], seeds=[0], n=8
        ),
        replicas=32,
        backend="compiled",
    )
    print(f"numba importable: {have_numba()}")
    for record in result.records:
        cell = record.replicas["aggregates"]
        print(f"{record.scenario:<26} backend={record.replicas['backend']} "
              f"solve_rate={cell['solve_rate']:.2f} "
              f"(over {cell['replicas']} replicas)")


if __name__ == "__main__":
    main()
