#!/usr/bin/env python3
"""Quickstart: consensus in the Heard-Of model in a dozen lines.

Runs the OneThirdRule algorithm (Algorithm 1 of the paper) on the round-level
HO machine, first in a fault-free environment and then under heavy message
loss, and checks the communication predicates of Table 1 on the recorded
heard-of collection.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.algorithms import OneThirdRule
from repro.analysis import check_consensus
from repro.core import (
    FaultFreeOracle,
    HOMachine,
    POtr,
    PRestrOtr,
    RandomOmissionOracle,
)


def run(label: str, oracle, initial_values) -> None:
    algorithm = OneThirdRule(len(initial_values))
    machine = HOMachine(algorithm, oracle, initial_values)
    trace = machine.run_until_decision(max_rounds=50)
    verdict = check_consensus(trace, initial_values)

    print(f"--- {label} ---")
    print(f"initial values : {initial_values}")
    print(f"decisions      : {trace.decisions()}")
    print(f"rounds executed: {trace.rounds_executed()}")
    print(f"P_otr holds    : {POtr().holds(trace.ho_collection)}")
    print(f"P_restr_otr    : {PRestrOtr().holds(trace.ho_collection)}")
    print(f"integrity      : {verdict.integrity}")
    print(f"agreement      : {verdict.agreement}")
    print(f"termination    : {verdict.termination}")
    print()


def main() -> None:
    n = 5
    initial_values = [30, 10, 20, 50, 40]

    # A fault-free environment: every process hears of everyone, every round.
    run("fault-free environment", FaultFreeOracle(n), initial_values)

    # A lossy environment: every transmission is dropped with probability 0.4.
    # Transmission faults delay the decision but never endanger safety.
    run(
        "lossy environment (40% transmission faults)",
        RandomOmissionOracle(n, loss_probability=0.4, seed=7),
        initial_values,
    )


if __name__ == "__main__":
    main()
