"""E5 -- Theorem 7: minimal *initial* "pi0-arbitrary" good period for P_k.

The initial-good-period (nice run) counterpart of Theorem 6: Algorithm 3
needs ``(x-1)[tau_0*phi + delta + n*phi + 2*phi] + tau_0*phi + phi`` when the
good period starts at time 0 and every process starts in round 1.
"""

from __future__ import annotations


from repro.predimpl import theorem6_good_period_length, theorem7_initial_good_period_length
from repro.runner import run_measurement_sweep

SWEEP = [
    # (n, f, x, delta)
    (3, 1, 2, 2.0),
    (4, 1, 1, 2.0),
    (4, 1, 2, 2.0),
    (4, 1, 3, 2.0),
    (4, 1, 2, 5.0),
    (5, 2, 2, 2.0),
    (7, 3, 2, 2.0),
]


def test_theorem7_sweep(benchmark, report):
    def run_sweep():
        return run_measurement_sweep(
            "theorem7",
            [dict(n=n, f=f, x=x, delta=delta) for n, f, x, delta in SWEEP],
            workers=2,
        )

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E5  Theorem 7: initial pi0-arbitrary good-period length for P_k",
        [m.row() for m in measurements],
    )
    for measurement in measurements:
        assert measurement.within_bound, measurement.row()


def test_initial_cheaper_than_non_initial(benchmark, report):
    """For every swept point, the Theorem 7 bound is below the Theorem 6 bound."""

    def compute():
        rows = []
        for n, f, x, delta in SWEEP:
            initial = theorem7_initial_good_period_length(x, n, 1.0, delta)
            non_initial = theorem6_good_period_length(x, n, 1.0, delta)
            rows.append((n, f, x, delta, initial, non_initial))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = []
    for n, f, x, delta, initial, non_initial in rows:
        lines.append(
            f"n={n:<3} f={f:<2} x={x:<2} delta={delta:<5} "
            f"initial={initial:8.1f}  non-initial={non_initial:8.1f}  "
            f"ratio={non_initial / initial:5.2f}"
        )
        assert initial < non_initial
    report("E5b Theorem 7 vs Theorem 6 (initial vs non-initial bounds)", lines)
