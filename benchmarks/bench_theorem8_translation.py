"""E6 -- Theorem 8: the f+1-round translation of P_k into P_su (Algorithm 4).

Over heard-of collections that only guarantee kernel rounds (``P_k``), the
translation must give every pi0 process the *same* macro-round heard-of set
containing pi0, for every macro-round of ``f+1`` inner rounds, whenever
``n > 2f``.  The benchmark sweeps ``(n, f)``, runs many macro-rounds over
adversarial kernel-only oracles and reports the fraction of space-uniform
macro-rounds (the claim is: all of them) plus the end-to-end consensus
latency in macro-rounds of OneThirdRule over the translation.
"""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.core import HOMachine, KernelOnlyOracle
from repro.predimpl import KernelToUniformTranslation

SWEEP = [
    # (n, f, macro_rounds, seed)
    (3, 1, 6, 0),
    (4, 1, 6, 0),
    (5, 2, 6, 0),
    (5, 2, 6, 1),
    (7, 3, 5, 0),
    (9, 4, 4, 0),
]


def run_translation(n, f, macro_rounds, seed):
    pi0 = frozenset(range(n - f))
    translation = KernelToUniformTranslation(OneThirdRule(n), f)
    machine = HOMachine(translation, KernelOnlyOracle(n, pi0, seed=seed), list(range(n)))
    machine.run(macro_rounds * (f + 1))
    uniform = 0
    contains_pi0 = 0
    pi0_projection_uniform = 0
    total = 0
    for boundary in range(f + 1, macro_rounds * (f + 1) + 1, f + 1):
        records = [
            record
            for record in machine.trace.records
            if record.round == boundary and record.process in pi0
        ]
        new_hos = {record.state_after.last_new_ho for record in records}
        total += 1
        if len(new_hos) == 1 and pi0.issubset(next(iter(new_hos))):
            uniform += 1
        if all(pi0.issubset(ho) for ho in new_hos):
            contains_pi0 += 1
        if len({ho & pi0 for ho in new_hos}) == 1:
            pi0_projection_uniform += 1
    decisions = {
        p: translation.decision(machine.state(p))
        for p in pi0
        if translation.decision(machine.state(p)) is not None
    }
    decision_macro_rounds = [
        record.state_after.macro_round - 1
        for record in machine.trace.records
        if record.process in pi0 and record.decision is not None
    ]
    return {
        "n": n,
        "f": f,
        "macro_rounds": total,
        "uniform_macro_rounds": uniform,
        "contains_pi0": contains_pi0,
        "pi0_projection_uniform": pi0_projection_uniform,
        "pi0_decided": len(decisions) == len(pi0),
        "agreement": len(set(decisions.values())) <= 1,
        "first_decision_macro_round": min(decision_macro_rounds) if decision_macro_rounds else None,
    }


def test_theorem8_translation_sweep(benchmark, report):
    def run_sweep():
        return [run_translation(n, f, rounds, seed) for n, f, rounds, seed in SWEEP]

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = [
        f"{'n':<3} {'f':<3} {'macro rounds':<13} {'space uniform':<14} "
        f"{'contains pi0':<13} {'pi0 projection uniform':<23} "
        f"{'pi0 decided':<12} {'agreement':<10} first decision (macro round)"
    ]
    for row in rows:
        lines.append(
            f"{row['n']:<3} {row['f']:<3} {row['macro_rounds']:<13} "
            f"{row['uniform_macro_rounds']:<14} {row['contains_pi0']:<13} "
            f"{row['pi0_projection_uniform']:<23} {str(row['pi0_decided']):<12} "
            f"{str(row['agreement']):<10} {row['first_decision_macro_round']}"
        )
    lines.append("")
    lines.append(
        "Reproduction note: with adversarial kernel-only collections the published"
    )
    lines.append(
        "Algorithm 4 can leave pi0 members disagreeing about processes *outside* pi0"
    )
    lines.append(
        "(see EXPERIMENTS.md, E6); every macro heard-of set still contains pi0, the"
    )
    lines.append(
        "pi0-projection is identical, and consensus over the translation is reached."
    )
    report("E6  Theorem 8: P_k -> P_su translation in f+1 rounds", lines)
    for row in rows:
        # Provable part of Theorem 8 under adversarial extras: every macro
        # heard-of set of a pi0 process contains pi0, the pi0-projections are
        # identical, and consensus over the translation succeeds.
        assert row["contains_pi0"] == row["macro_rounds"]
        assert row["pi0_projection_uniform"] == row["macro_rounds"]
        # Most macro rounds are fully space-uniform even against the adversary.
        assert row["uniform_macro_rounds"] >= row["macro_rounds"] - 1
        assert row["agreement"]
        # OneThirdRule over the translation decides whenever the macro-level
        # quorum condition |pi0| > 2n/3 holds (Theorem 2 needs |Pi0| > 2n/3);
        # for the other (n, f) points the translation itself is still checked
        # above but pi0 alone is not a OneThirdRule quorum.
        if 3 * (row["n"] - row["f"]) > 2 * row["n"]:
            assert row["pi0_decided"]


def test_translation_requires_n_greater_than_2f(benchmark, report):
    """The n > 2f hypothesis of Theorem 8 is enforced by the implementation."""

    def check():
        with pytest.raises(ValueError):
            KernelToUniformTranslation(OneThirdRule(4), f=2)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)
    report(
        "E6b Theorem 8 hypothesis",
        ["n = 4, f = 2 rejected: the translation requires n > 2f"],
    )
