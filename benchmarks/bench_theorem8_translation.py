#!/usr/bin/env python3
"""Step-path throughput benchmark: the step backends vs the scalar simulator.

Runs the crash-recovery translation stack's step cells -- OneThirdRule over
the down-good predicate stack (Theorems 3-5) simulated at *step* level with
seed-shuffled initial values -- as R lockstep replicas on both step-path
execution backends and reports *replica-round throughput*.  The scalar
backend (``step-scalar``) pays the full ``SystemSimulator`` event loop per
replica: every send/receive/timeout step of every process.  The batch
backend (``step-batch``) lowers the fault-free down-good cell onto the
vectorized round engine, so the whole cell costs one array program per
round.  The scalar side is timed on a small replica subset and normalised
per replica; the batched side runs the full cell.  Before a row's timing
is accepted, the batched outcomes on the shared seed prefix must equal the
scalar outcomes exactly (decisions, rounds, message counts, per-round
fingerprints).

A second experiment times the Theorem 8 translation cell (Algorithm 4:
``f+1`` kernel rounds emulate one P_su macro-round) on the round-level
``scalar``/``batch`` backends via the batched translation kernel, and
re-checks the theorem's claims on the outcomes: every pi0 process decides
(the default f keeps ``3(n - f) > 2n``), at the macro-round cadence, with
agreement inside every replica.

Emits ``BENCH_step.json`` (schema ``repro-bench-step/1``) next to
BENCH_batch/BENCH_rounds/BENCH_sweep so CI can track the trajectory::

    python benchmarks/bench_theorem8_translation.py --sizes 16 64 --replica-counts 64 256
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro._optional import have_numpy  # noqa: E402
from repro.rounds.backend import ExecutionBackend, ReplicaBatch, get_backend  # noqa: E402
from repro.workloads.theorems import (  # noqa: E402
    build_step_batch,
    build_translation_batch,
)

SCHEMA = "repro-bench-step/1"

FAULT_MODEL = "fault-free"


def subset_batch(batch: ReplicaBatch, replicas: int) -> ReplicaBatch:
    """The same cell restricted to its first ``replicas`` seeds."""
    return ReplicaBatch(
        n=batch.n,
        tasks=batch.tasks[:replicas],
        max_rounds=batch.max_rounds,
        scope_mask=batch.scope_mask,
        run_full_horizon=batch.run_full_horizon,
        monitor_factory=batch.monitor_factory,
        monitor_spec=batch.monitor_spec,
        fingerprints=batch.fingerprints,
    )


def time_backend(backend: ExecutionBackend, build, repeats: int):
    best = float("inf")
    outcomes = None
    for _ in range(repeats):
        batch = build()
        started = time.perf_counter()
        outcomes = backend.run(batch)
        best = min(best, time.perf_counter() - started)
    return best, outcomes


def time_cell(
    scalar_name: str,
    batch_name: str,
    build,
    replicas: int,
    scalar_replicas: int,
    repeats: int,
):
    """Time one cell on both backends; pin the shared seed prefix.

    The scalar side runs only the first ``scalar_replicas`` replicas (the
    full cell would dominate CI wall clock) and is normalised per replica;
    the batched outcomes on those replicas must match it bit for bit --
    the same golden-fingerprint pin the backend tests enforce.
    """
    scalar_replicas = min(scalar_replicas, replicas)
    scalar_seconds, scalar_outcomes = time_backend(
        get_backend(scalar_name), lambda: subset_batch(build(), scalar_replicas), repeats
    )
    batch_seconds, batch_outcomes = time_backend(get_backend(batch_name), build, repeats)
    assert batch_outcomes[:scalar_replicas] == scalar_outcomes, (
        f"backend divergence on the shared seed prefix ({scalar_name} vs {batch_name})"
    )
    rounds = build().max_rounds
    scalar_throughput = scalar_replicas * rounds / scalar_seconds
    batch_throughput = replicas * rounds / batch_seconds
    return {
        "replicas": replicas,
        "scalar_replicas": scalar_replicas,
        "rounds": rounds,
        "scalar_seconds": round(scalar_seconds, 6),
        "batch_seconds": round(batch_seconds, 6),
        "scalar_replica_rounds_per_second": round(scalar_throughput, 1),
        "batch_replica_rounds_per_second": round(batch_throughput, 1),
        "speedup": round(batch_throughput / scalar_throughput, 2),
    }, batch_outcomes


def benchmark_step(
    sizes: List[int],
    replica_counts: List[int],
    rounds: int,
    scalar_replicas: int,
    repeats: int,
) -> List[Dict[str, Any]]:
    results = []
    for n in sizes:
        for replicas in replica_counts:
            def build(n=n, replicas=replicas):
                return build_step_batch(
                    FAULT_MODEL,
                    n=n,
                    seeds=range(1, replicas + 1),
                    rounds=rounds,
                    run_full_horizon=True,
                ).batch

            row, _ = time_cell(
                "step-scalar", "step-batch", build, replicas, scalar_replicas, repeats
            )
            row = {"n": n, **row}
            results.append(row)
            print(
                f"step        n={n:<4} R={replicas:<5} "
                f"scalar: {row['scalar_replica_rounds_per_second']:10.1f} rr/s   "
                f"batch: {row['batch_replica_rounds_per_second']:10.1f} rr/s   "
                f"speedup: {row['speedup']:8.2f}x"
            )
    return results


def benchmark_translation(
    sizes: List[int],
    replicas: int,
    f: int,
    macro_rounds: int,
    scalar_replicas: int,
    repeats: int,
) -> List[Dict[str, Any]]:
    results = []
    rounds = macro_rounds * (f + 1)
    for n in sizes:
        def build(n=n):
            return build_translation_batch(
                FAULT_MODEL,
                n=n,
                seeds=range(1, replicas + 1),
                f=f,
                rounds=rounds,
                run_full_horizon=True,
            ).batch

        row, outcomes = time_cell(
            "scalar", "batch", build, replicas, scalar_replicas, repeats
        )
        # Theorem 8, re-checked on every replica of the timed cell: all of
        # pi0 decides (f keeps 3(n - f) > 2n), in agreement, at the
        # macro-round cadence of f+1 kernel rounds.
        pi0 = set(range(n - f))
        for outcome in outcomes:
            assert pi0 <= set(outcome.decisions), outcome.seed
            assert len({outcome.decisions[p] for p in pi0}) == 1, outcome.seed
            assert all(
                outcome.decision_rounds[p] % (f + 1) == 0 for p in pi0
            ), outcome.seed
        row = {"n": n, "f": f, **row}
        results.append(row)
        print(
            f"translation n={n:<4} R={replicas:<5} "
            f"scalar: {row['scalar_replica_rounds_per_second']:10.1f} rr/s   "
            f"batch: {row['batch_replica_rounds_per_second']:10.1f} rr/s   "
            f"speedup: {row['speedup']:8.2f}x"
        )
    return results


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[16, 64],
        help="system sizes to sweep (default: 16 64)",
    )
    parser.add_argument(
        "--replica-counts", nargs="+", type=int, default=[64, 256],
        help="replica counts per step cell (default: 64 256)",
    )
    parser.add_argument(
        "--rounds", type=int, default=8,
        help="rounds per step replica, full horizon (default: 8)",
    )
    parser.add_argument(
        "--scalar-replicas", type=int, default=2,
        help="replica subset timed on the scalar backends (default: 2)",
    )
    parser.add_argument(
        "--translation-replicas", type=int, default=64,
        help="replicas of the Theorem 8 translation cells (default: 64)",
    )
    parser.add_argument(
        "--translation-f", type=int, default=1,
        help="resilience of the translation cells (default: 1)",
    )
    parser.add_argument(
        "--macro-rounds", type=int, default=6,
        help="macro-rounds per translation replica (default: 6)",
    )
    parser.add_argument(
        "--skip-translation", action="store_true",
        help="skip the Theorem 8 translation-cell experiment",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats, best-of (default: 2)"
    )
    parser.add_argument(
        "--json", default="BENCH_step.json",
        help="output path (default: BENCH_step.json)",
    )
    args = parser.parse_args(argv)

    if not have_numpy():
        print(
            "warning: numpy unavailable -- the batched backends will run "
            "their scalar fallbacks and speedups will be ~1x",
            file=sys.stderr,
        )
    payload: Dict[str, Any] = {
        "schema": SCHEMA,
        "numpy": have_numpy(),
        "environment": {
            "step_cell": "down-good fault-free",
            "algorithm": "one-third-rule",
            "translation": "kernel-to-uniform (Algorithm 4)",
        },
        "repeats": args.repeats,
        "results": benchmark_step(
            args.sizes, args.replica_counts, args.rounds,
            args.scalar_replicas, args.repeats,
        ),
    }
    if not args.skip_translation:
        payload["translation"] = benchmark_translation(
            args.sizes, args.translation_replicas, args.translation_f,
            args.macro_rounds, args.scalar_replicas, args.repeats,
        )
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
