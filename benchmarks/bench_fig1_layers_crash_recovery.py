"""E7 -- Figure 1 and Section 3.3: one algorithm, every benign fault model.

Figure 1 separates the HO algorithmic layer from the predicate
implementation.  Section 3.3's pay-off: Algorithm 1 is used *unchanged* in
the crash-stop and the crash-recovery model -- recoveries are handled
entirely below the communication-predicate interface.  The benchmark runs
the identical stack (OneThirdRule over Algorithm 2) under four fault models
and reports safety, termination, decision latency and message counts.
"""

from __future__ import annotations


from repro.runner import build_grid, run_sweep
from repro.workloads import FAULT_MODELS, run_ho_stack


def test_same_stack_under_every_fault_model(benchmark, report):
    def run_all():
        specs = build_grid(["ho-stack"], FAULT_MODELS, seeds=(0, 1), n=4)
        # this consumer wants the full ScenarioResult of every cell, so it
        # opts into shipping results through the worker pool
        sweep = run_sweep(specs, workers=2, keep_results=True)
        return [record.result for record in sweep.records]

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report(
        "E7  Figure 1 / Section 3.3: OneThirdRule over Algorithm 2, unchanged, "
        "under every benign fault model",
        [result.row() for result in results],
    )
    for result in results:
        assert result.safe, result.row()
        assert result.verdict.termination, result.row()


def test_decision_latency_scales_with_system_size(benchmark, report):
    def run_sizes():
        return {n: run_ho_stack("fault-free", n=n, seed=0) for n in (3, 4, 6, 8)}

    results = benchmark.pedantic(run_sizes, rounds=1, iterations=1)
    lines = [
        f"n={n:<3} latency={result.metrics.last_decision_time:8.1f} "
        f"messages={result.metrics.messages_sent}"
        for n, result in results.items()
    ]
    report("E7b Decision latency of the HO stack vs system size (nice runs)", lines)
    latencies = [result.metrics.last_decision_time for result in results.values()]
    assert latencies == sorted(latencies)
