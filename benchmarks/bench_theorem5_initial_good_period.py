"""E3 -- Theorem 5 and the 3/2 remark: initial good periods ("nice runs").

Measures the initial good-period length Algorithm 2 needs for ``x``
space-uniform rounds (the nice-run scenario), checks it against
``x(2*delta+(n+2)*phi+1)*phi``, and reproduces the paper's closing remark of
Section 4.2.1: the ratio between the non-initial (Theorem 3) and initial
(Theorem 5) lengths is approximately 3/2 for the relevant value ``x = 2``.
"""

from __future__ import annotations

import pytest

from repro.predimpl import noninitial_to_initial_ratio
from repro.runner import run_measurement_sweep

SWEEP = [
    # (n, x, delta)
    (3, 2, 2.0),
    (4, 1, 2.0),
    (4, 2, 2.0),
    (4, 3, 2.0),
    (4, 2, 5.0),
    (6, 2, 2.0),
    (8, 2, 2.0),
]


def test_theorem5_sweep(benchmark, report):
    def run_sweep():
        return run_measurement_sweep(
            "theorem5",
            [dict(n=n, x=x, delta=delta) for n, x, delta in SWEEP],
            workers=2,
        )

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E3  Theorem 5: initial good-period length for P_su (nice runs)",
        [m.row() for m in measurements],
    )
    for measurement in measurements:
        assert measurement.within_bound, measurement.row()
        # In the worst-case simulation the nice-run bound is tight.
        assert measurement.measured == pytest.approx(measurement.bound)


def test_factor_three_halves(benchmark, report):
    """The factor ~3/2 between non-initial and initial good periods for x = 2."""

    def run():
        sizes = (4, 6, 8)
        ratios = run_measurement_sweep(
            "ratio_noninitial_vs_initial", [dict(n=n, seed=0) for n in sizes], workers=2
        )
        return dict(zip(sizes, ratios))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'n':<4} {'bound ratio':<12} {'measured ratio':<15} analytic ratio"]
    for n, result in results.items():
        lines.append(
            f"{n:<4} {result['bound_ratio']:<12.3f} "
            f"{result.get('measured_ratio', float('nan')):<15.3f} "
            f"{noninitial_to_initial_ratio(2, n, 1.0, 2.0):.3f}"
        )
    report("E3b Section 4.2.1 remark: non-initial vs initial ratio (x = 2)", lines)
    for result in results.values():
        assert 1.3 <= result["bound_ratio"] <= 1.7
        if "measured_ratio" in result:
            assert result["measured_ratio"] <= result["bound_ratio"] + 0.2
