#!/usr/bin/env python3
"""Replica-throughput benchmark: the batch backend vs the scalar loop.

Runs the same oracle-driven cell -- OneThirdRule under the classic
crash-stop environment with seed-shuffled initial values -- as R seeded
replicas on both execution backends and reports *replica-round throughput*
(replica-rounds executed per second).  The scalar loop pays the full Python
interpreter cost once per (replica, process, round); the batch backend pays
it once per round, so the speedup is interpreter-overhead elimination --
data parallelism that works even on a single core, which is exactly what
the sweep harness needs on one-core hosts where process pools buy nothing.

Emits ``BENCH_batch.json`` (schema ``repro-bench-batch/1``) next to
BENCH_rounds/BENCH_sweep/BENCH_predicates so CI can track the trajectory::

    python benchmarks/bench_batch_scaling.py --sizes 16 64 128 --replica-counts 64 256

Both backends are verified against each other (decisions and decision
rounds per replica) before a cell's timing is accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro._optional import have_numpy  # noqa: E402
from repro.algorithms import OneThirdRule  # noqa: E402
from repro.engine.rng import SeededRng  # noqa: E402
from repro.rounds.backend import ReplicaBatch, ReplicaTask, get_backend  # noqa: E402
from repro.rounds.bitmask import mask_of  # noqa: E402
from repro.workloads.batched import _classic_oracle, _classic_values  # noqa: E402
from repro.workloads.scenarios import _scope_for  # noqa: E402

SCHEMA = "repro-bench-batch/1"

FAULT_MODEL = "crash-stop"


def build_batch(n: int, replicas: int, rounds: int, base_seed: int) -> ReplicaBatch:
    """One ho-classic crash-stop cell: R replicas with seed-shuffled values.

    Built from the same workload helpers the ``ho-classic-*`` scenarios use,
    so the bench times exactly the cell the CI acceptance gate certifies.
    ``run_full_horizon`` keeps every replica executing all ``rounds`` rounds,
    so both backends do identical amounts of work and throughput numbers
    compare rounds, not early-decision luck.
    """
    tasks = []
    for i in range(replicas):
        seed = base_seed + i
        rng = SeededRng(seed)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=OneThirdRule(n),
                oracle=_classic_oracle(FAULT_MODEL, n, rng, rounds, 0.2),
                initial_values=_classic_values(n, rng, shuffle_values=True),
            )
        )
    return ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(_scope_for(FAULT_MODEL, n)),
        run_full_horizon=True,
    )


def time_backend(name: str, n: int, replicas: int, rounds: int, repeats: int):
    backend = get_backend(name)
    best = float("inf")
    outcomes = None
    for _ in range(repeats):
        batch = build_batch(n, replicas, rounds, base_seed=1)
        started = time.perf_counter()
        outcomes = backend.run(batch)
        best = min(best, time.perf_counter() - started)
    return best, outcomes


def benchmark(
    sizes: List[int], replica_counts: List[int], rounds: int, repeats: int
) -> Dict[str, Any]:
    results = []
    for n in sizes:
        for replicas in replica_counts:
            scalar_seconds, scalar_outcomes = time_backend(
                "scalar", n, replicas, rounds, repeats
            )
            batch_seconds, batch_outcomes = time_backend(
                "batch", n, replicas, rounds, repeats
            )
            assert [
                (o.seed, sorted(o.decisions.items()), sorted(o.decision_rounds.items()))
                for o in scalar_outcomes
            ] == [
                (o.seed, sorted(o.decisions.items()), sorted(o.decision_rounds.items()))
                for o in batch_outcomes
            ], f"backend divergence at n={n}, R={replicas}"
            replica_rounds = replicas * rounds
            speedup = scalar_seconds / batch_seconds
            results.append(
                {
                    "n": n,
                    "replicas": replicas,
                    "rounds": rounds,
                    "scalar_seconds": round(scalar_seconds, 6),
                    "batch_seconds": round(batch_seconds, 6),
                    "scalar_replica_rounds_per_second": round(
                        replica_rounds / scalar_seconds, 1
                    ),
                    "batch_replica_rounds_per_second": round(
                        replica_rounds / batch_seconds, 1
                    ),
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"n={n:<4} R={replicas:<5} scalar: {scalar_seconds * 1e3:9.1f}ms   "
                f"batch: {batch_seconds * 1e3:8.1f}ms   speedup: {speedup:6.2f}x"
            )
    return {
        "schema": SCHEMA,
        "numpy": have_numpy(),
        "environment": {"oracle": FAULT_MODEL, "algorithm": "one-third-rule"},
        "repeats": repeats,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[16, 64, 128],
        help="system sizes to sweep (default: 16 64 128)",
    )
    parser.add_argument(
        "--replica-counts", nargs="+", type=int, default=[16, 64, 256],
        help="replica counts per cell (default: 16 64 256)",
    )
    parser.add_argument(
        "--rounds", type=int, default=30,
        help="rounds per replica, full horizon (default: 30)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)"
    )
    parser.add_argument(
        "--json", default="BENCH_batch.json",
        help="output path (default: BENCH_batch.json)",
    )
    args = parser.parse_args(argv)

    if not have_numpy():
        print(
            "warning: numpy unavailable -- the batch backend will run its "
            "scalar fallback and speedups will be ~1x",
            file=sys.stderr,
        )
    payload = benchmark(args.sizes, args.replica_counts, args.rounds, args.repeats)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
