#!/usr/bin/env python3
"""Replica-throughput benchmark: the batch backend vs the scalar loop.

Runs the same oracle-driven cell -- OneThirdRule under the classic
crash-stop environment with seed-shuffled initial values -- as R seeded
replicas on both execution backends and reports *replica-round throughput*
(replica-rounds executed per second).  The scalar loop pays the full Python
interpreter cost once per (replica, process, round); the batch backend pays
it once per round, so the speedup is interpreter-overhead elimination --
data parallelism that works even on a single core, which is exactly what
the sweep harness needs on one-core hosts where process pools buy nothing.

A second experiment measures *whole-grid wall clock*: a realistic sweep
grid -- classic cells plus all four dynamic adversary families, each as an
R-replica cell -- executed as B scalar cells versus ONE cross-cell
super-batch (`repro.batch.SuperBatchBackend`).  The counter-based oracle
streams make the dynamic families vectorisable with no per-replica loop,
so the grid speedup at n=64 is far larger than the per-cell figure; the
figures land under the ``grid`` key of the same JSON.

Emits ``BENCH_batch.json`` (schema ``repro-bench-batch/2``) next to
BENCH_rounds/BENCH_sweep/BENCH_predicates so CI can track the trajectory::

    python benchmarks/bench_batch_scaling.py --sizes 16 64 128 --replica-counts 64 256

Both backends are verified against each other (decisions and decision
rounds per replica; for the grid, the full flattened outcome dicts)
before a cell's timing is accepted.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro._optional import have_numpy  # noqa: E402
from repro.algorithms import OneThirdRule  # noqa: E402
from repro.engine.rng import SeededRng  # noqa: E402
from repro.rounds.backend import ReplicaBatch, ReplicaTask, get_backend  # noqa: E402
from repro.rounds.bitmask import mask_of  # noqa: E402
from repro.workloads.batched import _classic_oracle, _classic_values  # noqa: E402
from repro.workloads.scenarios import _scope_for  # noqa: E402

SCHEMA = "repro-bench-batch/2"

FAULT_MODEL = "crash-stop"

#: The whole-grid experiment: classic cells plus all four dynamic families.
#: Every cell must super-batch (no per-cell fallback, no per-replica oracle
#: loop) -- the bench asserts it.
GRID_CELLS = [
    ("ho-classic-otr", "fault-free"),
    ("ho-classic-otr", "crash-stop"),
    ("ho-classic-otr", "crash-recovery"),
    ("ho-round-mobile-omission", "fault-free"),
    ("ho-round-mobile-omission", "crash-stop"),
    ("ho-round-rotating-partition", "fault-free"),
    ("ho-round-bursty-loss", "fault-free"),
    ("ho-round-bursty-loss", "crash-stop"),
    ("ho-round-eventually-stable-coordinator", "fault-free"),
]


def build_batch(n: int, replicas: int, rounds: int, base_seed: int) -> ReplicaBatch:
    """One ho-classic crash-stop cell: R replicas with seed-shuffled values.

    Built from the same workload helpers the ``ho-classic-*`` scenarios use,
    so the bench times exactly the cell the CI acceptance gate certifies.
    ``run_full_horizon`` keeps every replica executing all ``rounds`` rounds,
    so both backends do identical amounts of work and throughput numbers
    compare rounds, not early-decision luck.
    """
    tasks = []
    for i in range(replicas):
        seed = base_seed + i
        rng = SeededRng(seed)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=OneThirdRule(n),
                oracle=_classic_oracle(FAULT_MODEL, n, rng, rounds, 0.2),
                initial_values=_classic_values(n, rng, shuffle_values=True),
            )
        )
    return ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(_scope_for(FAULT_MODEL, n)),
        run_full_horizon=True,
    )


def time_backend(name: str, n: int, replicas: int, rounds: int, repeats: int):
    backend = get_backend(name)
    best = float("inf")
    outcomes = None
    for _ in range(repeats):
        batch = build_batch(n, replicas, rounds, base_seed=1)
        started = time.perf_counter()
        outcomes = backend.run(batch)
        best = min(best, time.perf_counter() - started)
    return best, outcomes


def benchmark(
    sizes: List[int], replica_counts: List[int], rounds: int, repeats: int
) -> Dict[str, Any]:
    results = []
    for n in sizes:
        for replicas in replica_counts:
            scalar_seconds, scalar_outcomes = time_backend(
                "scalar", n, replicas, rounds, repeats
            )
            batch_seconds, batch_outcomes = time_backend(
                "batch", n, replicas, rounds, repeats
            )
            assert [
                (o.seed, sorted(o.decisions.items()), sorted(o.decision_rounds.items()))
                for o in scalar_outcomes
            ] == [
                (o.seed, sorted(o.decisions.items()), sorted(o.decision_rounds.items()))
                for o in batch_outcomes
            ], f"backend divergence at n={n}, R={replicas}"
            replica_rounds = replicas * rounds
            speedup = scalar_seconds / batch_seconds
            results.append(
                {
                    "n": n,
                    "replicas": replicas,
                    "rounds": rounds,
                    "scalar_seconds": round(scalar_seconds, 6),
                    "batch_seconds": round(batch_seconds, 6),
                    "scalar_replica_rounds_per_second": round(
                        replica_rounds / scalar_seconds, 1
                    ),
                    "batch_replica_rounds_per_second": round(
                        replica_rounds / batch_seconds, 1
                    ),
                    "speedup": round(speedup, 2),
                }
            )
            print(
                f"n={n:<4} R={replicas:<5} scalar: {scalar_seconds * 1e3:9.1f}ms   "
                f"batch: {batch_seconds * 1e3:8.1f}ms   speedup: {speedup:6.2f}x"
            )
    return {
        "schema": SCHEMA,
        "numpy": have_numpy(),
        "environment": {"oracle": FAULT_MODEL, "algorithm": "one-third-rule"},
        "repeats": repeats,
        "results": results,
    }


def build_grid_plans(n: int, replicas: int, rounds: int):
    """One CellPlan per GRID_CELLS entry, through the sweep registry --
    exactly the cells ``run_sweep(backend="super")`` would pack."""
    from repro.runner.registry import REGISTRY

    seeds = list(range(1, replicas + 1))
    plans = []
    for scenario, fault_model in GRID_CELLS:
        builder = REGISTRY.batch_builder(scenario)
        assert builder is not None, f"{scenario} has no CellPlan builder"
        plans.append(builder(fault_model, n=n, seeds=seeds, rounds=rounds))
    return plans


def benchmark_grid(
    n: int, replicas: int, rounds: int, repeats: int
) -> Dict[str, Any]:
    """Whole-grid wall clock: B scalar cells vs ONE cross-cell super-batch."""
    from repro.adversaries.batch import PerReplicaBatchOracle
    from repro.batch import SuperBatchBackend

    scalar = get_backend("scalar")
    scalar_seconds = float("inf")
    scalar_outcomes = None
    for _ in range(repeats):
        plans = build_grid_plans(n, replicas, rounds)
        started = time.perf_counter()
        outcomes = [scalar.run(plan.batch) for plan in plans]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - started)
        scalar_outcomes = [
            plan.finalize(cell) for plan, cell in zip(plans, outcomes)
        ]

    super_seconds = float("inf")
    super_outcomes = None
    for _ in range(repeats):
        backend = SuperBatchBackend()
        plans = build_grid_plans(n, replicas, rounds)
        started = time.perf_counter()
        results = backend.run_batches([plan.batch for plan in plans])
        super_seconds = min(super_seconds, time.perf_counter() - started)
        assert backend.last_fallback_reasons == {}, backend.last_fallback_reasons
        super_outcomes = [
            plan.finalize(cell) for plan, cell in zip(plans, results)
        ]

    assert super_outcomes == scalar_outcomes, "grid backend divergence"
    # The acceptance criterion behind the speedup: no oracle degraded to the
    # opaque per-replica query loop anywhere in the grid.
    probe = build_grid_plans(n, replicas, rounds)
    from repro.adversaries.batch import vectorize_oracles

    for (scenario, fault_model), plan in zip(GRID_CELLS, probe):
        batch_oracle = vectorize_oracles(
            [task.oracle for task in plan.batch.tasks], plan.batch.replicas
        )
        assert not isinstance(batch_oracle, PerReplicaBatchOracle), (
            scenario,
            fault_model,
        )

    speedup = scalar_seconds / super_seconds
    print(
        f"grid n={n:<4} B={len(GRID_CELLS)} cells x R={replicas}   "
        f"scalar: {scalar_seconds * 1e3:9.1f}ms   "
        f"super: {super_seconds * 1e3:8.1f}ms   speedup: {speedup:6.2f}x"
    )
    return {
        "n": n,
        "cells": len(GRID_CELLS),
        "grid": [list(cell) for cell in GRID_CELLS],
        "replicas_per_cell": replicas,
        "rounds": rounds,
        "scalar_seconds": round(scalar_seconds, 6),
        "super_seconds": round(super_seconds, 6),
        "speedup": round(speedup, 2),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[16, 64, 128],
        help="system sizes to sweep (default: 16 64 128)",
    )
    parser.add_argument(
        "--replica-counts", nargs="+", type=int, default=[16, 64, 256],
        help="replica counts per cell (default: 16 64 256)",
    )
    parser.add_argument(
        "--rounds", type=int, default=30,
        help="rounds per replica, full horizon (default: 30)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)"
    )
    parser.add_argument(
        "--grid-n", type=int, default=64,
        help="system size of the whole-grid experiment (default: 64)",
    )
    parser.add_argument(
        "--grid-replicas", type=int, default=32,
        help="replicas per grid cell (default: 32)",
    )
    parser.add_argument(
        "--grid-rounds", type=int, default=30,
        help="round horizon of the grid cells (default: 30)",
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="skip the whole-grid scalar-vs-super experiment",
    )
    parser.add_argument(
        "--json", default="BENCH_batch.json",
        help="output path (default: BENCH_batch.json)",
    )
    args = parser.parse_args(argv)

    if not have_numpy():
        print(
            "warning: numpy unavailable -- the batch backend will run its "
            "scalar fallback and speedups will be ~1x",
            file=sys.stderr,
        )
    payload = benchmark(args.sizes, args.replica_counts, args.rounds, args.repeats)
    if not args.skip_grid:
        payload["grid"] = benchmark_grid(
            args.grid_n, args.grid_replicas, args.grid_rounds, args.repeats
        )
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
