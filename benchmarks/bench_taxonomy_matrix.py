"""E9 -- Section 2.2 / 2.3: the SP / ST / DP / DT applicability matrix.

Builds one representative fault configuration per taxonomy class, classifies
it, and runs the HO stack and the Chandra-Toueg baseline under the matching
scenario.  The claim: failure detectors are a good abstraction for SP only,
while communication predicates (the HO stack) handle every benign class
uniformly, because they are phrased in terms of transmission faults.
"""

from __future__ import annotations


from repro.analysis import (
    FaultClass,
    FaultConfiguration,
    classify,
    communication_predicates_applicable,
    failure_detectors_applicable,
)
from repro.runner import run_one
from repro.sysmodel import FaultSchedule


def taxonomy_configurations(n=4):
    """One representative fault configuration per taxonomy class."""
    return {
        FaultClass.NONE: FaultConfiguration(n=n, schedule=FaultSchedule.none()),
        FaultClass.SP: FaultConfiguration(
            n=n, schedule=FaultSchedule.crash_stop([(n - 1, 10.0)])
        ),
        FaultClass.ST: FaultConfiguration(
            n=n, schedule=FaultSchedule.crash_recovery([(0, 10.0, 30.0)])
        ),
        FaultClass.DP: FaultConfiguration(
            n=n, schedule=FaultSchedule.crash_stop([(p, 10.0 + p) for p in range(n)])
        ),
        FaultClass.DT: FaultConfiguration(
            n=n,
            schedule=FaultSchedule.crash_recovery(
                [(p, 10.0 + p, 40.0 + p) for p in range(n)]
            ),
            lossy_links=True,
        ),
    }


#: fault-model name (for the scenario runners) chosen per taxonomy class
SCENARIO_OF_CLASS = {
    FaultClass.NONE: "fault-free",
    FaultClass.SP: "crash-stop",
    FaultClass.ST: "crash-recovery",
    FaultClass.DT: "crash-recovery",
}


def test_classification_matches_construction(benchmark, report):
    def classify_all():
        return [
            (expected_class, classify(configuration))
            for expected_class, configuration in taxonomy_configurations().items()
        ]

    pairs = benchmark.pedantic(classify_all, rounds=1, iterations=1)
    rows = []
    for expected_class, computed in pairs:
        rows.append(
            f"{expected_class.value:<20} classified as {computed.value:<20} "
            f"FD applicable={failure_detectors_applicable(computed)!s:<6} "
            f"predicates applicable={communication_predicates_applicable(computed)}"
        )
        assert computed is expected_class
    report("E9  Section 2.2 taxonomy: classification and applicability", rows)


def test_empirical_applicability(benchmark, report):
    """Run the stacks on the classes that have an executable scenario."""

    def run_all():
        rows = []
        for fault_class, fault_model in SCENARIO_OF_CLASS.items():
            ho = run_one("ho-stack", fault_model, n=4, seed=0)
            ct = run_one("chandra-toueg", fault_model, n=4, seed=0)
            rows.append((fault_class, fault_model, ho, ct))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"{'class':<8} {'scenario':<16} {'HO stack solves':<16} {'CT solves':<10} "
        f"{'FD predicted':<13} predicates predicted"
    ]
    for fault_class, fault_model, ho, ct in rows:
        lines.append(
            f"{fault_class.name:<8} {fault_model:<16} {str(ho.solved):<16} {str(ct.solved):<10} "
            f"{str(failure_detectors_applicable(fault_class)):<13} "
            f"{communication_predicates_applicable(fault_class)}"
        )
    report("E9b Empirical applicability matrix", lines)
    for fault_class, fault_model, ho, ct in rows:
        # The HO stack solves every class it was run on.
        assert ho.solved
        # Chandra-Toueg solves exactly the classes the taxonomy predicts.
        if failure_detectors_applicable(fault_class):
            assert ct.solved
        else:
            assert not ct.verdict.termination
            assert ct.safe
