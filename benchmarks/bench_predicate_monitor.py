#!/usr/bin/env python3
"""Memory/time benchmark: streaming predicate monitors vs whole-collection checks.

The whole-collection checkers need the entire recorded heard-of collection
in memory -- O(rounds * n) masks -- before a single predicate can be
evaluated.  The streaming monitors reach the same verdicts consuming one
round of masks at a time in O(n) monitor state, so their peak memory is
flat in the round count.  This benchmark makes that visible and emits
``BENCH_predicates.json`` so CI can track it:

* *monitored* -- feed a :class:`~repro.predicates.MonitorBank` (all six
  Table 1 / Section 4.2 monitors) one round of oracle masks at a time;
* *whole*     -- record every mask into an
  :class:`~repro.core.types.HOCollection`, then run the six
  whole-collection checkers over it.

Peak memory is measured with :mod:`tracemalloc`; both paths also verify
they agree on every verdict (the streaming monitors are the online dual of
the checkers, and must never diverge).

Run directly::

    python benchmarks/bench_predicate_monitor.py --sizes 16 64 128 --round-counts 200 600
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.types import HOCollection  # noqa: E402
from repro.predicates import (  # noqa: E402
    MONITOR_NAMES,
    MonitorBank,
    P2Otr,
    P11Otr,
    POtr,
    PRestrOtr,
    build_monitor,
    pk_holds,
    psu_holds,
)

SCHEMA = "repro-bench-predicates/1"

ORACLE_BLOCKS = 3
ORACLE_PERIOD = 5


def fill_round_masks(n: int, round: int, heal_from: int, seed: int, out: List[int]) -> None:
    """The environment: a rotating partition healing into fault-free rounds.

    Computed per round from (round, seed) alone -- deliberately *stateless*
    (no oracle memo growing with the round count), so tracemalloc measures
    the memory behaviour of the two predicate paths themselves.  Healing
    halfway makes the existential predicates find their witnesses, so both
    paths also do their "found it" work.
    """
    if round >= heal_from:
        full = (1 << n) - 1
        for p in range(n):
            out[p] = full
        return
    epoch = (round - 1) // ORACLE_PERIOD
    shift = epoch * 7 + seed
    blocks = [0] * ORACLE_BLOCKS
    for q in range(n):
        blocks[(q + shift) % ORACLE_BLOCKS] |= 1 << q
    for p in range(n):
        out[p] = blocks[(p + shift) % ORACLE_BLOCKS]


def run_monitored(n: int, rounds: int, seed: int) -> Dict[str, bool]:
    """Stream environment masks round by round through all six monitors."""
    heal_from = max(1, rounds // 2)
    bank = MonitorBank(n, [build_monitor(name, n) for name in MONITOR_NAMES])
    masks = [0] * n
    for round in range(1, rounds + 1):
        fill_round_masks(n, round, heal_from, seed, masks)
        bank.observe_round(round, masks)
    return {name: report.holds for name, report in bank.reports().items()}


def run_whole(n: int, rounds: int, seed: int) -> Dict[str, bool]:
    """Record the full collection, then run the six whole-collection checkers."""
    heal_from = max(1, rounds // 2)
    collection = HOCollection(n)
    masks = [0] * n
    for round in range(1, rounds + 1):
        fill_round_masks(n, round, heal_from, seed, masks)
        for p in range(n):
            collection.record_mask(p, round, masks[p])
    pi0 = frozenset(range(n))
    return {
        "p_otr": POtr().holds(collection),
        "p_restr_otr": PRestrOtr().holds(collection),
        "p_su": psu_holds(collection, pi0, 1, collection.max_round),
        "p_k": pk_holds(collection, pi0, 1, collection.max_round),
        "p_2otr": P2Otr(pi0).holds(collection),
        "p_1/1otr": P11Otr(pi0).holds(collection),
    }


def measure(fn, repeats: int) -> Tuple[float, int, Any]:
    """Best-of wall seconds, max traced peak bytes, and the last return value."""
    best_seconds = float("inf")
    peak_bytes = 0
    value: Any = None
    for _ in range(repeats):
        tracemalloc.start()
        started = time.perf_counter()
        value = fn()
        elapsed = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        best_seconds = min(best_seconds, elapsed)
        peak_bytes = max(peak_bytes, peak)
    return best_seconds, peak_bytes, value


def benchmark(
    sizes: List[int], round_counts: List[int], repeats: int, seed: int
) -> Dict[str, Any]:
    results = []
    for n in sizes:
        for rounds in round_counts:
            mon_seconds, mon_peak, mon_verdicts = measure(
                lambda: run_monitored(n, rounds, seed), repeats
            )
            whole_seconds, whole_peak, whole_verdicts = measure(
                lambda: run_whole(n, rounds, seed), repeats
            )
            assert mon_verdicts == whole_verdicts, (
                f"monitor/checker divergence at n={n}, rounds={rounds}: "
                f"{mon_verdicts} vs {whole_verdicts}"
            )
            results.append(
                {
                    "n": n,
                    "rounds": rounds,
                    "monitored_peak_bytes": mon_peak,
                    "whole_peak_bytes": whole_peak,
                    "monitored_seconds": round(mon_seconds, 6),
                    "whole_seconds": round(whole_seconds, 6),
                    "verdicts": mon_verdicts,
                }
            )
            print(
                f"n={n:<4} rounds={rounds:<6} "
                f"monitored: {mon_peak / 1024:8.1f} KiB {mon_seconds * 1e3:8.2f}ms   "
                f"whole: {whole_peak / 1024:8.1f} KiB {whole_seconds * 1e3:8.2f}ms"
            )
    # Memory-growth summary per size: peak at the largest round count over
    # peak at the smallest.  Flat ~1.0 for the monitored path; the
    # whole-collection path grows with the round count.
    growth = {}
    lo, hi = min(round_counts), max(round_counts)
    if lo != hi:
        for n in sizes:
            by_rounds = {r["rounds"]: r for r in results if r["n"] == n}
            growth[str(n)] = {
                "monitored": by_rounds[hi]["monitored_peak_bytes"]
                / max(1, by_rounds[lo]["monitored_peak_bytes"]),
                "whole": by_rounds[hi]["whole_peak_bytes"]
                / max(1, by_rounds[lo]["whole_peak_bytes"]),
            }
    return {
        "schema": SCHEMA,
        "environment": {
            "family": "rotating-partition-healing",
            "blocks": ORACLE_BLOCKS,
            "period": ORACLE_PERIOD,
        },
        "predicates": list(MONITOR_NAMES),
        "repeats": repeats,
        "results": results,
        "memory_growth": growth,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[16, 64, 128],
        help="system sizes to sweep (default: 16 64 128)",
    )
    parser.add_argument(
        "--round-counts", nargs="+", type=int, default=[200, 600, 1800],
        help="round counts per run; several values expose the memory scaling "
        "(default: 200 600 1800)",
    )
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)")
    parser.add_argument("--seed", type=int, default=0, help="oracle seed (default: 0)")
    parser.add_argument(
        "--json", default="BENCH_predicates.json",
        help="output path (default: BENCH_predicates.json)",
    )
    args = parser.parse_args(argv)

    payload = benchmark(args.sizes, args.round_counts, args.repeats, args.seed)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
