"""E2 -- Theorem 3: minimal "pi0-down" good period for P_su, after a bad period.

The benchmark sweeps the system size ``n``, the window length ``x`` and the
normalised transmission delay ``delta``, measures in the step-level
simulator the good-period length actually needed by Algorithm 2 to produce
``x`` consecutive space-uniform rounds, and compares it against the
closed-form bound ``(x+1)(2*delta+(n+2)*phi+1)*phi + delta + phi``.

Claims checked: measured <= bound for every point; both scale linearly in
``x``, ``n`` and ``delta``.
"""

from __future__ import annotations


from repro.runner import run_measurement_sweep

SWEEP = [
    # (n, x, delta, seed)
    (3, 2, 2.0, 0),
    (4, 1, 2.0, 0),
    (4, 2, 2.0, 0),
    (4, 2, 2.0, 1),
    (4, 3, 2.0, 0),
    (4, 2, 5.0, 0),
    (6, 2, 2.0, 0),
    (8, 2, 2.0, 0),
]


def test_theorem3_sweep(benchmark, report):
    def run_sweep():
        return run_measurement_sweep(
            "theorem3",
            [dict(n=n, x=x, delta=delta, seed=seed) for n, x, delta, seed in SWEEP],
            workers=2,
        )

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E2  Theorem 3: pi0-down good-period length for P_su (non-initial)",
        [m.row() for m in measurements],
    )
    for measurement in measurements:
        assert measurement.within_bound, measurement.row()

    # Shape: the measured length grows with x and with n (same seed, same delta).
    by_key = {(m.n, m.x, m.delta, m.seed): m.measured for m in measurements}
    assert by_key[(4, 1, 2.0, 0)] <= by_key[(4, 2, 2.0, 0)] <= by_key[(4, 3, 2.0, 0)]
    assert by_key[(4, 2, 2.0, 0)] <= by_key[(8, 2, 2.0, 0)]
