#!/usr/bin/env python3
"""Scaling benchmark: the sweep executor's wire discipline and worker fan-out.

Runs a trace-heavy grid (the ``ho-round-bursty-loss`` scenario with
``keep_trace=True``, so every ``ScenarioResult`` drags a full round trace
behind it) through :func:`repro.runner.run_sweep` three ways and emits
``BENCH_sweep.json`` so CI can track the perf trajectory of the sweep
pipeline:

* ``inline``         -- workers=1, everything in-process (the baseline);
* ``parallel-full``  -- a worker pool that pickles the *entire* result back
  through the pool (``keep_results=True``: the pre-refactor wire format);
* ``parallel-slim``  -- the default wire discipline: only the slim
  :class:`~repro.runner.RunRecord` crosses the pool.

Also reports the pickled wire size of one record in both formats -- the
IPC bytes the slim discipline removes -- and cross-checks that all three
modes produce byte-identical aggregates.

Run directly::

    python benchmarks/bench_sweep_scaling.py --runs 16 --workers 4
    python benchmarks/bench_sweep_scaling.py --check   # equivalence only
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.runner.sweep import build_grid, execute_run, run_sweep  # noqa: E402

SCHEMA = "repro-bench-sweep/1"

SCENARIO = "ho-round-bursty-loss"
FAULT_MODEL = "fault-free"


def make_grid(runs: int, n: int, rounds: int):
    # Heavy bursts (steady-state ~86% of links down) deny OneThirdRule its
    # 2n/3 quorum until stabilisation just before the horizon, so every
    # trace spans ~rounds rounds; keep_trace makes each ScenarioResult
    # carry that full trace -- the worst-case payload the slim wire
    # discipline keeps out of the pool.
    return build_grid(
        [SCENARIO],
        [FAULT_MODEL],
        seeds=list(range(runs)),
        n=n,
        rounds=rounds,
        stabilize_round=max(2, rounds - 5),
        p_burst=0.6,
        p_recover=0.1,
        keep_trace=True,
    )


def wire_bytes(n: int, rounds: int) -> Dict[str, int]:
    """Pickled size of one wire record, slim vs. full-result."""
    record = execute_run(make_grid(1, n, rounds)[0])
    full = len(pickle.dumps(record))
    slim = len(pickle.dumps(replace(record, result=None)))
    return {"slim": slim, "full": full, "ratio": round(full / slim, 1)}


def check_equivalence(runs: int = 4, n: int = 8, rounds: int = 60) -> None:
    """All three execution modes must report the same grid outcomes."""
    grid = make_grid(runs, n, rounds)
    inline = run_sweep(grid, workers=1)
    slim = run_sweep(grid, workers=2)
    full = run_sweep(grid, workers=2, keep_results=True)
    reference = json.dumps(inline.aggregate(), sort_keys=True)
    assert json.dumps(slim.aggregate(), sort_keys=True) == reference
    assert json.dumps(full.aggregate(), sort_keys=True) == reference
    assert all(record.result is None for record in slim.records)
    assert all(record.result is not None for record in full.records)
    print("equivalence: inline, parallel-slim and parallel-full agree")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def benchmark(
    runs: int, n: int, rounds: int, workers: int, repeats: int
) -> Dict[str, Any]:
    grid = make_grid(runs, n, rounds)
    modes = (
        ("inline", dict(workers=1)),
        ("parallel-full", dict(workers=workers, keep_results=True)),
        ("parallel-slim", dict(workers=workers)),
    )
    results: List[Dict[str, Any]] = []
    timings: Dict[str, float] = {}
    for mode, kwargs in modes:
        seconds = _best_of(lambda: run_sweep(grid, **kwargs), repeats)
        timings[mode] = seconds
        results.append(
            {
                "mode": mode,
                "workers": kwargs.get("workers", 1),
                "keep_results": bool(kwargs.get("keep_results", False)),
                "wall_seconds": round(seconds, 6),
            }
        )
        print(f"{mode:<14} workers={kwargs.get('workers', 1):<3} {seconds * 1e3:8.1f}ms")
    wire = wire_bytes(n, rounds)
    payload = {
        "schema": SCHEMA,
        "scenario": SCENARIO,
        "fault_model": FAULT_MODEL,
        "grid": {"runs": runs, "n": n, "rounds": rounds},
        "repeats": repeats,
        "cpu_count": os.cpu_count(),
        "wire_bytes": wire,
        "results": results,
        "speedup": {
            "parallel_slim_vs_inline": round(
                timings["inline"] / timings["parallel-slim"], 3
            ),
            "parallel_slim_vs_parallel_full": round(
                timings["parallel-full"] / timings["parallel-slim"], 3
            ),
        },
    }
    print(
        f"wire record: {wire['slim']}B slim vs {wire['full']}B full "
        f"({wire['ratio']}x) | speedup vs inline: "
        f"{payload['speedup']['parallel_slim_vs_inline']}x | "
        f"vs full-result pool: "
        f"{payload['speedup']['parallel_slim_vs_parallel_full']}x"
    )
    if payload["speedup"]["parallel_slim_vs_inline"] < 1.0:
        print(
            f"note: no spare cores on this host (cpu_count={os.cpu_count()}); "
            "the workers>1 win needs a multi-core machine"
        )
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=16, help="grid cells / seeds (default: 16)")
    parser.add_argument("--n", type=int, default=16, help="system size (default: 16)")
    parser.add_argument("--rounds", type=int, default=400, help="rounds per run (default: 400)")
    parser.add_argument("--workers", type=int, default=4, help="pool size (default: 4)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)")
    parser.add_argument(
        "--json", default="BENCH_sweep.json", help="output path (default: BENCH_sweep.json)"
    )
    parser.add_argument(
        "--check", action="store_true", help="only verify mode equivalence and exit"
    )
    args = parser.parse_args(argv)

    check_equivalence()
    if args.check:
        return 0

    payload = benchmark(args.runs, args.n, args.rounds, args.workers, args.repeats)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
