"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (Table 1, the
timing theorems, the translation theorem, the Appendix-A comparison) and
prints a paper-vs-measured report.  Reports are printed with the ``-s``
flag or collected from the captured output; the numbers recorded in
``EXPERIMENTS.md`` come from these reports.
"""

from __future__ import annotations

from typing import Iterable

import pytest


def print_report(title: str, lines: Iterable[str]) -> None:
    """Print a benchmark report block (visible with ``pytest -s``)."""
    bar = "=" * 78
    print()
    print(bar)
    print(title)
    print(bar)
    for line in lines:
        print(line)
    print(bar)


@pytest.fixture
def report():
    """Fixture exposing :func:`print_report` to benchmarks."""
    return print_report
