"""E10 -- Corollary 4: the P_2otr vs P_1/1otr good-period trade-off.

Corollary 4 exposes a trade-off for Algorithm 2: consensus needs either one
longer "pi0-down" good period (enough for two *consecutive* good rounds,
``P_2otr``) or two shorter ones (one good round each, ``P_1/1otr``).  The
benchmark measures both, and additionally verifies end-to-end that a
schedule with two short good periods -- each individually too short for
``P_2otr`` -- still lets OneThirdRule decide.
"""

from __future__ import annotations


from repro.algorithms import OneThirdRule
from repro.predimpl import (
    build_down_stack,
    corollary4_p11otr_length,
    corollary4_p2otr_length,
)
from repro.sysmodel import (
    BadPeriodNetwork,
    GoodPeriod,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)
from repro.runner import run_measurement_sweep


def test_corollary4_measurements(benchmark, report):
    def run_sweep():
        per_size = run_measurement_sweep(
            "corollary4", [dict(n=n, seed=0) for n in (4, 6, 8)], workers=2
        )
        return [measurement for pair in per_size for measurement in pair]

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report("E10 Corollary 4: P_2otr vs P_1/1otr good-period lengths", [m.row() for m in measurements])
    for measurement in measurements:
        assert measurement.within_bound, measurement.row()
    # The trade-off: the P_1/1otr period is shorter than the P_2otr period.
    for n in (4, 6, 8):
        assert corollary4_p11otr_length(n, 1.0, 2.0) < corollary4_p2otr_length(n, 1.0, 2.0)


def test_two_short_good_periods_suffice(benchmark, report):
    """End-to-end check of the P_1/1otr alternative: two short periods, one decision."""
    n = 4
    phi, delta = 1.0, 2.0
    params = SynchronyParams(phi=phi, delta=delta)
    short = corollary4_p11otr_length(n, phi, delta)
    long = corollary4_p2otr_length(n, phi, delta)

    def run():
        pi0 = frozenset(range(n))
        schedule = PeriodSchedule(
            n=n,
            good_periods=[
                GoodPeriod(60.0, 60.0 + short, GoodPeriodKind.PI0_DOWN, pi0),
                GoodPeriod(200.0, 200.0 + short, GoodPeriodKind.PI0_DOWN, pi0),
            ],
        )
        stack = build_down_stack(OneThirdRule(n), [10, 20, 30, 40], params)
        simulator = SystemSimulator(
            stack.programs,
            params,
            schedule,
            seed=3,
            trace=stack.trace,
            bad_network=BadPeriodNetwork(loss_probability=0.6, min_delay=1.0, max_delay=30.0),
        )
        simulator.run(until=400.0)
        return stack.trace

    trace = benchmark.pedantic(run, rounds=1, iterations=1)
    decided = trace.decision_values()
    lines = [
        f"each good period length = {short:.1f} (P_1/1otr bound; P_2otr would need {long:.1f})",
        f"decisions after the second good period: {decided}",
    ]
    report("E10b Two short good periods (P_1/1otr) are enough for consensus", lines)
    assert len(decided) == n
    assert len(set(decided.values())) == 1
