"""E1 -- Table 1 and Theorems 1-2: OneThirdRule under the Table 1 predicates.

For every predicate of Table 1 (plus deliberately-too-weak environments) the
benchmark runs OneThirdRule over heard-of collections produced by matching
oracles and reports, per environment: whether the predicate held, whether
safety held, and whether termination was reached.  The paper's claims:

* safety (integrity + agreement) holds under *every* environment;
* termination holds whenever ``P_otr`` (all processes) or ``P_restr_otr``
  (the Pi0 processes) holds;
* environments violating the predicates may lose termination, never safety.
"""

from __future__ import annotations


from repro.algorithms import LastVoting, OneThirdRule, UniformVoting
from repro.analysis import check_consensus
from repro.core import (
    FaultFreeOracle,
    GoodPeriodOracle,
    HOMachine,
    POtr,
    PRestrOtr,
    PartitionOracle,
    RandomOmissionOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
    otr_threshold,
)

N = 6
ROUNDS = 40
VALUES = [30, 10, 20, 40, 60, 50]


def environments():
    """Named heard-of oracles, from benign to adversarial."""
    pi0 = frozenset(range(otr_threshold(N)))
    return {
        "fault-free": FaultFreeOracle(N),
        "silent-prefix": SilentRoundsOracle(N, silent_rounds=range(1, 6)),
        "minority-crash": StaticCrashOracle(N, {N - 1: 3}),
        "good-period-pi0": GoodPeriodOracle(N, pi0=pi0, good_from=8, good_to=20, seed=1),
        "light-loss": RandomOmissionOracle(N, loss_probability=0.1, seed=2),
        "heavy-loss": RandomOmissionOracle(N, loss_probability=0.7, seed=3),
        "permanent-partition": PartitionOracle(N, blocks=[[0, 1, 2], [3, 4, 5]]),
    }


def run_environment(name, oracle):
    machine = HOMachine(OneThirdRule(N), oracle, VALUES)
    machine.run(ROUNDS)
    trace = machine.trace
    verdict = check_consensus(trace, VALUES)
    return {
        "environment": name,
        "P_otr": POtr().holds(trace.ho_collection),
        "P_restr_otr": PRestrOtr().holds(trace.ho_collection),
        "safe": verdict.safe,
        "terminated": verdict.termination,
        "decided": len(verdict.decisions),
    }


def test_table1_predicate_matrix(benchmark, report):
    """Regenerates Table 1's role: which environments let OneThirdRule decide."""

    def run_all():
        return [run_environment(name, oracle) for name, oracle in environments().items()]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [
        f"{'environment':<22} {'P_otr':<6} {'P_restr_otr':<12} {'safe':<5} "
        f"{'terminated':<11} decided/n"
    ]
    for row in rows:
        lines.append(
            f"{row['environment']:<22} {str(row['P_otr']):<6} {str(row['P_restr_otr']):<12} "
            f"{str(row['safe']):<5} {str(row['terminated']):<11} {row['decided']}/{N}"
        )
    report("E1  Table 1 / Theorems 1-2: OneThirdRule under communication predicates", lines)

    for row in rows:
        # Safety must hold everywhere (Theorem 1's proof argument).
        assert row["safe"], f"safety violated under {row['environment']}"
        # Whenever P_otr holds on the recorded collection, everyone decided.
        if row["P_otr"]:
            assert row["terminated"], f"P_otr held but termination failed: {row['environment']}"
        # The permanent partition can never satisfy the predicates nor decide.
        if row["environment"] == "permanent-partition":
            assert not row["P_restr_otr"]
            assert not row["terminated"]


def test_table1_other_algorithms_same_environments(benchmark, report):
    """LastVoting and UniformVoting under the same benign environments (expressiveness of the model)."""

    def run_all():
        results = []
        for algorithm_factory in (LastVoting, UniformVoting):
            for name, oracle in (
                ("fault-free", FaultFreeOracle(N)),
                ("light-loss", RandomOmissionOracle(N, loss_probability=0.1, seed=4)),
            ):
                machine = HOMachine(algorithm_factory(N), oracle, VALUES)
                machine.run(ROUNDS)
                verdict = check_consensus(machine.trace, VALUES)
                results.append((algorithm_factory.name, name, verdict.safe, verdict.termination))
        return results

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = [f"{'algorithm':<16} {'environment':<12} {'safe':<5} terminated"]
    for algorithm, environment, safe, terminated in rows:
        lines.append(f"{algorithm:<16} {environment:<12} {str(safe):<5} {terminated}")
    report("E1b Other HO algorithms under the same environments", lines)
    for algorithm, environment, safe, terminated in rows:
        assert safe
        if environment == "fault-free":
            assert terminated
