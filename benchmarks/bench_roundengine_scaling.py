#!/usr/bin/env python3
"""Scaling benchmark: the bitmask RoundEngine hot path vs the frozenset loop.

Measures wall-clock seconds per simulated round as ``n`` grows, for two
workloads, and emits ``BENCH_rounds.json`` so CI can track the perf
trajectory of the round engine:

* ``census``  -- a minimal HO algorithm whose transition only inspects the
  *cardinality* of the received view: this isolates the engine overhead
  (oracle query, heard-of bookkeeping, record churn) that the bitmask
  representation removes;
* ``otr``     -- OneThirdRule: a real consensus algorithm whose transition
  walks the received payloads, showing the speedup with algorithm cost
  included.

The baseline is a faithful re-implementation of the *pre-refactor* round
loop (``frozenset`` heard-of sets end to end: a set-native oracle, per-round
``frozenset(...) & all_processes(n)`` clamping, dict-materialised received
views, frozenset-carrying records) -- the code path this repository executed
before the ``repro.rounds`` unification.  The engine side runs the current
:class:`~repro.core.machine.HOMachine` with ``view="mask"``.

Run directly::

    python benchmarks/bench_roundengine_scaling.py --sizes 16 64 128 --rounds 40
    python benchmarks/bench_roundengine_scaling.py --check   # equivalence only

The environment is a rotating partition with churn (the dynamic adversary
family), whose per-query cost is representation-bound -- exactly the
HO-set churn the bitmask hot path is built to eliminate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.adversaries import RotatingPartitionOracle  # noqa: E402
from repro.algorithms import OneThirdRule  # noqa: E402
from repro.core.algorithm import ConsensusAlgorithm  # noqa: E402
from repro.core.machine import HOMachine  # noqa: E402
from repro.core.types import ProcessId, Round, all_processes  # noqa: E402
from repro.engine.rng import SeededRng  # noqa: E402

SCHEMA = "repro-bench-rounds/1"


# --------------------------------------------------------------------------- #
# workloads
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class CensusState:
    quorum_rounds: int = 0


class CensusAlgorithm(ConsensusAlgorithm):
    """Counts quorum rounds; its transition only needs ``len(received)``.

    The cheapest HO algorithm that still exercises the full engine loop --
    a pure probe of per-round engine overhead.
    """

    name = "census"

    def initial_state(self, process: ProcessId, initial_value: Any) -> CensusState:
        return CensusState()

    def send(self, round: Round, process: ProcessId, state: CensusState) -> int:
        return state.quorum_rounds

    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: CensusState,
        received: Mapping[ProcessId, int],
    ) -> CensusState:
        if 3 * len(received) > 2 * self.n:
            return CensusState(state.quorum_rounds + 1)
        return state

    def decision(self, state: CensusState) -> Optional[Any]:
        return None  # runs the full horizon: we are measuring rounds, not latency


def make_algorithm(workload: str, n: int) -> ConsensusAlgorithm:
    if workload == "census":
        return CensusAlgorithm(n)
    if workload == "otr":
        return OneThirdRule(n)
    raise ValueError(f"unknown workload {workload!r}")


def initial_values(n: int) -> List[int]:
    return [p % 7 for p in range(n)]


# --------------------------------------------------------------------------- #
# the pre-refactor baseline: frozensets end to end
# --------------------------------------------------------------------------- #


class LegacySetPartitionOracle:
    """The rotating-partition environment, set-native as oracles used to be.

    Mirrors :class:`repro.adversaries.RotatingPartitionOracle` (identical
    draws from the same ``oracle.partition`` sub-stream, hence identical
    partitions per seed) but returns per-block ``frozenset`` objects, the
    pre-refactor oracle representation.
    """

    def __init__(
        self, n: int, blocks: int, period: int, churn: float, seed: int,
        heal_from: Optional[Round] = None,
    ) -> None:
        self.n = n
        self.blocks = blocks
        self.period = period
        self.churn = churn
        self.heal_from = heal_from
        self._stream = SeededRng(seed).stream("oracle.partition")
        self._assignments: List[List[int]] = []
        #: epoch -> per-process block frozenset, precomputed once per epoch
        #: exactly as the pre-refactor PartitionOracle precomputed _block_of.
        self._epoch_sets: List[List[FrozenSet[ProcessId]]] = []
        self._full = frozenset(range(n))

    def _sets_for_epoch(self, epoch: int) -> List[FrozenSet[ProcessId]]:
        while len(self._epoch_sets) <= epoch:
            stream = self._stream
            if not self._assignments:
                assignment = [stream.randrange(self.blocks) for _ in range(self.n)]
            else:
                previous = self._assignments[-1]
                assignment = [
                    stream.randrange(self.blocks) if stream.random() < self.churn else block
                    for block in previous
                ]
            self._assignments.append(assignment)
            block_sets = [
                frozenset(q for q in range(self.n) if assignment[q] == b)
                for b in range(self.blocks)
            ]
            self._epoch_sets.append([block_sets[block] for block in assignment])
        return self._epoch_sets[epoch]

    def __call__(self, round: Round, process: ProcessId) -> FrozenSet[ProcessId]:
        if self.heal_from is not None and round >= self.heal_from:
            return self._full
        return self._sets_for_epoch((round - 1) // self.period)[process]


@dataclass
class _LegacyRecord:
    """The pre-refactor per-round record: carries the frozenset itself."""

    process: ProcessId
    round: Round
    ho_set: FrozenSet[ProcessId]
    state_after: Any
    decision: Optional[Any]
    sent_payload: Any = None


class LegacyHOMachine:
    """The pre-refactor HOMachine round loop, reproduced verbatim in shape.

    frozenset heard-of sets, ``frozenset(oracle(...)) & all_processes(n)``
    clamping per (process, round), dict-materialised received views, a
    ``{(p, r): frozenset}`` heard-of store and frozenset-carrying records.
    """

    def __init__(self, algorithm: ConsensusAlgorithm, oracle, values: List[Any]) -> None:
        self.algorithm = algorithm
        self.n = algorithm.n
        self.oracle = oracle
        self.states = {p: algorithm.initial_state(p, values[p]) for p in range(self.n)}
        self.ho_store: Dict[Any, FrozenSet[ProcessId]] = {}
        self.records: List[_LegacyRecord] = []
        self.messages_sent = 0
        self.messages_delivered = 0
        self._round = 0

    def run(self, rounds: int) -> None:
        algorithm = self.algorithm
        n = self.n
        for _ in range(rounds):
            self._round += 1
            round_number = self._round
            payloads = {
                p: algorithm.send(round_number, p, self.states[p]) for p in range(n)
            }
            self.messages_sent += n * n
            ho_sets = {}
            for p in range(n):
                requested = frozenset(self.oracle(round_number, p))
                ho_sets[p] = requested & all_processes(n)
            for p in range(n):
                received = {q: payloads[q] for q in ho_sets[p]}
                self.messages_delivered += len(received)
                new_state = algorithm.transition(round_number, p, self.states[p], received)
                self.states[p] = new_state
                self.ho_store[(p, round_number)] = ho_sets[p]
                self.records.append(
                    _LegacyRecord(
                        process=p,
                        round=round_number,
                        ho_set=ho_sets[p],
                        state_after=new_state,
                        decision=algorithm.decision(new_state),
                        sent_payload=payloads[p],
                    )
                )


# --------------------------------------------------------------------------- #
# harness
# --------------------------------------------------------------------------- #

ORACLE_BLOCKS = 3
ORACLE_PERIOD = 5
ORACLE_CHURN = 0.3


def run_engine(workload: str, n: int, rounds: int, seed: int) -> HOMachine:
    oracle = RotatingPartitionOracle(
        n, blocks=ORACLE_BLOCKS, period=ORACLE_PERIOD, churn=ORACLE_CHURN, seed=seed
    )
    # Cardinality-only transitions profit from the zero-copy mask view;
    # payload-walking transitions want the materialised dict.
    view = "mask" if workload == "census" else "dict"
    machine = HOMachine(make_algorithm(workload, n), oracle, initial_values(n), view=view)
    machine.run(rounds)
    return machine


def run_legacy(workload: str, n: int, rounds: int, seed: int) -> LegacyHOMachine:
    oracle = LegacySetPartitionOracle(
        n, blocks=ORACLE_BLOCKS, period=ORACLE_PERIOD, churn=ORACLE_CHURN, seed=seed
    )
    machine = LegacyHOMachine(make_algorithm(workload, n), oracle, initial_values(n))
    machine.run(rounds)
    return machine


def check_equivalence(n: int = 16, rounds: int = 20, seed: int = 7) -> None:
    """Both paths must execute the same run: same HO sets, same states."""
    for workload in ("census", "otr"):
        engine = run_engine(workload, n, rounds, seed)
        legacy = run_legacy(workload, n, rounds, seed)
        for p in range(n):
            for r in range(1, rounds + 1):
                assert engine.trace.ho_collection.ho(p, r) == legacy.ho_store[(p, r)], (
                    f"HO set mismatch at ({p}, {r}) for {workload}"
                )
            assert engine.state(p) == legacy.states[p], f"state mismatch at {p} for {workload}"
        assert engine.trace.messages_delivered == legacy.messages_delivered
    print("equivalence: engine and legacy baselines execute identical runs")


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def benchmark(sizes: List[int], rounds: int, repeats: int, seed: int) -> Dict[str, Any]:
    results = []
    for workload in ("census", "otr"):
        for n in sizes:
            legacy_seconds = _best_of(lambda: run_legacy(workload, n, rounds, seed), repeats)
            engine_seconds = _best_of(lambda: run_engine(workload, n, rounds, seed), repeats)
            speedup = legacy_seconds / engine_seconds if engine_seconds > 0 else float("inf")
            results.append(
                {
                    "workload": workload,
                    "n": n,
                    "rounds": rounds,
                    "legacy_seconds": round(legacy_seconds, 6),
                    "engine_seconds": round(engine_seconds, 6),
                    "speedup": round(speedup, 3),
                }
            )
            print(
                f"{workload:<7} n={n:<5} rounds={rounds:<5} "
                f"legacy={legacy_seconds * 1e3:8.2f}ms engine={engine_seconds * 1e3:8.2f}ms "
                f"speedup={speedup:5.2f}x"
            )
    return {
        "schema": SCHEMA,
        "oracle": {
            "family": "rotating-partition",
            "blocks": ORACLE_BLOCKS,
            "period": ORACLE_PERIOD,
            "churn": ORACLE_CHURN,
        },
        "repeats": repeats,
        "results": results,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", nargs="+", type=int, default=[16, 32, 64, 128, 256],
        help="system sizes to sweep (default: 16 32 64 128 256)",
    )
    parser.add_argument("--rounds", type=int, default=40, help="rounds per run (default: 40)")
    parser.add_argument("--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)")
    parser.add_argument("--seed", type=int, default=0, help="oracle seed (default: 0)")
    parser.add_argument(
        "--json", default="BENCH_rounds.json", help="output path (default: BENCH_rounds.json)"
    )
    parser.add_argument(
        "--check", action="store_true", help="only verify engine/legacy equivalence and exit"
    )
    args = parser.parse_args(argv)

    check_equivalence()
    if args.check:
        return 0

    payload = benchmark(args.sizes, args.rounds, args.repeats, args.seed)
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
