"""E8 -- Section 2.1 and Appendix A: the failure-detector crash-stop / crash-recovery gap.

Runs the three stacks under the same fault models:

* Chandra-Toueg ◇S (Algorithm 5) -- designed for crash-stop with reliable links;
* Aguilera et al. ◇Su (Algorithm 6) -- designed for crash-recovery with lossy links;
* the HO stack (Algorithm 1 over Algorithm 2) -- one algorithm for every model.

Expected picture (the paper's argument made executable):

* all three solve the crash-stop scenario;
* Chandra-Toueg stops terminating (but stays safe) under message loss and
  under crash-recovery;
* Aguilera et al. and the HO stack solve crash-recovery -- but the
  failure-detector solution needed a different algorithm, a different
  detector, stable storage and retransmission, whereas the HO stack is
  unchanged (structural complexity table at the end).
"""

from __future__ import annotations


from repro.analysis import algorithm_complexity_summary
from repro.workloads import compare_stacks


def test_fd_gap_matrix(benchmark, report):
    def run_matrix():
        # The comparison matrix goes through the repro.runner sweep executor,
        # fanned out over parallel worker processes.
        return compare_stacks(n=4, seed=0, workers=2)

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    report(
        "E8  Appendix A: Chandra-Toueg vs Aguilera vs the HO stack under identical faults",
        [result.row() for result in results],
    )

    by_key = {(result.stack, result.fault_model): result for result in results}
    # Everybody handles the crash-stop world.
    for stack in ("ho-stack", "chandra-toueg", "aguilera"):
        assert by_key[(stack, "fault-free")].solved
        assert by_key[(stack, "crash-stop")].solved
    # The crash-stop FD algorithm does not terminate under loss / recovery...
    assert not by_key[("chandra-toueg", "lossy")].verdict.termination
    assert not by_key[("chandra-toueg", "crash-recovery")].verdict.termination
    # ... but never violates safety.
    assert by_key[("chandra-toueg", "lossy")].safe
    assert by_key[("chandra-toueg", "crash-recovery")].safe
    # The crash-recovery FD algorithm and the HO stack both solve those models.
    assert by_key[("aguilera", "crash-recovery")].solved
    assert by_key[("aguilera", "lossy")].solved
    assert by_key[("ho-stack", "crash-recovery")].solved
    assert by_key[("ho-stack", "lossy")].solved


def test_structural_complexity_table(benchmark, report):
    """The Section 2.1 structural comparison (crash-stop vs crash-recovery vs HO)."""
    summary = benchmark.pedantic(algorithm_complexity_summary, rounds=1, iterations=1)
    lines = [
        f"{'algorithm':<38} {'msg kinds':<10} {'state vars':<11} "
        f"{'stable storage':<15} {'retransmission':<15} {'detector':<9} new algorithm for crash-recovery?"
    ]
    for item in summary.values():
        lines.append(
            f"{item.name:<38} {item.message_kinds:<10} {item.state_variables:<11} "
            f"{str(item.needs_stable_storage):<15} {str(item.needs_retransmission_task):<15} "
            f"{str(item.needs_failure_detector):<9} {item.distinct_from_crash_stop_variant}"
        )
    report("E8b Structural complexity (Section 2.1 / Appendix A)", lines)
    assert summary["aguilera"].state_variables > summary["chandra-toueg"].state_variables
    assert not summary["one-third-rule"].distinct_from_crash_stop_variant
