#!/usr/bin/env python3
"""Compiled-tier throughput benchmark: the JIT'd kernels vs the numpy batch.

Runs the same 9-cell sweep grid as ``bench_batch_scaling`` -- classic
OneThirdRule cells plus the four counter-stream dynamic families -- on the
numpy batch backend and on the compiled backend, and reports the per-cell
and aggregate wall-clock ratio.  The batch backend pays one numpy array
program per round; the compiled backend fuses the whole round loop into a
single nopython call per (K, R, n, W) word chunk, so the speedup is
per-round dispatch elimination on top of the vectorisation the batch tier
already bought.

JIT compilation cost is excluded: every kernel is warmed up on a tiny grid
before any timed run (numba caches per code object and signature, so the
small warm-up covers the timed shapes).

Every cell is verified before its timing is accepted: the compiled
outcomes must equal the batch outcomes replica for replica at full scale,
and both must equal the scalar reference on a reduced replica subset
(``--verify-replicas``) -- the same bit-identity contract the parity suite
in ``tests/compiled`` pins.

Without numba the compiled backend degrades per cell to the numpy batch
path (bit-identically, with a recorded reason), so the speedup reads ~1x
and the ``--assert-speedup`` floor is skipped rather than failed; CI runs
the floor on a leg that installs the ``fast`` extra (numpy + numba).

Emits ``BENCH_compiled.json`` (schema ``repro-bench-compiled/1``) next to
the other BENCH artifacts::

    python benchmarks/bench_compiled_kernels.py --replicas 256 --rounds 30
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

sys.path.insert(0, os.path.dirname(__file__))
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from bench_batch_scaling import GRID_CELLS, build_grid_plans  # noqa: E402

from repro._optional import have_numba, have_numpy  # noqa: E402
from repro.compiled import CompiledBackend  # noqa: E402
from repro.rounds.backend import get_backend  # noqa: E402

SCHEMA = "repro-bench-compiled/1"


def _build_cell_plan(index: int, n: int, replicas: int, rounds: int):
    """A fresh CellPlan for one GRID_CELLS entry (oracles are stateful, so
    every timed run gets its own)."""
    return build_grid_plans(n, replicas, rounds)[index]


def _make_compiled(interpreted: bool) -> CompiledBackend:
    return CompiledBackend(interpreted=interpreted)


def warm_up(make_compiled: Callable[[], Any], rounds: int) -> None:
    """Trigger JIT compilation of every chunk core off the clock.

    A tiny grid touches all four compiled kernels' code paths; numba
    compiles per code object and signature, so the timed full-size runs
    reuse these compilations.
    """
    for plan in build_grid_plans(8, 2, min(rounds, 4)):
        make_compiled().run(plan.batch)


def time_cell(
    make_backend: Callable[[], Any],
    index: int,
    n: int,
    replicas: int,
    rounds: int,
    repeats: int,
):
    """Best-of-*repeats* wall clock for one grid cell on one backend.

    Returns ``(seconds, finalized_outcome, last_fallback_reason)``.
    """
    best = float("inf")
    finalized = None
    reason = None
    for _ in range(repeats):
        plan = _build_cell_plan(index, n, replicas, rounds)
        backend = make_backend()
        started = time.perf_counter()
        cells = backend.run(plan.batch)
        best = min(best, time.perf_counter() - started)
        finalized = plan.finalize(cells)
        reason = getattr(backend, "last_fallback_reason", None)
    return best, finalized, reason


def verify_against_scalar(
    make_compiled: Callable[[], Any], n: int, replicas: int, rounds: int
) -> None:
    """Pin compiled == batch == scalar on a reduced-replica copy of the grid.

    The scalar loop at the full benchmark scale would dominate the bench's
    own runtime, so the three-way check runs on ``replicas`` seeds per cell
    -- the full-scale compiled-vs-batch equality is asserted separately on
    the timed outcomes.
    """
    scalar = get_backend("scalar")
    batch = get_backend("batch")
    for index, (scenario, fault_model) in enumerate(GRID_CELLS):
        reference = None
        for backend in (scalar, batch, make_compiled()):
            plan = _build_cell_plan(index, n, replicas, rounds)
            finalized = plan.finalize(backend.run(plan.batch))
            if reference is None:
                reference = finalized
            else:
                assert finalized == reference, (
                    f"backend divergence vs scalar at {scenario}/{fault_model}"
                )


def benchmark(
    n: int,
    replicas: int,
    rounds: int,
    repeats: int,
    verify_replicas: int,
    interpreted: bool,
) -> Dict[str, Any]:
    def make_compiled() -> CompiledBackend:
        return _make_compiled(interpreted)

    warm_up(make_compiled, rounds)
    verify_against_scalar(make_compiled, n, min(verify_replicas, replicas), rounds)

    results = []
    total_batch = 0.0
    total_compiled = 0.0
    engaged = 0
    for index, (scenario, fault_model) in enumerate(GRID_CELLS):
        batch_seconds, batch_outcome, _ = time_cell(
            lambda: get_backend("batch"), index, n, replicas, rounds, repeats
        )
        compiled_seconds, compiled_outcome, reason = time_cell(
            make_compiled, index, n, replicas, rounds, repeats
        )
        assert compiled_outcome == batch_outcome, (
            f"backend divergence at {scenario}/{fault_model}"
        )
        speedup = batch_seconds / compiled_seconds
        if reason is None:
            engaged += 1
        total_batch += batch_seconds
        total_compiled += compiled_seconds
        results.append(
            {
                "scenario": scenario,
                "fault_model": fault_model,
                "n": n,
                "replicas": replicas,
                "rounds": rounds,
                "batch_seconds": round(batch_seconds, 6),
                "compiled_seconds": round(compiled_seconds, 6),
                "speedup": round(speedup, 2),
                "compiled_engaged": reason is None,
                "fallback_reason": reason,
            }
        )
        print(
            f"{scenario:<42} {fault_model:<16} "
            f"batch: {batch_seconds * 1e3:8.1f}ms   "
            f"compiled: {compiled_seconds * 1e3:8.1f}ms   "
            f"speedup: {speedup:6.2f}x"
            + ("" if reason is None else f"   [fell back: {reason}]")
        )

    aggregate_speedup = total_batch / total_compiled
    print(
        f"aggregate over {len(GRID_CELLS)} cells (n={n}, R={replicas}): "
        f"batch {total_batch * 1e3:.1f}ms vs compiled "
        f"{total_compiled * 1e3:.1f}ms -- {aggregate_speedup:.2f}x"
    )
    return {
        "schema": SCHEMA,
        "numpy": have_numpy(),
        "numba": have_numba(),
        "interpreted": interpreted,
        "n": n,
        "replicas": replicas,
        "rounds": rounds,
        "repeats": repeats,
        "verify_replicas": min(verify_replicas, replicas),
        "results": results,
        "aggregate": {
            "cells": len(GRID_CELLS),
            "cells_engaged": engaged,
            "batch_seconds": round(total_batch, 6),
            "compiled_seconds": round(total_compiled, 6),
            "speedup": round(aggregate_speedup, 2),
        },
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--n", type=int, default=64,
        help="system size of every grid cell (default: 64)",
    )
    parser.add_argument(
        "--replicas", type=int, default=256,
        help="replicas per grid cell (default: 256)",
    )
    parser.add_argument(
        "--rounds", type=int, default=30,
        help="round horizon of the grid cells (default: 30)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats, best-of (default: 3)"
    )
    parser.add_argument(
        "--verify-replicas", type=int, default=8,
        help="replicas per cell for the scalar three-way check (default: 8)",
    )
    parser.add_argument(
        "--interpreted", action="store_true",
        help="run the compiled cores under CPython (debug; slow at scale)",
    )
    parser.add_argument(
        "--assert-speedup", type=float, default=None, metavar="FLOOR",
        help="fail unless the aggregate speedup reaches FLOOR with every "
             "cell on the compiled path (skipped when numba is unavailable)",
    )
    parser.add_argument(
        "--json", default="BENCH_compiled.json",
        help="output path (default: BENCH_compiled.json)",
    )
    args = parser.parse_args(argv)

    if not have_numpy():
        print(
            "error: the compiled-vs-batch benchmark needs numpy "
            "(install the 'fast' extra)",
            file=sys.stderr,
        )
        return 2

    payload = benchmark(
        args.n, args.replicas, args.rounds, args.repeats,
        args.verify_replicas, args.interpreted,
    )
    with open(args.json, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.json}")

    if args.assert_speedup is not None:
        if not have_numba() or args.interpreted:
            print(
                "numba unavailable (or --interpreted): the compiled backend "
                "degraded to the batch path, skipping the "
                f">= {args.assert_speedup}x floor",
                file=sys.stderr,
            )
            return 0
        aggregate = payload["aggregate"]
        assert aggregate["cells_engaged"] == aggregate["cells"], (
            "cells fell back off the compiled path",
            [r for r in payload["results"] if not r["compiled_engaged"]],
        )
        assert aggregate["speedup"] >= args.assert_speedup, aggregate
        print(
            f"aggregate speedup {aggregate['speedup']}x meets the "
            f">= {args.assert_speedup}x floor"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
