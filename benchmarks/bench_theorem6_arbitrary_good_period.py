"""E4 -- Theorem 6: minimal "pi0-arbitrary" good period for P_k, after a bad period.

Algorithm 3 (with ``f < n/2`` and ``|pi0| = n - f``) must resynchronise
rounds after an arbitrary bad period even though the processes outside pi0
remain completely unconstrained.  The benchmark sweeps ``n``, ``f``, ``x``
and ``delta`` and compares the measured good-period length against
``(x+2)[tau_0*phi + delta + n*phi + 2*phi] + tau_0*phi``.
"""

from __future__ import annotations


from repro.runner import run_measurement_sweep

SWEEP = [
    # (n, f, x, delta, seed)
    (3, 1, 2, 2.0, 0),
    (4, 1, 1, 2.0, 0),
    (4, 1, 2, 2.0, 0),
    (4, 1, 2, 2.0, 1),
    (4, 1, 2, 5.0, 0),
    (5, 2, 2, 2.0, 0),
    (7, 3, 2, 2.0, 0),
]


def test_theorem6_sweep(benchmark, report):
    def run_sweep():
        return run_measurement_sweep(
            "theorem6",
            [
                dict(n=n, f=f, x=x, delta=delta, seed=seed)
                for n, f, x, delta, seed in SWEEP
            ],
            workers=2,
        )

    measurements = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "E4  Theorem 6: pi0-arbitrary good-period length for P_k (non-initial)",
        [m.row() for m in measurements],
    )
    for measurement in measurements:
        assert measurement.within_bound, measurement.row()
    # Shape: larger systems need longer good periods (bounds and measurements).
    by_key = {(m.n, m.f, m.x, m.delta, m.seed): m for m in measurements}
    assert (
        by_key[(4, 1, 2, 2.0, 0)].bound < by_key[(7, 3, 2, 2.0, 0)].bound
    )
