"""Tests for the runner CLI additions: --list (with measurements) and --csv."""

from __future__ import annotations

import csv

from repro.runner.__main__ import main
from repro.runner.registry import REGISTRY
from repro.runner.sweep import RunSpec, SweepResult, execute_run


def run_small_sweep():
    specs = [
        RunSpec.make("ho-round-mobile-omission", "fault-free", seed, n=4)
        for seed in (0, 1)
    ]
    return SweepResult(records=[execute_run(spec) for spec in specs])


class TestCsvExport:
    def test_write_csv_matches_json_records(self, tmp_path):
        result = run_small_sweep()
        path = tmp_path / "out" / "sweep.csv"
        result.write_csv(str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.records)
        for row, record in zip(rows, result.records):
            expected = record.to_json_dict()
            assert row["scenario"] == expected["scenario"]
            assert int(row["seed"]) == expected["seed"]
            assert row["solved"] == str(expected["solved"])
            assert row["error"] == ""
        assert list(rows[0]) == list(SweepResult.CSV_FIELDS)


class TestCli:
    def test_list_prints_scenarios_and_measurements(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios:" in out
        assert "measurements:" in out
        for name in REGISTRY.scenario_names():
            assert f"  {name}\n" in out
        for name in REGISTRY.measurement_names():
            assert f"  {name}\n" in out

    def test_sweep_writes_csv_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "--scenarios", "ho-round-rotating-partition",
                "--fault-models", "fault-free",
                "--seeds", "0",
                "--quiet",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert json_path.exists()
        with open(csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["scenario"] == "ho-round-rotating-partition"
        assert rows[0]["safe"] == "True"

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["--scenarios", "no-such-scenario", "--quiet"]) == 2
