"""Tests for the runner CLI: --list, --csv, axis validation, multi-axis grids."""

from __future__ import annotations

import csv
import json

from repro.runner.__main__ import main
from repro.runner.registry import REGISTRY
from repro.runner.sweep import RunSpec, SweepResult, execute_run


def run_small_sweep():
    specs = [
        RunSpec.make("ho-round-mobile-omission", "fault-free", seed, n=4)
        for seed in (0, 1)
    ]
    return SweepResult(records=[execute_run(spec) for spec in specs])


class TestCsvExport:
    def test_write_csv_matches_json_records(self, tmp_path):
        result = run_small_sweep()
        path = tmp_path / "out" / "sweep.csv"
        result.write_csv(str(path))
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.records)
        for row, record in zip(rows, result.records):
            expected = record.to_json_dict()
            assert row["scenario"] == expected["scenario"]
            assert int(row["seed"]) == expected["seed"]
            assert row["solved"] == str(expected["solved"])
            assert row["error"] == ""
        assert list(rows[0]) == list(SweepResult.CSV_FIELDS)


class TestCli:
    def test_list_prints_scenarios_and_measurements(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "scenarios:" in out
        assert "measurements:" in out
        listed = {line.strip().split("  ")[0] for line in out.splitlines() if line.startswith("  ")}
        for name in REGISTRY.scenario_names():
            assert name in listed
        for name in REGISTRY.measurement_names():
            assert name in listed
        # monitorable/batchable scenarios are marked so --predicates and
        # --replicas targets are obvious
        batchable = set(REGISTRY.batchable_scenario_names())
        for name in REGISTRY.monitorable_scenario_names():
            if name in batchable:
                assert f"  {name}  [monitorable, batchable]\n" in out
            else:
                assert f"  {name}  [monitorable]\n" in out

    def test_sweep_writes_csv_and_json(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = main(
            [
                "--scenarios", "ho-round-rotating-partition",
                "--fault-models", "fault-free",
                "--seeds", "0",
                "--quiet",
                "--json", str(json_path),
                "--csv", str(csv_path),
            ]
        )
        assert code == 0
        assert json_path.exists()
        with open(csv_path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 1
        assert rows[0]["scenario"] == "ho-round-rotating-partition"
        assert rows[0]["safe"] == "True"

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["--scenarios", "no-such-scenario", "--quiet"]) == 2

    def test_list_includes_fault_models(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fault models:" in out
        for name in REGISTRY.fault_model_names():
            assert f"  {name}\n" in out

    def test_unknown_fault_model_exits_2_with_known_list(self, capsys):
        """A typo like crash-recover must not become a grid of errored runs."""
        code = main(
            [
                "--scenarios", "chandra-toueg",
                "--fault-models", "fault-free", "crash-recover",
                "--quiet",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown fault model(s) crash-recover" in err
        for name in REGISTRY.fault_model_names():
            assert name in err

    def test_multi_axis_flags_expand_the_grid(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "--scenarios", "chandra-toueg",
                "--fault-models", "fault-free",
                "--seeds", "0",
                "--ns", "3", "4",
                "--param", "stabilization_time=20.0",
                "--quiet",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["grid_size"] == 2
        assert sorted(run["n"] for run in payload["runs"]) == [3, 4]
        assert all(
            run["params"] == {"stabilization_time": 20.0} for run in payload["runs"]
        )
        assert set(payload["aggregates"]) == {
            "chandra-toueg/fault-free/n=3",
            "chandra-toueg/fault-free/n=4",
        }

    def test_malformed_param_exits_2(self, capsys):
        assert main(["--param", "no-equals-sign", "--quiet"]) == 2
        assert "key=value" in capsys.readouterr().err

    def test_jsonl_then_resume_skips_completed_cells(self, tmp_path, capsys):
        jsonl = tmp_path / "sweep.jsonl"
        base = [
            "--scenarios", "chandra-toueg",
            "--fault-models", "fault-free",
            "--quiet",
            "--jsonl", str(jsonl),
        ]
        assert main(base + ["--seeds", "0"]) == 0
        assert len(jsonl.read_text().splitlines()) == 1
        # grow the grid and resume into the same file: only the new cell runs
        code = main(base + ["--seeds", "0", "1", "--resume-from", str(jsonl)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 cell(s) resumed" in out
        assert len(jsonl.read_text().splitlines()) == 2
