"""Tests for the scenario registry and the parallel sweep executor."""

from __future__ import annotations

import json

import pytest

from repro.runner import (
    REGISTRY,
    RunSpec,
    build_grid,
    run_measurement_sweep,
    run_one,
    run_sweep,
)
from repro.runner.sweep import execute_run
from repro.workloads import FAULT_MODELS, ScenarioResult
from repro.workloads.scenarios import STACKS


class TestRegistry:
    def test_scenarios_registered_by_workloads(self):
        assert set(STACKS) <= set(REGISTRY.scenario_names())

    def test_measurements_registered_by_workloads(self):
        assert {"theorem3", "theorem5", "theorem6", "theorem7", "corollary4"} <= set(
            REGISTRY.measurement_names()
        )

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            REGISTRY.scenario("no-such-stack")

    def test_run_one_returns_scenario_result(self):
        result = run_one("chandra-toueg", "fault-free", seed=0, n=3)
        assert isinstance(result, ScenarioResult)
        assert result.solved


class TestGridAndRecords:
    def test_build_grid_shape_and_order(self):
        specs = build_grid(["a", "b"], ["x"], [0, 1], n=5)
        assert [spec.key for spec in specs] == [
            ("a", "x", 5, 0),
            ("a", "x", 5, 1),
            ("b", "x", 5, 0),
            ("b", "x", 5, 1),
        ]

    def test_build_grid_multi_axis(self):
        """--ns style size sweeps and per-scenario param sets cross the grid."""
        specs = build_grid(
            ["a"], ["x"], [0], ns=[4, 8],
            param_sets=[{"rounds": 10}, {"rounds": 20}], churn=0.5,
        )
        assert [(s.n, s.kwargs) for s in specs] == [
            (4, {"churn": 0.5, "rounds": 10}),
            (4, {"churn": 0.5, "rounds": 20}),
            (8, {"churn": 0.5, "rounds": 10}),
            (8, {"churn": 0.5, "rounds": 20}),
        ]
        # cells differing only in params have distinct resume keys
        assert len({s.cell_key for s in specs}) == 4

    def test_build_grid_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            build_grid(["a"], ["x"], [0], ns=[])
        with pytest.raises(ValueError):
            build_grid(["a"], ["x"], [0], param_sets=[])

    def test_execute_run_flattens_metrics(self):
        record = execute_run(RunSpec.make("chandra-toueg", "fault-free", seed=0, n=3))
        assert record.solved and record.safe and record.terminated
        assert record.decided_processes == record.scope_size == 3
        assert record.last_decision_time is not None
        assert record.error is None
        assert record.result is not None

    def test_execute_run_captures_errors(self):
        record = execute_run(RunSpec.make("chandra-toueg", "no-such-model", seed=0))
        assert record.error is not None and "ValueError" in record.error
        assert not record.solved


class TestSweepExecutor:
    GRID = build_grid(list(STACKS), ["crash-stop"], seeds=[0, 1, 2, 3], n=4)

    def test_parallel_grid_matches_inline_grid(self):
        """3 scenarios x 4 seeds, in 4 workers: deterministic, seed-stable."""
        inline = run_sweep(self.GRID, workers=1)
        parallel = run_sweep(self.GRID, workers=4)
        assert parallel.workers == 4
        assert len(parallel.records) == 12
        # Records come back in grid order with identical outcomes (wall times
        # and the non-picklable-by-comparison `result` field excluded by
        # comparing the JSON projections minus wall_seconds).
        def projection(sweep):
            rows = []
            for record in sweep.records:
                row = record.to_json_dict()
                row.pop("wall_seconds")
                rows.append(row)
            return rows

        assert projection(parallel) == projection(inline)
        # Aggregates are deterministic (no wall-clock anywhere in them).
        assert parallel.aggregate() == inline.aggregate()

    def test_aggregate_contents(self):
        sweep = run_sweep(self.GRID, workers=4)
        aggregates = sweep.aggregate()
        # single-size grids keep the classic scenario/fault_model keys
        assert set(aggregates) == {f"{stack}/crash-stop" for stack in STACKS}
        for aggregate in aggregates.values():
            assert aggregate["runs"] == 4
            assert aggregate["n"] == 4
            assert aggregate["seeds"] == [0, 1, 2, 3]
            assert aggregate["errors"] == 0
            assert aggregate["all_safe"] is True
        # Every stack solves crash-stop (the paper's E8 matrix, row one).
        assert all(a["solve_rate"] == 1.0 for a in aggregates.values())

    def test_aggregate_groups_multi_size_grids_per_n(self):
        specs = build_grid(["chandra-toueg"], ["fault-free"], [0, 1], ns=[3, 4])
        aggregates = run_sweep(specs, workers=1).aggregate()
        assert set(aggregates) == {
            "chandra-toueg/fault-free/n=3",
            "chandra-toueg/fault-free/n=4",
        }
        assert aggregates["chandra-toueg/fault-free/n=3"]["n"] == 3
        assert aggregates["chandra-toueg/fault-free/n=3"]["runs"] == 2

    def test_solve_rate_excludes_errored_runs(self):
        """An infrastructure failure must not deflate the scientific solve rate."""
        specs = [
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3),
            # an unknown stabilization_time type makes the runner raise
            RunSpec.make("chandra-toueg", "fault-free", 1, n=3, no_such_param=1),
        ]
        sweep = run_sweep(specs, workers=1)
        aggregate = sweep.aggregate()["chandra-toueg/fault-free"]
        assert aggregate["runs"] == 2
        assert aggregate["errors"] == 1
        assert aggregate["solved"] == 1
        assert aggregate["solve_rate"] == 1.0  # 1 solved / 1 non-errored
        assert aggregate["all_safe"] is True

    def test_solve_rate_is_none_when_every_run_errored(self):
        specs = [RunSpec.make("chandra-toueg", "fault-free", 0, no_such_param=1)]
        aggregate = run_sweep(specs, workers=1).aggregate()["chandra-toueg/fault-free"]
        assert aggregate["errors"] == 1
        assert aggregate["solve_rate"] is None
        assert aggregate["all_safe"] is None

    def test_specs_differing_only_in_params_do_not_collide(self):
        """Parallel results are indexed by grid position, not by spec fields."""
        specs = [
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3, stabilization_time=10.0),
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3, stabilization_time=60.0),
        ]
        parallel = run_sweep(specs, workers=2)
        inline = run_sweep(specs, workers=1)
        latencies = [record.last_decision_time for record in parallel.records]
        assert latencies == [record.last_decision_time for record in inline.records]
        # Two genuinely different runs, not one record duplicated.
        assert latencies[0] != latencies[1]

    def test_record_for_rejects_ambiguous_lookup(self):
        specs = [
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3),
            RunSpec.make("chandra-toueg", "fault-free", 0, n=4),
        ]
        sweep = run_sweep(specs, workers=1)
        with pytest.raises(KeyError, match="disambiguate"):
            sweep.record_for("chandra-toueg", "fault-free", 0)
        assert sweep.record_for("chandra-toueg", "fault-free", 0, n=4).n == 4

    def test_streaming_callback_sees_every_record(self):
        seen = []
        run_sweep(self.GRID[:4], workers=2, on_record=seen.append)
        assert len(seen) == 4

    def test_json_summary_round_trips(self, tmp_path):
        sweep = run_sweep(self.GRID[:2], workers=1)
        path = tmp_path / "sub" / "sweep.json"
        sweep.write_json(str(path))
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-sweep/4"
        assert payload["grid_size"] == 2
        assert len(payload["runs"]) == 2
        assert set(payload["aggregates"]) == {"ho-stack/crash-stop"}
        for run in payload["runs"]:
            assert run["error"] is None
            assert run["solved"] is True


class TestMeasurementSweep:
    PARAMS = [dict(n=3, x=1, seed=0), dict(n=4, x=1, seed=0)]

    def test_results_in_input_order(self):
        measurements = run_measurement_sweep("theorem5", self.PARAMS, workers=1)
        assert [m.n for m in measurements] == [3, 4]
        for measurement in measurements:
            assert measurement.within_bound

    def test_parallel_matches_inline(self):
        inline = run_measurement_sweep("theorem5", self.PARAMS, workers=1)
        parallel = run_measurement_sweep("theorem5", self.PARAMS, workers=2)
        assert [(m.n, m.measured, m.bound) for m in inline] == [
            (m.n, m.measured, m.bound) for m in parallel
        ]
