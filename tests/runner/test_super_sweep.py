"""The super-batch sweep path: the whole grid as one schedulable unit.

``run_sweep(backend="super")`` builds a CellPlan per cell through the
registry and hands every batch to the super backend in one call.  These
tests pin the records equal to the scalar reference, the backend labels
(``super`` / ``super:cell-fallback (reason)``), the single-process
constraint (library ValueError and CLI exit 2), and the CellPlan builder
registry itself.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.rounds.backend import CellPlan
from repro.runner.__main__ import main as cli_main
from repro.runner.registry import REGISTRY
from repro.runner.sweep import BACKEND_CHOICES, build_grid, run_sweep

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

GRID = dict(
    scenarios=["ho-classic-otr", "ho-round-mobile-omission", "ho-round-bursty-loss"],
    fault_models=["fault-free", "crash-stop"],
    seeds=[0],
)


class TestSuperSweep:
    def test_super_is_a_backend_choice(self):
        assert "super" in BACKEND_CHOICES

    def test_super_records_match_scalar(self):
        specs = build_grid(ns=[4, 6], **GRID)
        sup = run_sweep(specs, replicas=3, backend="super")
        ref = run_sweep(specs, replicas=3, backend="scalar")
        assert len(sup.records) == len(ref.records)
        for a, b in zip(sup.records, ref.records):
            assert a.error is None
            assert a.replicas["outcomes"] == b.replicas["outcomes"]
            assert a.replicas["aggregates"] == b.replicas["aggregates"]
        assert sup.aggregate() == ref.aggregate()

    @needs_numpy
    def test_super_label_on_grid_cells(self):
        specs = build_grid(ns=[4], **GRID)
        result = run_sweep(specs, replicas=2, backend="super")
        assert all(r.replicas["backend"] == "super" for r in result.records)

    def test_workers_gt_one_rejected(self):
        specs = build_grid(ns=[4], **GRID)
        with pytest.raises(ValueError, match="single-process by design"):
            run_sweep(specs, replicas=2, backend="super", workers=4)

    def test_workers_one_or_none_accepted(self):
        specs = build_grid(scenarios=["ho-classic-otr"], fault_models=["fault-free"],
                           seeds=[0], ns=[4])
        assert run_sweep(specs, replicas=2, backend="super", workers=1).records
        assert run_sweep(specs, replicas=2, backend="super", workers=None).records

    @needs_numpy
    def test_monitored_cell_gets_fallback_label(self):
        """A cell with predicates is super-ineligible: it runs per-cell and
        its record says so."""
        specs = build_grid(
            scenarios=["ho-classic-otr"],
            fault_models=["fault-free"],
            seeds=[0],
            ns=[4],
            predicates=("p_otr",),
        )
        result = run_sweep(specs, replicas=2, backend="super")
        (record,) = result.records
        assert record.error is None
        used = record.replicas["backend"]
        assert used.startswith("super:cell-fallback (")
        assert "per-cell batch path" in used

    def test_scenario_without_builder_falls_through(self):
        """Cells with a batch runner but no CellPlan builder still execute
        (per-cell), so a mixed grid completes end to end."""
        names = set(REGISTRY.batchable_scenario_names())
        no_builder = sorted(
            name for name in names if REGISTRY.batch_builder(name) is None
        )
        if not no_builder:
            pytest.skip("every batchable scenario has a builder")
        specs = build_grid(
            scenarios=[no_builder[0], "ho-classic-otr"],
            fault_models=["fault-free"],
            seeds=[0],
            ns=[4],
        )
        result = run_sweep(specs, replicas=2, backend="super")
        assert all(record.error is None for record in result.records)


class TestBuilderRegistry:
    @pytest.mark.parametrize(
        "scenario",
        [
            "ho-classic-otr",
            "ho-classic-uv",
            "ho-classic-lv",
            "ho-round-mobile-omission",
            "ho-round-rotating-partition",
            "ho-round-bursty-loss",
            "ho-round-eventually-stable-coordinator",
        ],
    )
    def test_builder_registered_and_returns_cellplan(self, scenario):
        builder = REGISTRY.batch_builder(scenario)
        assert builder is not None
        plan = builder("fault-free", n=4, seeds=[0, 1])
        assert isinstance(plan, CellPlan)
        assert plan.batch.replicas == 2

    def test_finalize_flattens_outcomes(self):
        from repro.rounds.backend import get_backend

        plan = REGISTRY.batch_builder("ho-classic-otr")("fault-free", n=4, seeds=[0, 1])
        outcomes = plan.finalize(get_backend("scalar").run(plan.batch))
        assert len(outcomes) == 2
        assert all(o["solved"] for o in outcomes)


class TestCli:
    def test_super_with_workers_exits_2(self, capsys):
        code = cli_main(
            ["--backend", "super", "--workers", "4", "--replicas", "2"]
        )
        assert code == 2
        assert "single-process by design" in capsys.readouterr().err

    def test_super_smoke_grid_runs(self, capsys):
        code = cli_main(
            [
                "--scenarios", "ho-classic-otr", "ho-round-eventually-stable-coordinator",
                "--fault-models", "fault-free", "crash-stop",
                "--replicas", "2",
                "--backend", "super",
                "--quiet",
            ]
        )
        assert code == 0
