"""Tests for the scalable sweep pipeline: wire records, sinks, resume."""

from __future__ import annotations

import csv
import json
import multiprocessing

import pytest

from repro.runner.registry import REGISTRY
from repro.runner.sweep import (
    CsvSink,
    JsonlSink,
    JsonSummarySink,
    RunRecord,
    RunSpec,
    SweepResult,
    build_grid,
    load_jsonl_records,
    run_sweep,
)
from repro.workloads import ScenarioResult

GRID = build_grid(["chandra-toueg"], ["fault-free", "crash-stop"], [0, 1, 2], n=3)


# --------------------------------------------------------------------------- #
# lightweight wire records
# --------------------------------------------------------------------------- #


def _register_unpicklable_scenario():
    """A scenario whose ScenarioResult cannot cross a process boundary."""
    from repro.workloads.scenarios import run_chandra_toueg

    def runner(fault_model, n=4, seed=0, **params):
        result = run_chandra_toueg(fault_model, n=n, seed=seed, **params)
        result.extra["blob"] = lambda: None  # lambdas do not pickle
        return result

    REGISTRY.register_scenario("unpicklable-result", runner)


class TestLightweightRecords:
    def test_parallel_records_are_slim_by_default(self):
        sweep = run_sweep(GRID, workers=2)
        assert all(record.result is None for record in sweep.records)
        assert all(record.error is None for record in sweep.records)

    def test_keep_results_ships_results_through_the_pool(self):
        sweep = run_sweep(GRID[:2], workers=2, keep_results=True)
        assert all(isinstance(r.result, ScenarioResult) for r in sweep.records)

    def test_inline_behaviour_unchanged(self):
        """workers=1 keeps the in-process result attached, opt-in or not."""
        for keep_results in (False, True):
            sweep = run_sweep(GRID[:2], workers=1, keep_results=keep_results)
            assert all(isinstance(r.result, ScenarioResult) for r in sweep.records)

    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="locally registered scenarios need fork-inherited registries",
    )
    def test_no_result_crosses_the_pool_by_default(self):
        """The full result never touches pickle unless the caller opts in."""
        _register_unpicklable_scenario()
        specs = [RunSpec.make("unpicklable-result", "fault-free", s, n=3) for s in (0, 1)]
        # default: the worker strips the result before returning -- works.
        sweep = run_sweep(specs, workers=2)
        assert all(r.error is None and r.result is None for r in sweep.records)
        # opting in ships the (here: unpicklable) result across the pool.
        with pytest.raises(Exception):
            run_sweep(specs, workers=2, keep_results=True)

    def test_parallel_matches_inline_with_slim_records(self):
        inline = run_sweep(GRID, workers=1)
        parallel = run_sweep(GRID, workers=2)
        strip = lambda sweep: [  # noqa: E731
            {k: v for k, v in r.to_json_dict().items() if k != "wall_seconds"}
            for r in sweep.records
        ]
        assert strip(parallel) == strip(inline)
        assert parallel.aggregate() == inline.aggregate()


# --------------------------------------------------------------------------- #
# record sinks
# --------------------------------------------------------------------------- #


class TestSinks:
    def test_jsonl_sink_streams_one_flushed_line_per_run(self, tmp_path):
        path = tmp_path / "out" / "sweep.jsonl"
        seen = []

        def spy(record):
            # flushed as records stream back: every already-emitted record
            # is on disk before the sweep finishes.
            seen.append(len(path.read_text().splitlines()))

        run_sweep(GRID, workers=2, sinks=[JsonlSink(str(path))], on_record=spy)
        assert seen == list(range(1, len(GRID) + 1))
        records = load_jsonl_records(str(path))
        assert {r.cell_key for r in records} == {s.cell_key for s in GRID}

    def test_jsonl_round_trip_preserves_the_wire_record(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep = run_sweep(GRID[:3], workers=1, sinks=[JsonlSink(str(path))])
        reloaded = {r.cell_key: r for r in load_jsonl_records(str(path))}
        for record in sweep.records:
            loaded = reloaded[record.cell_key]
            assert loaded.to_json_dict() == record.to_json_dict()

    def test_csv_sink_streams_rows(self, tmp_path):
        path = tmp_path / "sweep.csv"
        run_sweep(GRID[:3], workers=1, sinks=[CsvSink(str(path))])
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert list(rows[0]) == list(SweepResult.CSV_FIELDS)
        assert rows[0]["params"] == "{}"

    def test_json_summary_sink_writes_deterministic_summary(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        run_sweep(GRID, workers=2, sinks=[JsonSummarySink(str(a))])
        run_sweep(GRID, workers=1, sinks=[JsonSummarySink(str(b))])
        payload_a, payload_b = json.loads(a.read_text()), json.loads(b.read_text())
        assert payload_a["aggregates"] == payload_b["aggregates"]
        order = [(r["scenario"], r["fault_model"], r["n"], r["seed"]) for r in payload_a["runs"]]
        assert order == [(r["scenario"], r["fault_model"], r["n"], r["seed"]) for r in payload_b["runs"]]

    def test_sinks_closed_even_when_a_run_callback_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sink = JsonlSink(str(path))

        def boom(record):
            raise RuntimeError("consumer crashed")

        with pytest.raises(RuntimeError):
            run_sweep(GRID[:2], workers=1, sinks=[sink], on_record=boom)
        assert sink._handle.closed


# --------------------------------------------------------------------------- #
# resume from a partial JSONL
# --------------------------------------------------------------------------- #


class TestResume:
    def test_resume_skips_completed_cells_and_merges(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        uninterrupted = run_sweep(GRID, workers=1)

        # simulate a killed grid: only the first 3 cells reached the JSONL,
        # plus a torn final line from the dying process.
        sink = JsonlSink(str(path))
        for record in uninterrupted.records[:3]:
            sink.write(record)
        sink._handle.write('{"scenario": "chandra-toueg", "fault_mod')  # torn
        sink.close()

        executed = []
        resumed = run_sweep(
            GRID,
            workers=2,
            on_record=executed.append,
            sinks=[JsonlSink(str(path), append=True)],
            resume_from=str(path),
        )
        assert resumed.resumed == 3
        assert len(executed) == len(GRID) - 3
        # the merged sweep reproduces the uninterrupted grid byte-identically
        assert json.dumps(resumed.aggregate(), sort_keys=True) == json.dumps(
            uninterrupted.aggregate(), sort_keys=True
        )
        # and the resumed-into JSONL now covers the whole grid
        assert {r.cell_key for r in load_jsonl_records(str(path))} == {
            s.cell_key for s in GRID
        }

    def test_resume_retries_errored_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        good = run_sweep(GRID[:1], workers=1).records[0]
        errored = RunRecord(
            scenario=GRID[1].scenario,
            fault_model=GRID[1].fault_model,
            seed=GRID[1].seed,
            n=GRID[1].n,
            solved=False,
            safe=False,
            terminated=False,
            decided_processes=0,
            scope_size=0,
            first_decision_time=None,
            last_decision_time=None,
            messages_sent=0,
            wall_seconds=0.1,
            error="OSError: worker lost",
        )
        sink = JsonlSink(str(path))
        sink.write(good)
        sink.write(errored)
        sink.close()

        executed = []
        resumed = run_sweep(GRID[:2], workers=1, on_record=executed.append,
                            resume_from=str(path))
        assert resumed.resumed == 1
        assert [r.cell_key for r in executed] == [GRID[1].cell_key]
        assert resumed.records[1].error is None

    def test_resume_ignores_records_of_other_cells(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        other = build_grid(["chandra-toueg"], ["lossy"], [9], n=3)
        sink = JsonlSink(str(path))
        for record in run_sweep(other, workers=1).records:
            sink.write(record)
        sink.close()
        resumed = run_sweep(GRID[:2], workers=1, resume_from=str(path))
        assert resumed.resumed == 0
        assert len(resumed.records) == 2

    def test_resume_from_missing_file_runs_everything(self, tmp_path):
        resumed = run_sweep(GRID[:2], workers=1, resume_from=str(tmp_path / "nope"))
        assert resumed.resumed == 0
        assert len(resumed.records) == 2

    def test_params_distinguish_resume_cells(self, tmp_path):
        """Cells differing only in extra params never collide on resume."""
        path = tmp_path / "sweep.jsonl"
        specs = [
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3, stabilization_time=10.0),
            RunSpec.make("chandra-toueg", "fault-free", 0, n=3, stabilization_time=60.0),
        ]
        sink = JsonlSink(str(path))
        sink.write(run_sweep(specs[:1], workers=1).records[0])
        sink.close()
        resumed = run_sweep(specs, workers=1, resume_from=str(path))
        assert resumed.resumed == 1
        assert resumed.records[0].params == specs[0].params
        assert resumed.records[1].params == specs[1].params
        assert (
            resumed.records[0].last_decision_time
            != resumed.records[1].last_decision_time
        )


class TestNonJsonParams:
    def test_sinks_and_summary_tolerate_non_json_params(self, tmp_path):
        """A frozenset-valued param must not abort a sweep mid-stream."""
        spec = RunSpec.make(
            "chandra-toueg", "fault-free", 0, n=3, weird=frozenset({1, 2})
        )
        jsonl = tmp_path / "sweep.jsonl"
        sweep = run_sweep([spec], workers=1, sinks=[JsonlSink(str(jsonl))])
        sweep.write_json(str(tmp_path / "summary.json"))
        sweep.write_csv(str(tmp_path / "records.csv"))
        assert len(jsonl.read_text().splitlines()) == 1
