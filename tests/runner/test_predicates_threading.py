"""Tests for predicate reports threaded through the sweep pipeline (repro-sweep/4)."""

from __future__ import annotations

import csv
import json

from repro.analysis import GoodPeriodStats, good_period_stats
from repro.runner.__main__ import main
from repro.runner.registry import REGISTRY
from repro.runner.sweep import (
    SCHEMA,
    CsvSink,
    JsonlSink,
    RunRecord,
    RunSpec,
    SweepResult,
    execute_run,
    load_jsonl_records,
    run_sweep,
)


def monitored_spec(seed=0, **params):
    return RunSpec.make(
        "ho-round-mobile-omission",
        "fault-free",
        seed,
        n=4,
        predicates=("p_su", "p_2otr"),
        **params,
    )


class TestWireRecords:
    def test_execute_run_lifts_reports_onto_the_wire_record(self):
        record = execute_run(monitored_spec())
        assert record.predicates is not None
        assert set(record.predicates) == {"p_su", "p_2otr"}
        report = record.predicates["p_2otr"]
        assert {"holds", "first_hold_round", "longest_good_run", "satisfaction"} <= set(report)

    def test_unmonitored_runs_carry_none(self):
        record = execute_run(RunSpec.make("ho-round-mobile-omission", "fault-free", 0, n=4))
        assert record.predicates is None
        assert record.to_json_dict()["predicates"] is None

    def test_schema_is_v4(self):
        assert SCHEMA == "repro-sweep/4"
        result = SweepResult(records=[execute_run(monitored_spec())])
        assert result.to_json()["schema"] == "repro-sweep/4"

    def test_json_round_trip_preserves_reports(self):
        record = execute_run(monitored_spec())
        payload = json.loads(json.dumps(record.to_json_dict()))
        clone = RunRecord.from_json_dict(payload)
        assert clone.predicates == record.predicates
        assert clone.cell_key == record.cell_key


class TestSinks:
    def test_jsonl_sink_persists_and_reloads_reports(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        run_sweep([monitored_spec(seed) for seed in (0, 1)], sinks=[JsonlSink(str(path))])
        records = load_jsonl_records(str(path))
        assert len(records) == 2
        assert all(record.predicates for record in records)

    def test_csv_has_a_predicates_column(self, tmp_path):
        path = tmp_path / "sweep.csv"
        run_sweep([monitored_spec()], sinks=[CsvSink(str(path))])
        with open(path, newline="") as handle:
            rows = list(csv.DictReader(handle))
        assert "predicates" in rows[0]
        decoded = json.loads(rows[0]["predicates"])
        assert "p_su" in decoded

    def test_resume_skips_cells_and_reproduces_predicate_aggregates(self, tmp_path):
        specs = [monitored_spec(seed) for seed in (0, 1, 2)]
        path = tmp_path / "sweep.jsonl"
        full = run_sweep(specs, sinks=[JsonlSink(str(path))])
        # keep only the first line plus a torn tail, then resume
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n" + '{"scenario": "ho-ro')
        resumed = run_sweep(
            specs, sinks=[JsonlSink(str(path), append=True)], resume_from=str(path)
        )
        assert resumed.resumed == 1
        assert json.dumps(resumed.aggregate(), sort_keys=True) == json.dumps(
            full.aggregate(), sort_keys=True
        )

    def test_v2_jsonl_without_predicates_key_resumes_cleanly(self, tmp_path):
        spec = RunSpec.make("ho-round-mobile-omission", "fault-free", 0, n=4)
        record = execute_run(spec)
        legacy = record.to_json_dict()
        legacy.pop("predicates")  # what a repro-sweep/2 file looks like
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(legacy) + "\n")
        resumed = run_sweep([spec], resume_from=str(path))
        assert resumed.resumed == 1
        assert resumed.records[0].predicates is None


class TestAggregates:
    def test_groups_with_reports_gain_predicate_aggregates(self):
        result = run_sweep([monitored_spec(seed) for seed in (0, 1)])
        aggregates = result.aggregate()
        (group,) = aggregates.values()
        assert set(group["predicates"]) == {"p_su", "p_2otr"}
        p2 = group["predicates"]["p_2otr"]
        assert p2["runs"] == 2
        assert 0.0 <= p2["hold_rate"] <= 1.0

    def test_groups_without_reports_have_no_predicates_key(self):
        result = run_sweep([RunSpec.make("ho-round-mobile-omission", "fault-free", 0, n=4)])
        (group,) = result.aggregate().values()
        assert "predicates" not in group


class TestCliFlags:
    def test_predicates_flag_runs_a_monitored_grid(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "--scenarios", "ho-round-mobile-omission",
                "--fault-models", "fault-free",
                "--seeds", "0",
                "--predicates", "p_su,p_k", "p_2otr",
                "--stop-after-held", "5",
                "--quiet",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-sweep/4"
        (run,) = payload["runs"]
        assert set(run["predicates"]) == {"p_su", "p_k", "p_2otr"}
        assert run["params"]["predicates"] == ["p_su", "p_k", "p_2otr"]
        assert run["params"]["stop_after_held"] == 5

    def test_unknown_predicate_exits_2_with_known_list(self, capsys):
        code = main(
            [
                "--scenarios", "ho-round-mobile-omission",
                "--fault-models", "fault-free",
                "--predicates", "p_bogus",
                "--quiet",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "p_bogus" in err and "p_otr" in err

    def test_predicates_on_a_des_scenario_exits_2(self, capsys):
        code = main(
            [
                "--scenarios", "chandra-toueg",
                "--fault-models", "fault-free",
                "--predicates", "p_su",
                "--quiet",
            ]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "chandra-toueg" in err and "monitorable" in err

    def test_nonpositive_stop_after_held_exits_2(self, capsys):
        code = main(
            [
                "--scenarios", "ho-round-mobile-omission",
                "--fault-models", "fault-free",
                "--predicates", "p_su",
                "--stop-after-held", "0",
                "--quiet",
            ]
        )
        assert code == 2
        assert "at least 1" in capsys.readouterr().err

    def test_stop_after_held_requires_predicates(self, capsys):
        code = main(
            [
                "--scenarios", "ho-round-mobile-omission",
                "--fault-models", "fault-free",
                "--stop-after-held", "3",
                "--quiet",
            ]
        )
        assert code == 2
        assert "--predicates" in capsys.readouterr().err

    def test_list_names_the_predicates(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "predicates" in out
        for name in ("p_otr", "p_restr_otr", "p_su", "p_k", "p_2otr", "p_1/1otr"):
            assert f"  {name}\n" in out


class TestRegistryMetadata:
    def test_monitorable_scenarios_cover_the_ho_paths_only(self):
        monitorable = set(REGISTRY.monitorable_scenario_names())
        assert "ho-stack" in monitorable
        assert any(name.startswith("ho-round-") for name in monitorable)
        assert "chandra-toueg" not in monitorable
        assert "aguilera" not in monitorable

    def test_fault_models_list_even_after_manual_registration(self):
        """Registering a custom scenario before ``repro.workloads`` is ever
        imported must not suppress the workload import (the old emptiness
        check did, leaving the fault-model namespace empty).  Needs a fresh
        interpreter: in-process the workloads are long imported."""
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        probe = (
            "from repro.runner.registry import REGISTRY\n"
            "REGISTRY.register_scenario('custom', lambda *a, **k: None)\n"
            "print(','.join(REGISTRY.fault_model_names()))\n"
        )
        env = {**os.environ, "PYTHONPATH": src}
        out = subprocess.run(
            [sys.executable, "-c", probe], capture_output=True, text=True, env=env
        )
        assert out.returncode == 0, out.stderr
        assert "fault-free" in out.stdout.split(",")


class TestGoodPeriodStats:
    def test_stats_read_straight_from_wire_reports(self):
        record = execute_run(monitored_spec())
        stats = good_period_stats(record.predicates)
        assert set(stats) == {"p_su", "p_2otr"}
        su = stats["p_su"]
        assert isinstance(su, GoodPeriodStats)
        assert su.rounds_observed > 0
        assert su.good_fraction == record.predicates["p_su"]["satisfaction"]
        assert su.longest_good_period == record.predicates["p_su"]["longest_good_run"]
