"""The sweep's ``replicas=`` axis: batched cells vs R independent scalar runs."""

from __future__ import annotations

import json

import pytest

from repro._optional import have_numpy
from repro.runner.__main__ import main
from repro.runner.sweep import (
    JsonlSink,
    RunSpec,
    build_grid,
    execute_run,
    run_sweep,
)


def strip_wall(payload):
    if isinstance(payload, dict):
        return {k: strip_wall(v) for k, v in payload.items() if k != "wall_seconds"}
    if isinstance(payload, list):
        return [strip_wall(item) for item in payload]
    return payload


def strip_backend(payload):
    if isinstance(payload, dict):
        return {k: strip_backend(v) for k, v in payload.items() if k != "backend"}
    if isinstance(payload, list):
        return [strip_backend(item) for item in payload]
    return payload


GRID = dict(
    scenarios=["ho-classic-otr", "ho-classic-lv"],
    fault_models=["fault-free", "crash-stop", "lossy"],
)


class TestBatchedCells:
    def test_batched_cell_equals_r_scalar_runs_same_seeds(self):
        """The regression pin: a batched run == R scalar runs, same seeds."""
        specs = build_grid(seeds=[3], n=5, **GRID)
        batched = run_sweep(specs, replicas=5, backend="auto")
        reference = run_sweep(specs, replicas=5, backend="scalar")
        a = strip_backend(strip_wall([r.to_json_dict() for r in batched.records]))
        b = strip_backend(strip_wall([r.to_json_dict() for r in reference.records]))
        assert a == b
        # and the per-replica outcomes are exactly the individual runs:
        for record in reference.records:
            assert record.replicas["backend"] == "scalar-loop"
            for i, outcome in enumerate(record.replicas["outcomes"]):
                single = execute_run(
                    RunSpec.make(record.scenario, record.fault_model, 3 + i, n=5)
                )
                assert outcome["seed"] == 3 + i
                assert outcome["solved"] == single.solved
                assert outcome["last_decision_time"] == single.last_decision_time
                assert outcome["messages_sent"] == single.messages_sent

    def test_monitored_batched_cell_matches_scalar_loop(self):
        specs = [
            RunSpec.make(
                "ho-classic-otr", "lossy", 0, n=5,
                predicates=("p_su", "p_k", "p_2otr"), stop_after_held=6,
                run_full_horizon=True,
            )
        ]
        batched = run_sweep(specs, replicas=4, backend="auto")
        reference = run_sweep(specs, replicas=4, backend="scalar")
        assert strip_backend(strip_wall(batched.records[0].to_json_dict())) == \
            strip_backend(strip_wall(reference.records[0].to_json_dict()))
        outcomes = batched.records[0].replicas["outcomes"]
        assert all(set(o["predicates"]) == {"p_su", "p_k", "p_2otr"} for o in outcomes)

    def test_aggregates_match_the_unbatched_grid(self):
        """Replica-granular aggregation: batched and plain sweeps agree."""
        specs = build_grid(seeds=[0], n=4, **GRID)
        batched = run_sweep(specs, replicas=4)
        plain = run_sweep(build_grid(seeds=[0, 1, 2, 3], n=4, **GRID))
        batched_aggregate = batched.aggregate()
        plain_aggregate = plain.aggregate()
        for name, group in plain_aggregate.items():
            for key in ("errors", "solved", "solve_rate", "all_safe",
                        "mean_last_decision_time", "max_last_decision_time",
                        "total_messages_sent"):
                assert batched_aggregate[name][key] == group[key], (name, key)
            assert batched_aggregate[name]["replicas"] == 4
            dispersion = batched_aggregate[name]["replica_dispersion"]
            assert dispersion["cells"] == 1
            assert 0.0 <= dispersion["solve_rate"]["min"] <= dispersion["solve_rate"]["max"] <= 1.0

    def test_non_batchable_scenarios_fall_back_to_the_scalar_loop(self):
        # The -monitored round-adversary variants deliberately register no
        # batch runner (full horizon + bound checks stay scalar); the plain
        # dynamic families are batchable since the counter-based streams.
        scenario = "ho-round-mobile-omission-monitored"
        specs = [RunSpec.make(scenario, "fault-free", 0, n=4, rounds=30)]
        result = run_sweep(specs, replicas=3, backend="auto")
        record = result.records[0]
        assert record.replicas["backend"] == "scalar-loop"
        singles = [
            execute_run(RunSpec.make(scenario, "fault-free", s, n=4, rounds=30))
            for s in range(3)
        ]
        assert [o["solved"] for o in record.replicas["outcomes"]] == [
            s.solved for s in singles
        ]
        assert record.messages_sent == sum(s.messages_sent for s in singles)

    def test_errored_cells_aggregate_identically_across_backends(self):
        """A failing batched cell must be as visible as R failed scalar runs."""
        # stop_after_held without predicates raises inside the runner.
        specs = [
            RunSpec.make("ho-classic-otr", "fault-free", 0, n=4, stop_after_held=3)
        ]
        via_batch = run_sweep(specs, replicas=3, backend="auto")
        via_scalar = run_sweep(specs, replicas=3, backend="scalar")
        assert via_batch.records[0].error and via_scalar.records[0].error
        batch_aggregate = via_batch.aggregate()["ho-classic-otr/fault-free"]
        scalar_aggregate = via_scalar.aggregate()["ho-classic-otr/fault-free"]
        assert batch_aggregate["errors"] == scalar_aggregate["errors"] == 3
        assert batch_aggregate == scalar_aggregate

    def test_backend_field_records_what_actually_executed(self):
        specs = build_grid(seeds=[0], n=4, scenarios=["ho-classic-otr"],
                           fault_models=["fault-free"])
        (record,) = run_sweep(specs, replicas=2, backend="auto").records
        label = record.replicas["backend"]
        if have_numpy():
            assert label == "batch"
        else:
            assert label.startswith("batch:scalar-fallback")

    def test_replicas_validation(self):
        specs = build_grid(seeds=[0], n=4, scenarios=["ho-classic-otr"],
                           fault_models=["fault-free"])
        with pytest.raises(ValueError, match="replicas"):
            run_sweep(specs, replicas=0)
        with pytest.raises(ValueError, match="backend"):
            run_sweep(specs, replicas=2, backend="gpu")


class TestBatchedWire:
    def test_jsonl_round_trip_and_resume(self, tmp_path):
        from repro.runner.sweep import load_jsonl_records

        path = str(tmp_path / "cells.jsonl")
        specs = build_grid(seeds=[0], n=4, scenarios=["ho-classic-otr"],
                           fault_models=["fault-free", "lossy"])
        full = run_sweep(specs, replicas=3, sinks=[JsonlSink(path)])
        reloaded = load_jsonl_records(path)
        assert {r.cell_key for r in reloaded} == {r.cell_key for r in full.records}
        assert all(r.replicas["count"] == 3 for r in reloaded)
        # resume skips every completed batched cell
        executed = []
        resumed = run_sweep(
            specs, replicas=3, resume_from=path, on_record=executed.append
        )
        assert resumed.resumed == 2 and executed == []
        assert json.dumps(resumed.aggregate(), sort_keys=True) == json.dumps(
            full.aggregate(), sort_keys=True
        )

    def test_batched_and_plain_cells_have_distinct_keys(self):
        plain = RunSpec.make("ho-classic-otr", "fault-free", 0, n=4)
        from dataclasses import replace

        batched = replace(plain, replicas=4)
        assert plain.cell_key != batched.cell_key

    def test_csv_carries_the_replica_payload(self, tmp_path):
        specs = build_grid(seeds=[0], n=4, scenarios=["ho-classic-otr"],
                           fault_models=["fault-free"])
        result = run_sweep(specs, replicas=2)
        path = tmp_path / "cells.csv"
        result.write_csv(str(path))
        import csv

        with open(path, newline="") as handle:
            (row,) = list(csv.DictReader(handle))
        payload = json.loads(row["replicas"])
        assert payload["count"] == 2 and len(payload["outcomes"]) == 2


class TestCliFlags:
    def test_replicas_and_backend_flags(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        code = main(
            [
                "--scenarios", "ho-classic-otr",
                "--fault-models", "fault-free", "lossy",
                "--seeds", "0",
                "--replicas", "4",
                "--backend", "auto",
                "--quiet",
                "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "x 4 replica(s) [auto backend]" in out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro-sweep/4"
        for run in payload["runs"]:
            assert run["replicas"]["count"] == 4
            assert len(run["replicas"]["outcomes"]) == 4
        assert any(
            "replica_dispersion" in group for group in payload["aggregates"].values()
        )

    def test_invalid_replicas_exits_2(self, capsys):
        assert main(["--replicas", "0"]) == 2
        assert "--replicas" in capsys.readouterr().err

    def test_invalid_backend_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--backend", "gpu"])
        assert excinfo.value.code == 2


class TestVectorisedBackendEngages:
    @pytest.mark.skipif(not have_numpy(), reason="numpy not available")
    def test_classic_cells_vectorise_under_the_batch_backend(self):
        from repro.rounds.backend import get_backend

        backend = get_backend("batch")
        specs = build_grid(seeds=[0], n=4, scenarios=["ho-classic-uv"],
                           fault_models=["crash-stop"])
        run_sweep(specs, replicas=4, backend="batch")
        assert backend.last_fallback_reason is None
