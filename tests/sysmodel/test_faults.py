"""Unit tests for fault schedules and bad-period behaviour descriptions."""

from __future__ import annotations

import pytest

from repro.sysmodel.faults import (
    BadPeriodProcessBehavior,
    FaultEvent,
    FaultKind,
    FaultSchedule,
)


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1.0, FaultKind.CRASH, 0)


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            events=[
                FaultEvent(5.0, FaultKind.CRASH, 1),
                FaultEvent(1.0, FaultKind.CRASH, 0),
            ]
        )
        assert [event.time for event in schedule.events] == [1.0, 5.0]

    def test_crash_stop_constructor(self):
        schedule = FaultSchedule.crash_stop([(0, 3.0), (2, 7.0)])
        assert len(schedule.events) == 2
        assert all(event.kind is FaultKind.CRASH for event in schedule.events)
        assert schedule.affected_processes() == frozenset({0, 2})

    def test_crash_recovery_constructor(self):
        schedule = FaultSchedule.crash_recovery([(1, 2.0, 9.0)])
        kinds = [event.kind for event in schedule.events]
        assert kinds == [FaultKind.CRASH, FaultKind.RECOVER]

    def test_crash_recovery_requires_ordering(self):
        with pytest.raises(ValueError):
            FaultSchedule.crash_recovery([(1, 5.0, 5.0)])

    def test_merge(self):
        a = FaultSchedule.crash_stop([(0, 1.0)])
        b = FaultSchedule.crash_stop([(1, 2.0)])
        merged = a.merged_with(b)
        assert merged.affected_processes() == frozenset({0, 1})

    def test_none(self):
        assert FaultSchedule.none().events == []


class TestBadPeriodProcessBehavior:
    def test_validation(self):
        with pytest.raises(ValueError):
            BadPeriodProcessBehavior(min_step_gap=0.0)
        with pytest.raises(ValueError):
            BadPeriodProcessBehavior(min_step_gap=3.0, max_step_gap=1.0)
        with pytest.raises(ValueError):
            BadPeriodProcessBehavior(stall_probability=1.0)

    def test_defaults_are_valid(self):
        behavior = BadPeriodProcessBehavior()
        assert behavior.min_step_gap <= behavior.max_step_gap
