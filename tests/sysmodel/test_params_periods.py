"""Unit tests for the synchrony parameters and good/bad period schedules."""

from __future__ import annotations

import math

import pytest

from repro.sysmodel.params import SynchronyParams
from repro.sysmodel.periods import GoodPeriod, GoodPeriodKind, PeriodSchedule


class TestSynchronyParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            SynchronyParams(phi=0.5, delta=1.0)
        with pytest.raises(ValueError):
            SynchronyParams(phi=1.0, delta=0.0)

    def test_algorithm_timeouts_match_the_paper(self):
        params = SynchronyParams(phi=1.0, delta=2.0)
        # Algorithm 2: ceil(2*2 + (n+2)*1) for n=4 -> 10 receive steps.
        assert params.algorithm2_timeout(4) == 10
        # Algorithm 3: ceil(2*2 + (2n+1)*1) for n=4 -> 13 receive steps.
        assert params.algorithm3_timeout(4) == 13

    def test_timeouts_round_up(self):
        params = SynchronyParams(phi=1.5, delta=2.3)
        assert params.algorithm2_timeout(3) == math.ceil(2 * 2.3 + 5 * 1.5)
        assert params.algorithm3_timeout(3) == math.ceil(2 * 2.3 + 7 * 1.5)


class TestGoodPeriod:
    def test_length_and_containment(self):
        period = GoodPeriod(10.0, 30.0, GoodPeriodKind.PI_GOOD, frozenset({0, 1}))
        assert period.length == 20.0
        assert period.contains(10.0)
        assert period.contains(29.999)
        assert not period.contains(30.0)
        assert not period.is_initial

    def test_initial_period(self):
        period = GoodPeriod(0.0, math.inf, GoodPeriodKind.PI_GOOD, frozenset({0}))
        assert period.is_initial
        assert period.contains(1e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            GoodPeriod(-1.0, 2.0, GoodPeriodKind.PI_GOOD, frozenset())
        with pytest.raises(ValueError):
            GoodPeriod(5.0, 5.0, GoodPeriodKind.PI_GOOD, frozenset())


class TestPeriodSchedule:
    def test_always_good(self):
        schedule = PeriodSchedule.always_good(3)
        assert schedule.is_good(0.0)
        assert schedule.is_good(12345.0)
        assert schedule.is_synchronous(2, 10.0)
        assert not schedule.is_down(2, 10.0)

    def test_single_good_period(self):
        schedule = PeriodSchedule.single_good_period(
            3, start=50.0, length=20.0, kind=GoodPeriodKind.PI0_DOWN, pi0=[0, 1]
        )
        assert not schedule.is_good(49.9)
        assert schedule.is_good(50.0)
        assert schedule.is_good(69.9)
        assert not schedule.is_good(70.0)
        assert schedule.is_synchronous(0, 60.0)
        assert not schedule.is_synchronous(2, 60.0)
        assert schedule.is_down(2, 60.0)
        assert not schedule.is_down(2, 10.0)

    def test_arbitrary_period_outside_processes_are_not_down(self):
        schedule = PeriodSchedule.single_good_period(
            3, start=0.0, length=20.0, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=[0, 1]
        )
        assert not schedule.is_down(2, 10.0)
        assert not schedule.is_synchronous(2, 10.0)

    def test_alternating(self):
        schedule = PeriodSchedule.alternating(
            2, good_length=10.0, bad_length=5.0, count=3
        )
        assert not schedule.is_good(2.0)
        assert schedule.is_good(6.0)
        assert not schedule.is_good(16.0)
        assert schedule.is_good(21.0)
        assert len(schedule.good_periods) == 3

    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="overlap"):
            PeriodSchedule(
                n=2,
                good_periods=[
                    GoodPeriod(0.0, 10.0, GoodPeriodKind.PI_GOOD, frozenset({0, 1})),
                    GoodPeriod(5.0, 15.0, GoodPeriodKind.PI_GOOD, frozenset({0, 1})),
                ],
            )

    def test_unknown_pi0_rejected(self):
        with pytest.raises(ValueError):
            PeriodSchedule(
                n=2,
                good_periods=[
                    GoodPeriod(0.0, 10.0, GoodPeriodKind.PI_GOOD, frozenset({5})),
                ],
            )

    def test_next_boundary(self):
        schedule = PeriodSchedule.single_good_period(
            2, start=10.0, length=5.0, kind=GoodPeriodKind.PI_GOOD
        )
        assert schedule.next_boundary_after(0.0) == 10.0
        assert schedule.next_boundary_after(10.0) == 15.0
        assert schedule.next_boundary_after(20.0) is None
        assert list(schedule.boundaries()) == [10.0, 15.0]
