"""Unit tests for step programs, stable storage and the process runtime."""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.sysmodel.network import Envelope
from repro.sysmodel.process import (
    ProcessRuntime,
    ReceiveStep,
    SendStep,
    StableStorage,
    StepProgram,
    StepResult,
)


class PingProgram(StepProgram):
    """A tiny test program: alternately send a counter and receive."""

    def __init__(self, process_id=0, n=2):
        super().__init__(process_id, n)
        self.received_payloads = []

    def program(self):
        counter = self.stable_storage.load("counter", 0)
        while True:
            counter += 1
            self.stable_storage.store("counter", counter)
            yield SendStep(payload=("ping", counter))
            result = yield ReceiveStep()
            if result.envelope is not None:
                self.received_payloads.append(result.envelope.payload)

    def select_message(self, buffered: Sequence[Envelope]) -> Optional[Envelope]:
        return buffered[0] if buffered else None


class TerminatingProgram(StepProgram):
    """A program that finishes after one send (exercise generator exhaustion)."""

    def program(self):
        yield SendStep(payload="only")

    def select_message(self, buffered):
        return None


class TestStableStorage:
    def test_store_and_load(self):
        storage = StableStorage()
        storage.store("x", 41)
        assert storage.load("x") == 41
        assert storage.load("missing", "default") == "default"
        assert "x" in storage
        assert storage.write_count == 1
        assert storage.read_count == 2

    def test_snapshot_is_a_copy(self):
        storage = StableStorage()
        storage.store("x", [1])
        snapshot = storage.snapshot()
        snapshot["x"].append(2)
        snapshot["y"] = 3
        assert "y" not in storage


class TestProcessRuntime:
    def test_boot_produces_first_action(self):
        runtime = ProcessRuntime(PingProgram())
        runtime.boot()
        assert isinstance(runtime.next_action(), SendStep)
        assert runtime.has_work

    def test_steps_alternate_according_to_program(self):
        runtime = ProcessRuntime(PingProgram())
        runtime.boot()
        assert isinstance(runtime.next_action(), SendStep)
        runtime.complete_step(StepResult(time=1.0))
        assert isinstance(runtime.next_action(), ReceiveStep)
        runtime.complete_step(StepResult(time=2.0, envelope=None))
        assert isinstance(runtime.next_action(), SendStep)
        assert runtime.stats.send_steps == 1
        assert runtime.stats.receive_steps == 1
        assert runtime.stats.empty_receives == 1

    def test_received_envelope_reaches_the_program(self):
        program = PingProgram()
        runtime = ProcessRuntime(program)
        runtime.boot()
        runtime.complete_step(StepResult(time=1.0))
        envelope = Envelope(sender=1, receiver=0, payload="pong", send_time=0.5, sequence=0)
        runtime.complete_step(StepResult(time=2.0, envelope=envelope))
        assert program.received_payloads == ["pong"]

    def test_crash_discards_volatile_state_and_recovery_restarts(self):
        program = PingProgram()
        runtime = ProcessRuntime(program)
        runtime.boot()
        runtime.complete_step(StepResult(time=1.0))  # send #1, counter=1
        runtime.complete_step(StepResult(time=2.0))  # empty receive
        runtime.complete_step(StepResult(time=3.0))  # send #2, counter=2
        runtime.crash()
        assert not runtime.up
        assert runtime.next_action() is None
        assert not runtime.has_work
        runtime.recover()
        assert runtime.up
        # The counter survived on stable storage: the next send uses counter=3.
        assert isinstance(runtime.next_action(), SendStep)
        runtime.complete_step(StepResult(time=5.0))
        assert program.stable_storage.load("counter") == 3
        assert runtime.stats.crashes == 1
        assert runtime.stats.recoveries == 1

    def test_crash_and_recover_are_idempotent(self):
        runtime = ProcessRuntime(PingProgram())
        runtime.boot()
        runtime.crash()
        runtime.crash()
        assert runtime.stats.crashes == 1
        runtime.recover()
        runtime.recover()
        assert runtime.stats.recoveries == 1

    def test_schedule_generation_bumped_on_crash_and_recovery(self):
        runtime = ProcessRuntime(PingProgram())
        runtime.boot()
        generation = runtime.schedule_generation
        runtime.crash()
        assert runtime.schedule_generation == generation + 1
        runtime.recover()
        assert runtime.schedule_generation == generation + 2

    def test_terminating_program_stops_producing_actions(self):
        runtime = ProcessRuntime(TerminatingProgram(0, 1))
        runtime.boot()
        assert isinstance(runtime.next_action(), SendStep)
        runtime.complete_step(StepResult(time=1.0))
        assert runtime.next_action() is None
        assert not runtime.has_work

    def test_completing_steps_while_down_is_a_noop(self):
        runtime = ProcessRuntime(PingProgram())
        runtime.boot()
        runtime.crash()
        runtime.complete_step(StepResult(time=1.0))
        assert runtime.stats.send_steps == 0
