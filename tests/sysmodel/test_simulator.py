"""Unit and behavioural tests for the step-level discrete-event simulator."""

from __future__ import annotations

from typing import Optional, Sequence

import pytest

from repro.sysmodel.faults import BadPeriodProcessBehavior, FaultSchedule
from repro.sysmodel.network import BadPeriodNetwork, Envelope
from repro.sysmodel.params import SynchronyParams
from repro.sysmodel.periods import GoodPeriodKind, PeriodSchedule
from repro.sysmodel.process import ReceiveStep, SendStep, StepProgram
from repro.sysmodel.simulator import SystemSimulator
from repro.sysmodel.trace import SystemRunTrace


class ChattyProgram(StepProgram):
    """Test program: send a sequence number, then drain one message; repeat.

    Records every step time and every received (sender, payload, time) so
    that tests can make assertions about synchrony and delivery.
    """

    def __init__(self, process_id, n):
        super().__init__(process_id, n)
        self.step_times = []
        self.received = []
        self.send_counter = 0

    def program(self):
        while True:
            self.send_counter += 1
            result = yield SendStep(payload=(self.process_id, self.send_counter))
            self.step_times.append(result.time)
            result = yield ReceiveStep()
            self.step_times.append(result.time)
            if result.envelope is not None:
                self.received.append(
                    (result.envelope.sender, result.envelope.payload, result.time)
                )

    def select_message(self, buffered: Sequence[Envelope]) -> Optional[Envelope]:
        return buffered[0] if buffered else None


def make_simulator(n=3, schedule=None, programs=None, **kwargs):
    params = SynchronyParams(phi=1.0, delta=2.0)
    if schedule is None:
        schedule = PeriodSchedule.always_good(n)
    if programs is None:
        programs = [ChattyProgram(p, n) for p in range(n)]
    trace = SystemRunTrace(n=n)
    simulator = SystemSimulator(
        programs=programs, params=params, schedule=schedule, trace=trace, **kwargs
    )
    return simulator, programs


class TestConstruction:
    def test_requires_programs(self):
        params = SynchronyParams(phi=1.0, delta=1.0)
        with pytest.raises(ValueError):
            SystemSimulator([], params, PeriodSchedule.always_good(1))

    def test_schedule_size_must_match(self):
        params = SynchronyParams(phi=1.0, delta=1.0)
        with pytest.raises(ValueError):
            SystemSimulator(
                [ChattyProgram(0, 1)], params, PeriodSchedule.always_good(2)
            )

    def test_good_step_gap_must_respect_phi(self):
        params = SynchronyParams(phi=2.0, delta=1.0)
        with pytest.raises(ValueError):
            SystemSimulator(
                [ChattyProgram(0, 1)],
                params,
                PeriodSchedule.always_good(1),
                good_step_gap=3.0,
            )

    def test_cannot_run_backwards(self):
        simulator, _ = make_simulator()
        simulator.run(until=10.0)
        with pytest.raises(ValueError):
            simulator.run(until=5.0)


class TestSynchronousExecution:
    def test_steps_happen_every_phi_in_good_periods(self):
        simulator, programs = make_simulator(n=2)
        simulator.run(until=10.0)
        for program in programs:
            times = program.step_times
            assert times, "process took no steps"
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap == pytest.approx(1.0) for gap in gaps)

    def test_messages_delivered_and_never_dropped_between_pi0_processes(self):
        simulator, programs = make_simulator(n=2)
        simulator.run(until=30.0)
        # In a good period nothing is ever dropped, and receptions happen at
        # or after the (delta-bounded) make-ready time of the message.  Note
        # that reception can lag behind make-ready: a receive step consumes a
        # single message, so the buffer may queue up (the paper's model needs
        # n receive steps for n messages).
        assert simulator.network.messages_dropped == 0
        assert simulator.trace.messages_dropped == 0
        for program in programs:
            assert program.received, "no messages were ever received"
            for sender, payload, receive_time in program.received:
                # payload = (sender, sequence); with step gap 1.0 the k-th
                # send of a process happened at time 2k - 1.
                send_time = 2 * payload[1] - 1
                assert receive_time >= send_time

    def test_deterministic_given_seed(self):
        simulator_a, programs_a = make_simulator(n=3, seed=5)
        simulator_b, programs_b = make_simulator(n=3, seed=5)
        simulator_a.run(until=40.0)
        simulator_b.run(until=40.0)
        assert [p.step_times for p in programs_a] == [p.step_times for p in programs_b]
        assert [p.received for p in programs_a] == [p.received for p in programs_b]


class TestPi0DownPeriods:
    def test_outside_processes_are_crashed_and_purged(self):
        n = 3
        pi0 = [0, 1]
        schedule = PeriodSchedule.single_good_period(
            n, start=20.0, length=50.0, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
        )
        simulator, programs = make_simulator(n=n, schedule=schedule, seed=3)
        simulator.run(until=70.0)
        assert not simulator.runtimes[2].up
        # After the period starts, process 2 takes no further steps.
        late_steps = [t for t in programs[2].step_times if t >= 20.0]
        assert late_steps == []
        # Processes 0 and 1 never receive anything from process 2 during the
        # good period (its in-transit messages were purged).
        for program in programs[:2]:
            for sender, _, receive_time in program.received:
                if receive_time >= 20.0 + 2.0:  # allow delta slack at the boundary
                    assert sender != 2

    def test_pi0_processes_recover_at_period_start(self):
        n = 2
        schedule = PeriodSchedule.single_good_period(
            n, start=30.0, length=40.0, kind=GoodPeriodKind.PI0_DOWN, pi0=[0, 1]
        )
        faults = FaultSchedule.crash_stop([(1, 5.0)])
        simulator, programs = make_simulator(n=n, schedule=schedule, fault_schedule=faults, seed=1)
        simulator.run(until=70.0)
        assert simulator.runtimes[1].up
        assert simulator.runtimes[1].stats.recoveries == 1
        # It took steps again during the good period.
        assert any(t >= 30.0 for t in programs[1].step_times)


class TestFaultInjection:
    def test_crash_stop_process_stops_stepping(self):
        n = 2
        schedule = PeriodSchedule(n=n, good_periods=[])  # a single endless bad period
        faults = FaultSchedule.crash_stop([(1, 10.0)])
        simulator, programs = make_simulator(
            n=n,
            schedule=schedule,
            fault_schedule=faults,
            seed=2,
            bad_process_behavior=BadPeriodProcessBehavior(
                min_step_gap=1.0, max_step_gap=2.0, stall_probability=0.0
            ),
        )
        simulator.run(until=50.0)
        assert not simulator.runtimes[1].up
        assert all(t <= 10.0 for t in programs[1].step_times)
        assert simulator.trace.crashes == 1

    def test_crash_recovery_process_resumes(self):
        n = 2
        schedule = PeriodSchedule(n=n, good_periods=[])
        faults = FaultSchedule.crash_recovery([(0, 10.0, 20.0)])
        simulator, programs = make_simulator(
            n=n,
            schedule=schedule,
            fault_schedule=faults,
            seed=2,
            bad_process_behavior=BadPeriodProcessBehavior(
                min_step_gap=1.0, max_step_gap=2.0, stall_probability=0.0
            ),
        )
        simulator.run(until=60.0)
        assert simulator.runtimes[0].up
        assert simulator.trace.crashes == 1
        assert simulator.trace.recoveries == 1
        assert any(t > 20.0 for t in programs[0].step_times)
        assert not any(10.0 < t < 20.0 for t in programs[0].step_times)

    def test_faults_inside_good_periods_are_skipped(self):
        n = 2
        schedule = PeriodSchedule.always_good(n)
        faults = FaultSchedule.crash_stop([(0, 10.0)])
        simulator, _ = make_simulator(n=n, schedule=schedule, fault_schedule=faults)
        simulator.run(until=30.0)
        assert simulator.runtimes[0].up
        assert len(simulator.skipped_fault_events) == 1


class TestBadPeriods:
    def test_bad_network_can_lose_everything(self):
        n = 2
        schedule = PeriodSchedule(n=n, good_periods=[])
        simulator, programs = make_simulator(
            n=n,
            schedule=schedule,
            seed=4,
            bad_network=BadPeriodNetwork(loss_probability=1.0),
            bad_process_behavior=BadPeriodProcessBehavior(
                min_step_gap=1.0, max_step_gap=1.0, stall_probability=0.0
            ),
        )
        simulator.run(until=50.0)
        for program in programs:
            assert program.received == []
        assert simulator.trace.messages_dropped > 0

    def test_trace_accounting(self):
        simulator, _ = make_simulator(n=2)
        trace = simulator.run(until=20.0)
        assert trace.total_send_steps > 0
        assert trace.total_receive_steps > 0
        assert trace.messages_sent == 2 * trace.total_send_steps  # broadcast to n=2
