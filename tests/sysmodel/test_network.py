"""Unit tests for the network layer (network_p / buffer_p / make-ready)."""

from __future__ import annotations

import pytest

from repro.sysmodel.network import BadPeriodNetwork, Network
from repro.sysmodel.params import SynchronyParams
from repro.sysmodel.periods import GoodPeriodKind, PeriodSchedule


def make_network(n=3, schedule=None, **kwargs) -> Network:
    params = SynchronyParams(phi=1.0, delta=2.0)
    if schedule is None:
        schedule = PeriodSchedule.always_good(n)
    return Network(n=n, params=params, schedule=schedule, **kwargs)


class TestBadPeriodNetwork:
    def test_validation(self):
        with pytest.raises(ValueError):
            BadPeriodNetwork(loss_probability=1.5)
        with pytest.raises(ValueError):
            BadPeriodNetwork(min_delay=5.0, max_delay=1.0)

    def test_certain_loss_and_certain_delivery(self):
        import random

        rng = random.Random(0)
        assert BadPeriodNetwork(loss_probability=1.0).sample_delay(rng) is None
        delay = BadPeriodNetwork(loss_probability=0.0, min_delay=1.0, max_delay=2.0).sample_delay(rng)
        assert 1.0 <= delay <= 2.0


class TestSendAndMakeReady:
    def test_send_puts_message_in_every_receiver_network_set(self):
        network = make_network()
        envelopes = network.send(0, [0, 1, 2], "hello", time=1.0)
        assert len(envelopes) == 3
        for p in range(3):
            assert len(network.network[p]) == 1
            assert network.buffer[p] == []
        assert network.messages_sent == 3

    def test_plan_delivery_in_good_period_respects_delta(self):
        network = make_network()
        envelope = network.send(0, [1], "m", time=5.0)[0]
        assert network.plan_delivery(envelope) == pytest.approx(5.0 + 2.0)

    def test_plan_delivery_scaled_by_good_delay_factor(self):
        network = make_network(good_delay_factor=0.5)
        envelope = network.send(0, [1], "m", time=5.0)[0]
        assert network.plan_delivery(envelope) == pytest.approx(5.0 + 1.0)

    def test_plan_delivery_in_bad_period_can_drop(self):
        schedule = PeriodSchedule.single_good_period(
            3, start=100.0, length=10.0, kind=GoodPeriodKind.PI_GOOD
        )
        network = make_network(
            schedule=schedule, bad_behavior=BadPeriodNetwork(loss_probability=1.0)
        )
        envelope = network.send(0, [1], "m", time=5.0)[0]
        assert network.plan_delivery(envelope) is None
        assert network.messages_dropped == 1

    def test_plan_delivery_outside_pi0_uses_bad_behavior(self):
        schedule = PeriodSchedule.always_good(
            3, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=[0, 1]
        )
        network = make_network(
            schedule=schedule, bad_behavior=BadPeriodNetwork(loss_probability=1.0)
        )
        # Sender 2 is outside pi0: its message gets the bad-period treatment.
        envelope = network.send(2, [0], "m", time=1.0)[0]
        assert network.plan_delivery(envelope) is None
        # Between pi0 members the delta bound applies.
        envelope2 = network.send(0, [1], "m", time=1.0)[0]
        assert network.plan_delivery(envelope2) == pytest.approx(3.0)

    def test_make_ready_moves_message_to_buffer(self):
        network = make_network()
        envelope = network.send(0, [1], "m", time=0.0)[0]
        assert network.make_ready(envelope)
        assert network.network[1] == []
        assert network.buffer[1] == [envelope]
        assert network.messages_made_ready == 1

    def test_make_ready_after_purge_is_a_noop(self):
        network = make_network()
        envelope = network.send(0, [1], "m", time=0.0)[0]
        network.purge_process_state(1)
        assert not network.make_ready(envelope)
        assert network.buffer[1] == []

    def test_take_from_buffer(self):
        network = make_network()
        envelope = network.send(0, [1], "m", time=0.0)[0]
        network.make_ready(envelope)
        network.take_from_buffer(1, envelope)
        assert network.buffer[1] == []


class TestPurges:
    def test_purge_messages_from_senders(self):
        network = make_network()
        network.send(0, [1, 2], "from-0", time=0.0)
        kept = network.send(1, [2], "from-1", time=0.0)[0]
        network.make_ready(kept)
        purged = network.purge_messages_from([0])
        assert purged == 2
        assert network.network[1] == []
        assert network.buffer[2] == [kept]

    def test_purge_process_state_clears_both_sets(self):
        network = make_network()
        first, second = network.send(0, [1, 1], "m", time=0.0)
        network.make_ready(first)
        network.purge_process_state(1)
        assert network.network[1] == []
        assert network.buffer[1] == []

    def test_good_delay_factor_validation(self):
        with pytest.raises(ValueError):
            make_network(good_delay_factor=0.0)
        with pytest.raises(ValueError):
            make_network(good_delay_factor=1.5)
