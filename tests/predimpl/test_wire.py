"""Unit tests for the wire format of the predicate-implementation layer."""

from __future__ import annotations

from repro.predimpl.wire import WireKind, WireMessage, init_message, round_message


class TestWireMessages:
    def test_round_message(self):
        message = round_message(3, "payload")
        assert message.kind is WireKind.ROUND
        assert message.round == 3
        assert message.payload == "payload"
        assert message.evidence_round() == 3

    def test_init_message_evidence_is_previous_round(self):
        message = init_message(5, "payload")
        assert message.kind is WireKind.INIT
        assert message.round == 5
        # An INIT for round 5 proves the sender finished round 4.
        assert message.evidence_round() == 4

    def test_messages_are_hashable_and_comparable(self):
        assert round_message(1, "x") == round_message(1, "x")
        assert round_message(1, "x") != init_message(1, "x")
        assert len({round_message(1, "x"), round_message(1, "x")}) == 1
