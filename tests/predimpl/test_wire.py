"""Unit tests for the wire format of the predicate-implementation layer."""

from __future__ import annotations

from dataclasses import FrozenInstanceError

import pytest

from repro.predimpl.wire import WireKind, WireMessage, init_message, round_message


class TestWireMessages:
    def test_round_message(self):
        message = round_message(3, "payload")
        assert message.kind is WireKind.ROUND
        assert message.round == 3
        assert message.payload == "payload"
        assert message.evidence_round() == 3

    def test_init_message_evidence_is_previous_round(self):
        message = init_message(5, "payload")
        assert message.kind is WireKind.INIT
        assert message.round == 5
        # An INIT for round 5 proves the sender finished round 4.
        assert message.evidence_round() == 4

    def test_messages_are_hashable_and_comparable(self):
        assert round_message(1, "x") == round_message(1, "x")
        assert round_message(1, "x") != init_message(1, "x")
        assert len({round_message(1, "x"), round_message(1, "x")}) == 1


class TestWireEdgeCases:
    def test_init_for_the_first_round_is_evidence_for_round_zero(self):
        # An INIT for round 1 claims the sender finished round 0 -- before
        # any real round; consumers treat evidence_round() < 1 as vacuous.
        assert init_message(1, None).evidence_round() == 0

    def test_messages_are_immutable(self):
        message = round_message(2, "payload")
        with pytest.raises(FrozenInstanceError):
            message.round = 3

    def test_none_payload_is_a_valid_payload(self):
        # Algorithm 2's upper layer may legitimately send None (no estimate
        # yet); the wire layer must not conflate it with "no message".
        message = round_message(4, None)
        assert message.payload is None
        assert message.evidence_round() == 4

    def test_distinct_kinds_same_fields_never_compare_equal(self):
        # A ROUND for r and an INIT for r+1 are evidence for the same round
        # but must stay distinguishable on the wire.
        round_msg = round_message(3, "m")
        init_msg = init_message(4, "m")
        assert round_msg.evidence_round() == init_msg.evidence_round() == 3
        assert round_msg != init_msg

    def test_kind_round_trips_through_its_value(self):
        # Wire kinds serialise by value (useful for logging/JSON dumps).
        assert WireKind("ROUND") is WireKind.ROUND
        assert WireKind("INIT") is WireKind.INIT
        assert repr(init_message(2, "p")) == "<INIT, 2, 'p'>"
