"""The batched translation kernel: bit-identical to scalar Algorithm 4.

Pins :class:`repro.predimpl.batched_translation.BatchTranslationKernel`
against the scalar :class:`KernelToUniformTranslation` at the uint64
word-spill sizes (n = 1, 63, 64, 65): the Theorem 8 ``NewHO`` threshold,
the listen-set shrinkage inside a macro-round, the decisions, and the
scalar-vs-batched fingerprint equality on every round prefix.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import CounterKernelOracle
from repro.algorithms import OneThirdRule, UniformVoting
from repro.algorithms.batched import BatchUnsupported
from repro.core.machine import HOMachine
from repro.engine.rng import SeededRng
from repro.predimpl.translation import KernelToUniformTranslation
from repro.rounds.backend import ReplicaBatch, ReplicaTask, get_backend

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

#: the word-spill sizes: one word exactly, one bit short, one bit over.
SPILL_SIZES = [1, 63, 64, 65]


def kernel_oracle(n, seed, f):
    return CounterKernelOracle(n, range(n - f), rng=SeededRng(seed))


def shuffled_values(n, seed):
    values = [10 * (p + 1) for p in range(n)]
    SeededRng(seed).stream("values").shuffle(values)
    return values


def translation_f(n):
    """A small non-trivial f at every spill size (0 only where forced)."""
    return min(1, (n - 1) // 3)


def make_batch(n, seeds, f, max_rounds, **kwargs):
    tasks = [
        ReplicaTask(
            seed=seed,
            algorithm=KernelToUniformTranslation(OneThirdRule(n), f),
            oracle=kernel_oracle(n, seed, f),
            initial_values=shuffled_values(n, seed),
        )
        for seed in seeds
    ]
    kwargs.setdefault("fingerprints", True)
    return ReplicaBatch(n=n, tasks=tasks, max_rounds=max_rounds, **kwargs)


def scalar_machines(n, seeds, f):
    return [
        HOMachine(
            KernelToUniformTranslation(OneThirdRule(n), f),
            kernel_oracle(n, seed, f),
            shuffled_values(n, seed),
        )
        for seed in seeds
    ]


@needs_numpy
class TestKernelLockstep:
    """Drive the batched kernel next to scalar machines, round by round."""

    def drive(self, n, rounds=None):
        import numpy as np

        from repro.predimpl.batched_translation import BatchTranslationKernel

        f = translation_f(n)
        seeds = [7, 8, 9]
        machines = scalar_machines(n, seeds, f)
        shadows = [kernel_oracle(n, seed, f) for seed in seeds]
        kernel = BatchTranslationKernel(
            n, [shuffled_values(n, seed) for seed in seeds], f=f
        )
        active = np.ones(len(seeds), dtype=bool)
        if rounds is None:
            rounds = 3 * (f + 1)
        for round in range(1, rounds + 1):
            heard = np.zeros((len(seeds), n, n), dtype=bool)
            for r, shadow in enumerate(shadows):
                for p in range(n):
                    mask = shadow.ho_mask(round, p)
                    for q in range(n):
                        heard[r, p, q] = bool(mask >> q & 1)
            kernel.step(round, heard, active)
            for machine in machines:
                machine.run_round()
            yield round, f, kernel, machines

    @pytest.mark.parametrize("n", SPILL_SIZES)
    def test_listen_and_new_ho_match_scalar(self, n):
        for round, f, kernel, machines in self.drive(n):
            algorithm = machines[0].algorithm
            for r, machine in enumerate(machines):
                for p in range(n):
                    state = machine.state(p)
                    batch_listen = {q for q in range(n) if kernel.listen[r, p, q]}
                    assert batch_listen == set(state.listen), (n, round, r, p)
                    if algorithm.is_boundary_round(round):
                        batch_ho = {q for q in range(n) if kernel.last_new_ho[r, p, q]}
                        assert batch_ho == set(state.last_new_ho), (n, round, r, p)

    @pytest.mark.parametrize("n", [4, 65])
    def test_theorem8_new_ho_threshold_for_members(self, n):
        """At every boundary, each pi0 member's NewHO contains all of pi0
        and has at least n - f processes -- the Theorem 8 guarantee."""
        f = translation_f(n)
        pi0 = set(range(n - f))
        saw_boundary = False
        for round, f, kernel, machines in self.drive(n):
            if not machines[0].algorithm.is_boundary_round(round):
                continue
            saw_boundary = True
            for r in range(len(machines)):
                for p in pi0:
                    batch_ho = {q for q in range(n) if kernel.last_new_ho[r, p, q]}
                    assert pi0 <= batch_ho
                    assert len(batch_ho) >= n - f
        assert saw_boundary

    def test_listen_shrinks_within_a_macro_round(self):
        """Non-boundary rounds only ever intersect the listen sets; the
        boundary resets them to the full process set."""
        n = 65
        previous = None
        for round, f, kernel, machines in self.drive(n, rounds=2 * (f := 1) + 2):
            algorithm = machines[0].algorithm
            listen = kernel.listen.copy()
            if previous is not None and not algorithm.is_boundary_round(round):
                assert bool((listen <= previous).all())
            if algorithm.is_boundary_round(round):
                assert bool(listen.all())
            previous = listen

    @pytest.mark.parametrize("n", SPILL_SIZES)
    def test_decisions_match_scalar(self, n):
        for round, f, kernel, machines in self.drive(n):
            for r, machine in enumerate(machines):
                scalar = {
                    p: machine.algorithm.decision(machine.state(p))
                    for p in range(n)
                    if machine.algorithm.decision(machine.state(p)) is not None
                }
                decisions, _rounds = kernel.decisions_of(r)
                assert decisions == scalar, (n, round, r)


@needs_numpy
class TestBackendFingerprints:
    def test_fingerprints_equal_on_every_round_prefix(self):
        """max_rounds = k for every k: the digests chain per executed
        round, so prefix-k equality pins the whole round sequence."""
        n, f = 4, 1
        for k in range(1, 3 * (f + 1) + 1):
            seeds = [0, 1, 2, 3]
            scalar = get_backend("scalar").run(
                make_batch(n, seeds, f, k, run_full_horizon=True)
            )
            batched = get_backend("batch").run(
                make_batch(n, seeds, f, k, run_full_horizon=True)
            )
            assert scalar == batched, f"prefix {k} diverges"
            assert all(outcome.fingerprint for outcome in scalar)

    @pytest.mark.parametrize("n", SPILL_SIZES)
    def test_full_outcomes_equal_at_spill_sizes(self, n):
        f = translation_f(n)
        seeds = [11, 12]
        rounds = 3 * (f + 1)
        scalar = get_backend("scalar").run(make_batch(n, seeds, f, rounds))
        batched = get_backend("batch").run(make_batch(n, seeds, f, rounds))
        assert scalar == batched
        assert all(outcome.decisions for outcome in scalar)


@needs_numpy
class TestEligibility:
    def test_non_one_third_rule_inner_is_rejected(self):
        from repro.predimpl.batched_translation import BatchTranslationKernel

        n = 4
        batch = ReplicaBatch(
            n=n,
            tasks=[
                ReplicaTask(
                    seed=0,
                    algorithm=KernelToUniformTranslation(UniformVoting(n), 1),
                    oracle=kernel_oracle(n, 0, 1),
                    initial_values=shuffled_values(n, 0),
                )
            ],
            max_rounds=8,
        )
        with pytest.raises(BatchUnsupported):
            BatchTranslationKernel.from_batch(batch)

    def test_mixed_f_is_rejected(self):
        from repro.predimpl.batched_translation import BatchTranslationKernel

        n = 7
        batch = ReplicaBatch(
            n=n,
            tasks=[
                ReplicaTask(
                    seed=seed,
                    algorithm=KernelToUniformTranslation(OneThirdRule(n), f),
                    oracle=kernel_oracle(n, seed, f),
                    initial_values=shuffled_values(n, seed),
                )
                for seed, f in ((0, 1), (1, 2))
            ],
            max_rounds=8,
        )
        with pytest.raises(BatchUnsupported):
            BatchTranslationKernel.from_batch(batch)

    def test_batch_backend_degrades_gracefully_for_uv_inner(self):
        """An ineligible inner must not poison the batch backend -- it
        falls back to per-replica scalar execution with equal outcomes."""
        n = 4
        def batch():
            return ReplicaBatch(
                n=n,
                tasks=[
                    ReplicaTask(
                        seed=seed,
                        algorithm=KernelToUniformTranslation(UniformVoting(n), 1),
                        oracle=kernel_oracle(n, seed, 1),
                        initial_values=shuffled_values(n, seed),
                    )
                    for seed in (3, 4)
                ],
                max_rounds=12,
                fingerprints=True,
            )

        assert get_backend("batch").run(batch()) == get_backend("scalar").run(batch())

    def test_translation_kernel_opts_out_of_super_batching(self):
        from repro.predimpl.batched_translation import BatchTranslationKernel

        assert BatchTranslationKernel.super_batchable is False
