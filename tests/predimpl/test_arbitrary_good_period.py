"""Behavioural tests for Algorithm 3 (P_k in "pi0-arbitrary" good periods)."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.predimpl import (
    arbitrary_p2otr_length,
    build_arbitrary_stack,
    theorem6_good_period_length,
    theorem7_initial_good_period_length,
)
from repro.predimpl.arbitrary_good_period import ArbitraryGoodPeriodProgram
from repro.predimpl.wire import init_message, round_message
from repro.sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemRunTrace,
    SystemSimulator,
)
from repro.sysmodel.network import Envelope


PARAMS = SynchronyParams(phi=1.0, delta=2.0)


def run_arbitrary_scenario(
    n=4,
    f=1,
    values=None,
    schedule=None,
    until=400.0,
    seed=0,
    use_translation=False,
    **simulator_kwargs,
):
    values = values if values is not None else list(range(10, 10 + n))
    stack = build_arbitrary_stack(
        OneThirdRule(n), f, values, PARAMS, use_translation=use_translation
    )
    if schedule is None:
        pi0 = frozenset(range(n - f))
        schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI0_ARBITRARY, pi0=pi0)
    simulator = SystemSimulator(
        stack.programs, PARAMS, schedule, seed=seed, trace=stack.trace, **simulator_kwargs
    )
    trace = simulator.run(until=until)
    return trace, stack, simulator


class TestConstruction:
    def test_f_must_be_less_than_half(self):
        with pytest.raises(ValueError):
            ArbitraryGoodPeriodProgram(
                0, 4, 2, OneThirdRule(4), 1, PARAMS, SystemRunTrace(n=4)
            )

    def test_timeout_is_algorithm3_timeout(self):
        program = ArbitraryGoodPeriodProgram(
            0, 4, 1, OneThirdRule(4), 1, PARAMS, SystemRunTrace(n=4)
        )
        assert program.timeout == PARAMS.algorithm3_timeout(4)


class TestReceptionPolicy:
    def test_round_robin_prefers_target_process(self):
        program = ArbitraryGoodPeriodProgram(
            0, 3, 1, OneThirdRule(3), 1, PARAMS, SystemRunTrace(n=3)
        )
        from_p0 = Envelope(0, 0, round_message(1, "a"), 0.0, sequence=0)
        from_p1 = Envelope(1, 0, round_message(9, "b"), 0.0, sequence=1)
        # policy counter 0 -> target process 0: its message wins despite the
        # lower round number.
        assert program.select_message([from_p0, from_p1]) is from_p0
        program._policy_counter = 1
        assert program.select_message([from_p0, from_p1]) is from_p1

    def test_falls_back_to_highest_round_when_target_absent(self):
        program = ArbitraryGoodPeriodProgram(
            0, 3, 1, OneThirdRule(3), 1, PARAMS, SystemRunTrace(n=3)
        )
        program._policy_counter = 2  # target process 2, not present below
        low = Envelope(1, 0, round_message(1, "low"), 0.0, sequence=0)
        high = Envelope(1, 0, init_message(7, "high"), 0.0, sequence=1)
        assert program.select_message([low, high]) is high


class TestInitialGoodPeriod:
    def test_pk_rounds_and_consensus(self):
        n, f = 4, 1
        pi0 = frozenset(range(n - f))
        trace, _, _ = run_arbitrary_scenario(n=n, f=f)
        assert trace.max_round() >= 3
        window = trace.earliest_pk_window(pi0, 2)
        assert window is not None
        # pi0 processes decide the same value.
        decisions = trace.decision_values()
        assert pi0.issubset(decisions)
        assert len({decisions[p] for p in pi0}) == 1

    def test_theorem7_bound_in_initial_good_period(self):
        for n, f in ((3, 1), (4, 1), (5, 2)):
            pi0 = frozenset(range(n - f))
            trace, _, _ = run_arbitrary_scenario(n=n, f=f, until=500.0)
            for x in (1, 2):
                window = trace.earliest_pk_window(
                    pi0, x, last_round_by_reception=True
                )
                assert window is not None
                assert window[1] <= theorem7_initial_good_period_length(x, n, 1.0, 2.0) + 1e-9


class TestNonInitialGoodPeriod:
    def test_theorem6_bound_after_a_bad_period(self):
        n, f = 4, 1
        pi0 = frozenset(range(n - f))
        good_start = 120.0
        for seed in range(3):
            schedule = PeriodSchedule.single_good_period(
                n, start=good_start, length=500.0, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=pi0
            )
            trace, _, _ = run_arbitrary_scenario(
                n=n,
                f=f,
                schedule=schedule,
                until=good_start + 500.0,
                seed=seed,
                bad_network=BadPeriodNetwork(loss_probability=0.7, min_delay=1.0, max_delay=40.0),
                bad_process_behavior=BadPeriodProcessBehavior(
                    min_step_gap=1.0, max_step_gap=6.0, stall_probability=0.3
                ),
            )
            for x in (1, 2):
                window = trace.earliest_pk_window(
                    pi0, x, not_before=good_start, last_round_by_reception=True
                )
                assert window is not None, f"no Pk window of length {x} (seed {seed})"
                measured = window[1] - good_start
                assert measured <= theorem6_good_period_length(x, n, 1.0, 2.0) + 1e-9

    def test_outsiders_may_stay_arbitrary_and_do_not_block_pi0(self):
        """The pi0-arbitrary definition: no constraint at all on processes outside pi0."""
        n, f = 5, 2
        pi0 = frozenset(range(n - f))
        good_start = 60.0
        schedule = PeriodSchedule.single_good_period(
            n, start=good_start, length=600.0, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=pi0
        )
        trace, _, _ = run_arbitrary_scenario(
            n=n,
            f=f,
            schedule=schedule,
            until=good_start + 600.0,
            seed=5,
            # Outsiders' links drop everything; outsiders stall most of the time.
            bad_network=BadPeriodNetwork(loss_probability=0.9, min_delay=1.0, max_delay=50.0),
            bad_process_behavior=BadPeriodProcessBehavior(
                min_step_gap=2.0, max_step_gap=10.0, stall_probability=0.5
            ),
        )
        window = trace.earliest_pk_window(pi0, 2, not_before=good_start)
        assert window is not None
        # Note: with |pi0| = 3 <= 2n/3 OneThirdRule cannot decide over raw
        # P_k rounds (that needs the Algorithm 4 translation and a larger
        # pi0); the point of this test is only that the outsiders do not
        # prevent pi0 from running synchronised kernel rounds.
        assert trace.max_round() >= window[0] + 1


class TestWithTranslation:
    def test_full_stack_reaches_consensus_within_the_p2otr_bound(self):
        """OneThirdRule over Algorithm 4 over Algorithm 3, in an initial good period."""
        n, f = 4, 1
        pi0 = frozenset(range(n - f))
        trace, stack, _ = run_arbitrary_scenario(
            n=n, f=f, use_translation=True, until=600.0
        )
        decisions = trace.decision_values()
        assert pi0.issubset(decisions)
        assert len({decisions[p] for p in pi0}) == 1
        decision_time = max(trace.decision_times()[p] for p in pi0)
        assert decision_time <= arbitrary_p2otr_length(f, n, 1.0, 2.0) + 1e-9

    def test_full_stack_after_bad_period(self):
        n, f = 4, 1
        pi0 = frozenset(range(n - f))
        good_start = 100.0
        schedule = PeriodSchedule.single_good_period(
            n, start=good_start, length=800.0, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=pi0
        )
        trace, _, _ = run_arbitrary_scenario(
            n=n,
            f=f,
            use_translation=True,
            schedule=schedule,
            until=good_start + 800.0,
            seed=9,
            bad_network=BadPeriodNetwork(loss_probability=0.6, min_delay=1.0, max_delay=40.0),
        )
        decisions = trace.decision_values()
        assert pi0.issubset(decisions)
        assert len({decisions[p] for p in pi0}) == 1
