"""The step-path execution backends: lowering bit-identity and degradation.

``step-batch`` is specified against ``step-scalar`` exactly as ``batch``
is against ``scalar``: the fault-free down-good lowering must reproduce
the scalar step path's outcomes *including per-round fingerprints*, and
every non-lowerable cell must degrade per cell with a recorded reason.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.algorithms import OneThirdRule
from repro.engine.rng import SeededRng
from repro.predimpl.step_backend import (
    ARBITRARY_GOOD,
    DOWN_GOOD,
    BatchStepBackend,
    ScalarStepBackend,
    StepEnvironment,
    step_horizon_rounds,
)
from repro.rounds.backend import (
    MonitorSpec,
    ReplicaBatch,
    ReplicaTask,
    backend_names,
    get_backend,
)
from repro.rounds.bitmask import mask_of

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")


def shuffled_values(n, seed):
    values = [10 * (p + 1) for p in range(n)]
    SeededRng(seed).stream("values").shuffle(values)
    return values


def make_batch(env, n, seeds, max_rounds=None, **kwargs):
    if max_rounds is None:
        max_rounds = step_horizon_rounds(env, n)
    tasks = [
        ReplicaTask(
            seed=seed,
            algorithm=OneThirdRule(n),
            oracle=env,
            initial_values=shuffled_values(n, seed),
        )
        for seed in seeds
    ]
    kwargs.setdefault("fingerprints", True)
    return ReplicaBatch(n=n, tasks=tasks, max_rounds=max_rounds, **kwargs)


class TestRegistration:
    def test_step_backends_are_registered(self):
        names = backend_names()
        assert "step-scalar" in names
        assert "step-batch" in names


class TestStepEnvironment:
    def test_rejects_unknown_kind_and_fault_model(self):
        with pytest.raises(ValueError):
            StepEnvironment(kind="sideways")
        with pytest.raises(ValueError):
            StepEnvironment(fault_model="byzantine")
        with pytest.raises(ValueError):
            StepEnvironment(f=-1)

    def test_round_timeout_follows_the_stack(self):
        down = StepEnvironment(kind=DOWN_GOOD)
        arbitrary = StepEnvironment(kind=ARBITRARY_GOOD)
        # Algorithm 3's receive budget (2n+1 steps) exceeds Algorithm 2's
        # (n+2 steps) for every n > 1.
        assert arbitrary.round_timeout(4) > down.round_timeout(4)

    def test_horizon_covers_the_time_budget(self):
        env = StepEnvironment(fault_model="crash-stop")
        n = 4
        rounds = step_horizon_rounds(env, n)
        budget = env.bad_period_length + env.good_period_length
        assert rounds * (env.round_timeout(n) + 1) >= budget


class TestScalarStepBackend:
    def test_non_step_oracle_is_rejected(self):
        batch = ReplicaBatch(
            n=2,
            tasks=[
                ReplicaTask(
                    seed=0,
                    algorithm=OneThirdRule(2),
                    oracle=object(),
                    initial_values=[1, 2],
                )
            ],
            max_rounds=4,
        )
        with pytest.raises(TypeError):
            ScalarStepBackend().run(batch)

    def test_empty_scope_runs_zero_rounds(self):
        env = StepEnvironment()
        batch = make_batch(env, 3, [0], scope_mask=0)
        (outcome,) = ScalarStepBackend().run(batch)
        assert outcome.rounds_executed == 0
        assert outcome.decisions == {}
        assert outcome.messages_sent == 0
        assert outcome.fingerprint

    def test_message_accounting_is_round_level(self):
        env = StepEnvironment()
        n = 4
        (outcome,) = ScalarStepBackend().run(make_batch(env, n, [0]))
        assert outcome.decisions
        assert outcome.messages_sent == n * n * outcome.rounds_executed
        # Fault-free and always good: every executed round heard everyone.
        assert outcome.messages_delivered == n * n * outcome.rounds_executed

    def test_crash_stop_projection_respects_the_scope(self):
        env = StepEnvironment(fault_model="crash-stop")
        n = 4
        scope = range(n - 1)
        (outcome,) = ScalarStepBackend().run(
            make_batch(env, n, [0], scope_mask=mask_of(scope))
        )
        assert set(outcome.decisions) >= set(scope)
        assert outcome.rounds_executed >= max(
            outcome.decision_rounds[p] for p in scope
        )

    def test_arbitrary_stack_decides(self):
        env = StepEnvironment(kind=ARBITRARY_GOOD, f=1)
        (outcome,) = ScalarStepBackend().run(make_batch(env, 4, [0]))
        assert set(outcome.decisions) == set(range(4))

    def test_keep_traces_retains_the_step_trace(self):
        env = StepEnvironment()
        backend = ScalarStepBackend(keep_traces=True)
        backend.run(make_batch(env, 3, [0, 1]))
        assert len(backend.last_traces) == 2
        assert all(trace is not None for trace in backend.last_traces)
        assert backend.last_traces[0].decisions
        # The default keeps nothing: sweep records must stay slim.
        slim = ScalarStepBackend()
        slim.run(make_batch(env, 3, [0]))
        assert slim.last_traces == []


@needs_numpy
class TestLoweringBitIdentity:
    @pytest.mark.parametrize("n", [1, 2, 4, 7])
    @pytest.mark.parametrize("run_full_horizon", [False, True])
    def test_fault_free_down_cell_lowers_bit_identically(self, n, run_full_horizon):
        env = StepEnvironment()
        seeds = list(range(4))
        rounds = 12
        scalar = get_backend("step-scalar").run(
            make_batch(env, n, seeds, rounds, run_full_horizon=run_full_horizon)
        )
        backend = get_backend("step-batch")
        batched = backend.run(
            make_batch(env, n, seeds, rounds, run_full_horizon=run_full_horizon)
        )
        assert backend.last_fallback_reason is None
        assert scalar == batched
        assert all(outcome.fingerprint for outcome in scalar)
        if not run_full_horizon:
            assert all(outcome.decisions for outcome in scalar)


class TestDegradation:
    def degrade(self, batch):
        backend = BatchStepBackend()
        outcomes = backend.run(batch)
        assert backend.last_fallback_reason is not None
        return backend.last_fallback_reason, outcomes

    @pytest.mark.parametrize("fault_model", ["crash-stop", "crash-recovery", "lossy"])
    def test_faulted_cells_degrade_with_reason(self, fault_model):
        env = StepEnvironment(fault_model=fault_model)
        scope = range(3) if fault_model == "crash-stop" else range(4)
        reason, outcomes = self.degrade(
            make_batch(env, 4, [0, 1], scope_mask=mask_of(scope))
        )
        # Without numpy the availability check fires before the fault-model
        # eligibility check; either way the cell must degrade with a reason.
        assert fault_model in reason if have_numpy() else "numpy" in reason
        scalar = ScalarStepBackend().run(
            make_batch(env, 4, [0, 1], scope_mask=mask_of(scope))
        )
        assert outcomes == scalar

    def test_arbitrary_stack_degrades_with_reason(self):
        env = StepEnvironment(kind=ARBITRARY_GOOD, f=1)
        reason, outcomes = self.degrade(make_batch(env, 4, [0]))
        assert "arbitrary-good" in reason if have_numpy() else "numpy" in reason
        assert outcomes[0].decisions

    def test_monitored_cells_degrade_with_reason(self):
        if not have_numpy():
            pytest.skip("without numpy every cell degrades for numpy first")
        from repro.predicates import build_monitor_bank

        env = StepEnvironment()
        n = 4
        batch = make_batch(
            env, n, [0],
            monitor_factory=lambda: build_monitor_bank(n, ("p_su",), pi0=range(n)),
            monitor_spec=MonitorSpec(
                predicates=("p_su",), pi0_mask=mask_of(range(n)), stop_after_held=None
            ),
        )
        reason, outcomes = self.degrade(batch)
        assert "monitored" in reason
        assert outcomes[0].predicate_reports is not None

    def test_mixed_environments_degrade(self):
        if not have_numpy():
            pytest.skip("without numpy every cell degrades for numpy first")
        n = 3
        tasks = [
            ReplicaTask(
                seed=seed,
                algorithm=OneThirdRule(n),
                oracle=StepEnvironment(phi=phi),
                initial_values=shuffled_values(n, seed),
            )
            for seed, phi in ((0, 1.0), (1, 2.0))
        ]
        backend = BatchStepBackend()
        backend.run(ReplicaBatch(n=n, tasks=tasks, max_rounds=8))
        assert "disagree" in backend.last_fallback_reason

    def test_forced_fallback_still_matches_scalar(self):
        env = StepEnvironment()
        forced = BatchStepBackend(force_fallback=True)
        outcomes = forced.run(make_batch(env, 4, [0, 1]))
        assert forced.last_fallback_reason == "forced"
        assert outcomes == ScalarStepBackend().run(make_batch(env, 4, [0, 1]))

    def test_numpy_free_process_degrades_every_cell(self):
        """The CI numpy-free leg: step-batch must still equal step-scalar
        (the degradation path), with the numpy reason recorded."""
        env = StepEnvironment()
        backend = BatchStepBackend()
        outcomes = backend.run(make_batch(env, 4, [0]))
        if have_numpy():
            assert backend.last_fallback_reason is None
        else:
            assert "numpy" in backend.last_fallback_reason
        assert outcomes == ScalarStepBackend().run(make_batch(env, 4, [0]))
