"""Unit tests for Algorithm 4 (the P_k -> P_su translation) and Theorem 8."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.core.adversary import FaultFreeOracle, KernelOnlyOracle, ScriptedOracle
from repro.core.machine import HOMachine
from repro.predimpl.translation import KernelToUniformTranslation


class TestConstruction:
    def test_requires_n_greater_than_2f(self):
        with pytest.raises(ValueError):
            KernelToUniformTranslation(OneThirdRule(4), f=2)
        with pytest.raises(ValueError):
            KernelToUniformTranslation(OneThirdRule(3), f=-1)
        translation = KernelToUniformTranslation(OneThirdRule(5), f=2)
        assert translation.rounds_per_macro == 3

    def test_round_structure(self):
        translation = KernelToUniformTranslation(OneThirdRule(5), f=2)
        assert translation.macro_round_of(1) == 1
        assert translation.macro_round_of(3) == 1
        assert translation.macro_round_of(4) == 2
        assert translation.is_boundary_round(3)
        assert not translation.is_boundary_round(4)


class TestGossipBehaviour:
    def test_initial_state_knows_own_first_message(self):
        translation = KernelToUniformTranslation(OneThirdRule(3), f=1)
        state = translation.initial_state(1, 42)
        assert set(state.known) == {1}
        assert state.listen == frozenset({0, 1, 2})
        assert state.macro_round == 1

    def test_listen_shrinks_to_heard_of_processes(self):
        translation = KernelToUniformTranslation(OneThirdRule(3), f=1)
        states = {p: translation.initial_state(p, p) for p in range(3)}
        messages = {p: translation.send(1, p, states[p]) for p in range(3)}
        # Process 0 hears only of 0 and 1 in the first (non-boundary) round.
        new_state = translation.transition(1, 0, states[0], {0: messages[0], 1: messages[1]})
        assert new_state.listen == frozenset({0, 1})
        assert set(new_state.known) == {0, 1}

    def test_boundary_round_runs_upper_layer_and_resets(self):
        n, f = 3, 1
        upper = OneThirdRule(n)
        translation = KernelToUniformTranslation(upper, f)
        machine = HOMachine(translation, FaultFreeOracle(n), [7, 7, 7])
        machine.run(f + 1)  # exactly one macro-round
        for p in range(n):
            state = machine.state(p)
            assert state.macro_round == 2
            assert state.last_new_ho == frozenset(range(n))
            assert state.listen == frozenset(range(n))
            # OneThirdRule decided already (unanimous inputs, full heard-of set).
            assert translation.decision(state) == 7


class TestTheorem8:
    def test_fault_free_macro_rounds_are_space_uniform(self):
        n, f = 4, 1
        translation = KernelToUniformTranslation(OneThirdRule(n), f)
        machine = HOMachine(translation, FaultFreeOracle(n), [3, 1, 4, 1])
        machine.run(3 * (f + 1))
        for p in range(n):
            assert machine.state(p).last_new_ho == frozenset(range(n))

    def test_kernel_rounds_translate_to_macro_ho_sets_containing_pi0(self):
        """Theorem 8 under adversarial extras: every macro NewHO contains pi0.

        Note (reproduction finding, see EXPERIMENTS.md E6): with adversarial
        kernel-only collections the pi0 members can disagree about processes
        *outside* pi0, so full equality of the NewHO sets is not asserted
        here -- only the guaranteed part: pi0 is always contained and the
        pi0-projections agree.  Exact equality is asserted in
        :meth:`test_exact_pi0_when_outsiders_are_never_heard`.
        """
        n, f = 5, 2
        pi0 = frozenset(range(n - f))
        translation = KernelToUniformTranslation(OneThirdRule(n), f)
        machine = HOMachine(translation, KernelOnlyOracle(n, pi0, seed=9), [1, 2, 3, 4, 5])
        machine.run(4 * (f + 1))
        # Inspect the recorded states at each macro-round boundary.
        for record in machine.trace.records:
            if record.round % (f + 1) == 0 and record.process in pi0:
                assert record.state_after.last_new_ho is not None
        for boundary in range(f + 1, 4 * (f + 1) + 1, f + 1):
            boundary_records = [
                record
                for record in machine.trace.records
                if record.round == boundary and record.process in pi0
            ]
            new_hos = {record.state_after.last_new_ho for record in boundary_records}
            assert all(pi0.issubset(ho) for ho in new_hos)
            assert len({ho & pi0 for ho in new_hos}) == 1

    def test_exact_pi0_when_outsiders_are_never_heard(self):
        """When pi0 processes hear exactly pi0, the macro heard-of set is exactly pi0."""
        n, f = 5, 2
        pi0 = frozenset(range(n - f))
        script = {}
        for round in range(1, 20):
            for p in range(n):
                script[(round, p)] = pi0 if p in pi0 else frozenset({p})
        translation = KernelToUniformTranslation(OneThirdRule(n), f)
        machine = HOMachine(translation, ScriptedOracle(n, script), [9, 9, 9, 9, 9])
        machine.run(2 * (f + 1))
        for p in pi0:
            assert machine.state(p).last_new_ho == pi0

    def test_upper_layer_consensus_through_translation_under_kernel_only_rounds(self):
        """End to end: OneThirdRule over the translation decides under P_k-only collections."""
        n, f = 4, 1
        pi0 = frozenset(range(n - f))
        translation = KernelToUniformTranslation(OneThirdRule(n), f)
        machine = HOMachine(translation, KernelOnlyOracle(n, pi0, seed=5), [10, 20, 30, 40])
        machine.run(8 * (f + 1))
        decisions = {
            p: translation.decision(machine.state(p))
            for p in pi0
            if translation.decision(machine.state(p)) is not None
        }
        assert set(decisions) == set(pi0)
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {10, 20, 30, 40}
