"""Behavioural tests for Algorithm 2 (P_su in "pi0-down" good periods)."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.predimpl import (
    build_down_stack,
    corollary4_p2otr_length,
    theorem3_good_period_length,
    theorem5_initial_good_period_length,
)
from repro.predimpl.down_good_period import DownGoodPeriodProgram
from repro.predimpl.wire import round_message
from repro.sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemRunTrace,
    SystemSimulator,
)
from repro.sysmodel.network import Envelope


PARAMS = SynchronyParams(phi=1.0, delta=2.0)


def run_down_scenario(
    n=4,
    values=None,
    schedule=None,
    until=200.0,
    seed=0,
    **simulator_kwargs,
):
    values = values if values is not None else list(range(10, 10 + n))
    stack = build_down_stack(OneThirdRule(n), values, PARAMS)
    schedule = schedule if schedule is not None else PeriodSchedule.always_good(n)
    simulator = SystemSimulator(
        stack.programs, PARAMS, schedule, seed=seed, trace=stack.trace, **simulator_kwargs
    )
    trace = simulator.run(until=until)
    return trace, stack, simulator


class TestReceptionPolicy:
    def test_highest_round_number_first(self):
        program = DownGoodPeriodProgram(
            0, 3, OneThirdRule(3), 1, PARAMS, SystemRunTrace(n=3)
        )
        low = Envelope(1, 0, round_message(2, "low"), 0.0, sequence=0)
        high = Envelope(2, 0, round_message(5, "high"), 0.0, sequence=1)
        assert program.select_message([low, high]) is high
        assert program.select_message([]) is None

    def test_ties_broken_by_arrival_order(self):
        program = DownGoodPeriodProgram(
            0, 3, OneThirdRule(3), 1, PARAMS, SystemRunTrace(n=3)
        )
        first = Envelope(1, 0, round_message(4, "first"), 0.0, sequence=0)
        second = Envelope(2, 0, round_message(4, "second"), 0.0, sequence=1)
        assert program.select_message([second, first]) is first


class TestInitialGoodPeriod:
    def test_rounds_are_space_uniform_and_consensus_is_reached(self):
        n = 4
        trace, _, _ = run_down_scenario(n=n)
        pi0 = frozenset(range(n))
        assert trace.max_round() >= 3
        window = trace.earliest_psu_window(pi0, 2)
        assert window is not None
        assert set(trace.decision_values()) == set(range(n))
        assert len(set(trace.decision_values().values())) == 1

    def test_initial_good_period_meets_theorem5_bound(self):
        for n in (3, 4, 6):
            trace, _, _ = run_down_scenario(n=n, until=300.0)
            pi0 = frozenset(range(n))
            for x in (1, 2, 3):
                window = trace.earliest_psu_window(pi0, x)
                assert window is not None
                _, completion = window
                assert completion <= theorem5_initial_good_period_length(x, n, 1.0, 2.0) + 1e-9

    def test_decision_time_within_corollary4_bound_in_nice_runs(self):
        """In a nice run, consensus completes within the P_2otr good-period bound."""
        n = 4
        trace, _, _ = run_down_scenario(n=n)
        assert trace.last_decision_time(range(n)) is not None
        assert trace.last_decision_time(range(n)) <= corollary4_p2otr_length(n, 1.0, 2.0)


class TestNonInitialGoodPeriod:
    def test_theorem3_bound_holds_after_a_bad_period(self):
        n = 4
        pi0 = frozenset(range(n))
        good_start = 100.0
        for seed in range(3):
            schedule = PeriodSchedule.single_good_period(
                n, start=good_start, length=300.0, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
            )
            trace, _, _ = run_down_scenario(
                n=n,
                schedule=schedule,
                until=good_start + 300.0,
                seed=seed,
                bad_network=BadPeriodNetwork(loss_probability=0.6, min_delay=1.0, max_delay=40.0),
                bad_process_behavior=BadPeriodProcessBehavior(
                    min_step_gap=1.0, max_step_gap=6.0, stall_probability=0.2
                ),
            )
            for x in (1, 2):
                window = trace.earliest_psu_window(pi0, x, not_before=good_start)
                assert window is not None, f"no Psu window of length {x} found (seed {seed})"
                measured = window[1] - good_start
                assert measured <= theorem3_good_period_length(x, n, 1.0, 2.0) + 1e-9

    def test_down_period_with_strict_subset_pi0(self):
        """Processes outside pi0 are down; pi0 still reaches P_su and decides.

        Note ``|pi0| = 4 > 2n/3`` is required for OneThirdRule to decide
        (Theorem 2 assumes ``|Pi0| > 2n/3``).
        """
        n, down = 5, 1
        pi0 = frozenset(range(n - down))
        good_start = 80.0
        schedule = PeriodSchedule.single_good_period(
            n, start=good_start, length=300.0, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
        )
        trace, _, simulator = run_down_scenario(
            n=n,
            schedule=schedule,
            until=good_start + 300.0,
            seed=7,
            bad_network=BadPeriodNetwork(loss_probability=0.5, min_delay=1.0, max_delay=30.0),
        )
        window = trace.earliest_psu_window(pi0, 2, not_before=good_start)
        assert window is not None
        # The down processes crashed at the period start and never decide.
        for process in range(n - down, n):
            assert not simulator.runtimes[process].up
        assert set(trace.decision_values()) >= pi0
        decided_values = {trace.decision_values()[p] for p in pi0}
        assert len(decided_values) == 1


class TestCrashRecovery:
    def test_crash_recovery_during_bad_period_does_not_prevent_consensus(self):
        """Section 3.3: the same algorithm works unchanged in the crash-recovery model."""
        n = 4
        pi0 = frozenset(range(n))
        good_start = 120.0
        schedule = PeriodSchedule.single_good_period(
            n, start=good_start, length=300.0, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
        )
        faults = FaultSchedule.crash_recovery(
            [(0, 20.0, 60.0), (1, 30.0, 90.0), (2, 50.0, 70.0)]
        )
        trace, _, simulator = run_down_scenario(
            n=n,
            schedule=schedule,
            until=good_start + 300.0,
            seed=11,
            fault_schedule=faults,
            bad_network=BadPeriodNetwork(loss_probability=0.5, min_delay=1.0, max_delay=30.0),
        )
        assert trace.crashes >= 3
        assert trace.recoveries >= 3
        assert set(trace.decision_values()) == pi0
        assert len(set(trace.decision_values().values())) == 1

    def test_round_and_state_survive_crashes_via_stable_storage(self):
        n = 3
        values = [1, 2, 3]
        stack = build_down_stack(OneThirdRule(n), values, PARAMS)
        schedule = PeriodSchedule.single_good_period(
            n, start=60.0, length=200.0, kind=GoodPeriodKind.PI0_DOWN
        )
        faults = FaultSchedule.crash_recovery([(0, 20.0, 40.0)])
        simulator = SystemSimulator(
            stack.programs,
            PARAMS,
            schedule,
            seed=3,
            trace=stack.trace,
            fault_schedule=faults,
            bad_network=BadPeriodNetwork(loss_probability=0.3, min_delay=1.0, max_delay=10.0),
        )
        simulator.run(until=260.0)
        storage = stack.programs[0].stable_storage
        assert storage.load("round") >= 1
        assert storage.load("state") is not None
        # The recovered process caught up and decided like the others.
        assert 0 in stack.trace.decision_values()
