"""Unit tests for the analytic bounds of Theorems 3, 5, 6, 7 and Corollary 4."""

from __future__ import annotations

import pytest

from repro.predimpl import bounds


PHI = 1.0
DELTA = 2.0


class TestAlgorithm2Bounds:
    def test_theorem3_formula(self):
        # n=4, phi=1, delta=2: (x+1)(2*2 + 6 + 1)*1 + 2 + 1 = 11(x+1) + 3
        assert bounds.theorem3_good_period_length(1, 4, PHI, DELTA) == pytest.approx(25.0)
        assert bounds.theorem3_good_period_length(2, 4, PHI, DELTA) == pytest.approx(36.0)

    def test_theorem5_formula(self):
        # x * (2*2 + 6 + 1) * 1 = 11x
        assert bounds.theorem5_initial_good_period_length(1, 4, PHI, DELTA) == pytest.approx(11.0)
        assert bounds.theorem5_initial_good_period_length(2, 4, PHI, DELTA) == pytest.approx(22.0)

    def test_corollary4_matches_theorem3(self):
        """Corollary 4 'follows directly from Theorem 3 with x=1 and x=2'."""
        for n in (4, 7, 10):
            assert bounds.corollary4_p2otr_length(n, PHI, DELTA) == pytest.approx(
                bounds.theorem3_good_period_length(2, n, PHI, DELTA)
            )
            assert bounds.corollary4_p11otr_length(n, PHI, DELTA) == pytest.approx(
                bounds.theorem3_good_period_length(1, n, PHI, DELTA)
            )

    def test_corollary4_appendix_variant_is_smaller(self):
        assert bounds.corollary4_p2otr_length(4, PHI, DELTA, main_text=False) < (
            bounds.corollary4_p2otr_length(4, PHI, DELTA, main_text=True)
        )

    def test_ratio_is_about_three_halves_for_x2(self):
        """The paper: 'a factor of approximately 3/2 between the two cases for x = 2'."""
        for n in (4, 7, 13):
            for delta in (1.0, 2.0, 5.0):
                ratio = bounds.noninitial_to_initial_ratio(2, n, PHI, delta)
                assert 1.5 <= ratio <= 1.7

    def test_ratio_converges_to_three_halves_for_large_n(self):
        """The extra (delta + phi) term vanishes relative to the round length as n grows."""
        ratio = bounds.noninitial_to_initial_ratio(2, 10_000, PHI, DELTA)
        assert ratio == pytest.approx(1.5, rel=1e-3)
        assert bounds.noninitial_to_initial_ratio(2, 4, PHI, DELTA) > ratio

    def test_monotone_in_every_parameter(self):
        base = bounds.theorem3_good_period_length(2, 4, 1.0, 2.0)
        assert bounds.theorem3_good_period_length(3, 4, 1.0, 2.0) > base
        assert bounds.theorem3_good_period_length(2, 5, 1.0, 2.0) > base
        assert bounds.theorem3_good_period_length(2, 4, 1.5, 2.0) > base
        assert bounds.theorem3_good_period_length(2, 4, 1.0, 3.0) > base

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.theorem3_good_period_length(0, 4, PHI, DELTA)
        with pytest.raises(ValueError):
            bounds.theorem5_initial_good_period_length(2, 0, PHI, DELTA)
        with pytest.raises(ValueError):
            bounds.theorem3_good_period_length(2, 4, 0.5, DELTA)
        with pytest.raises(ValueError):
            bounds.theorem3_good_period_length(2, 4, PHI, -1.0)


class TestAlgorithm3Bounds:
    def test_timeout(self):
        # tau_0 = 2*2 + (2*4+1)*1 = 13
        assert bounds.algorithm3_timeout(4, PHI, DELTA) == pytest.approx(13.0)

    def test_theorem6_formula(self):
        # round length = 13 + 2 + 4 + 2 = 21; (x+2)*21 + 13
        assert bounds.theorem6_good_period_length(1, 4, PHI, DELTA) == pytest.approx(76.0)
        assert bounds.theorem6_good_period_length(2, 4, PHI, DELTA) == pytest.approx(97.0)

    def test_theorem7_formula(self):
        # (x-1)*21 + 13 + 1
        assert bounds.theorem7_initial_good_period_length(1, 4, PHI, DELTA) == pytest.approx(14.0)
        assert bounds.theorem7_initial_good_period_length(2, 4, PHI, DELTA) == pytest.approx(35.0)

    def test_theorem6_larger_than_theorem7(self):
        """Non-initial good periods cost more than initial ones, for every x."""
        for x in (1, 2, 3, 5):
            assert bounds.theorem6_good_period_length(x, 5, PHI, DELTA) > (
                bounds.theorem7_initial_good_period_length(x, 5, PHI, DELTA)
            )

    def test_arbitrary_p2otr_uses_2f_plus_3_rounds(self):
        assert bounds.arbitrary_p2otr_rounds(1) == 5
        assert bounds.arbitrary_p2otr_rounds(3) == 9
        assert bounds.arbitrary_p2otr_length(1, 4, PHI, DELTA) == pytest.approx(
            bounds.theorem6_good_period_length(5, 4, PHI, DELTA)
        )

    def test_arbitrary_p2otr_requires_f_less_than_half(self):
        with pytest.raises(ValueError):
            bounds.arbitrary_p2otr_length(2, 4, PHI, DELTA)

    def test_validation(self):
        with pytest.raises(ValueError):
            bounds.theorem6_good_period_length(0, 4, PHI, DELTA)
        with pytest.raises(ValueError):
            bounds.arbitrary_p2otr_rounds(-1)


class TestSummaries:
    def test_down_summary_contains_all_bounds(self):
        summary = bounds.summarize_down_bounds(2, 4, PHI, DELTA)
        names = {item.name for item in summary}
        assert names == {"theorem3", "theorem5", "corollary4_p2otr", "corollary4_p11otr"}

    def test_arbitrary_summary_contains_all_bounds(self):
        summary = bounds.summarize_arbitrary_bounds(2, 5, 2, PHI, DELTA)
        names = {item.name for item in summary}
        assert names == {"theorem6", "theorem7", "arbitrary_p2otr"}
