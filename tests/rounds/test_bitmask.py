"""Unit tests for the bitmask HO-set representation."""

from __future__ import annotations

import pytest

from repro.rounds.bitmask import (
    WORD_BITS,
    MaskMapping,
    bit_count,
    full_mask,
    iter_bits,
    mask_contains,
    mask_issubset,
    mask_of,
    mask_to_frozenset,
    mask_to_words,
    word_count,
    words_to_mask,
)

#: The word-boundary sizes the uint64 spill must handle exactly: one bit
#: below, at, and above the 64-bit word edge, plus a two-word full size.
BOUNDARY_SIZES = (63, 64, 65, 128)


class TestMaskHelpers:
    def test_full_mask(self):
        assert full_mask(1) == 0b1
        assert full_mask(4) == 0b1111
        assert full_mask(130) == (1 << 130) - 1

    def test_mask_of_roundtrips_with_frozenset(self):
        for members in (set(), {0}, {3, 1, 2}, {0, 63, 64, 129}):
            mask = mask_of(members)
            assert mask_to_frozenset(mask) == frozenset(members)

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(1 << 100)) == [100]

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0b1011) == 3
        assert bit_count(full_mask(200)) == 200

    def test_contains_and_subset(self):
        mask = mask_of({1, 4})
        assert mask_contains(mask, 1)
        assert not mask_contains(mask, 2)
        assert mask_issubset(mask_of({1}), mask)
        assert mask_issubset(0, mask)
        assert not mask_issubset(mask_of({2}), mask)

    def test_set_algebra_matches_frozenset_algebra(self):
        a, b = {0, 2, 5}, {2, 3, 5, 7}
        assert mask_to_frozenset(mask_of(a) & mask_of(b)) == frozenset(a) & frozenset(b)
        assert mask_to_frozenset(mask_of(a) | mask_of(b)) == frozenset(a) | frozenset(b)


class TestWordBoundaries:
    """Mask helpers and the uint64 word spill at n = 63, 64, 65, 128."""

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_full_mask_round_trips(self, n):
        mask = full_mask(n)
        assert bit_count(mask) == n
        assert list(iter_bits(mask)) == list(range(n))
        assert mask_to_frozenset(mask) == frozenset(range(n))
        assert mask_of(range(n)) == mask

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_edge_bits_round_trip(self, n):
        # The highest bit, the bits hugging the word edge, and a straddling set.
        interesting = {0, n - 1} | ({63, 64} & set(range(n)))
        for members in ({n - 1}, interesting):
            mask = mask_of(members)
            assert bit_count(mask) == len(members)
            assert mask_to_frozenset(mask) == frozenset(members)
            assert all(mask_contains(mask, p) for p in members)
            assert mask_issubset(mask, full_mask(n))

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_word_count(self, n):
        assert word_count(n) == (n + WORD_BITS - 1) // WORD_BITS
        assert word_count(n) == (2 if n > 64 else 1)

    @pytest.mark.parametrize("n", BOUNDARY_SIZES)
    def test_word_spill_round_trips(self, n):
        for members in (set(), {0}, {n - 1}, {0, n - 1}, set(range(n)),
                        {p for p in range(n) if p % 7 == 3}):
            mask = mask_of(members)
            words = mask_to_words(mask, n)
            assert len(words) == word_count(n)
            assert all(0 <= word < (1 << WORD_BITS) for word in words)
            assert words_to_mask(words) == mask

    def test_word_spill_layout_is_little_endian(self):
        # Bit 64 is bit 0 of word 1 -- the layout the batch arrays rely on.
        assert mask_to_words(1 << 64, 65) == (0, 1)
        assert mask_to_words((1 << 64) | 1, 65) == (1, 1)
        assert mask_to_words(full_mask(65), 65) == ((1 << 64) - 1, 1)

    def test_word_spill_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            mask_to_words(1 << 64, 64)
        with pytest.raises(ValueError):
            mask_to_words(-1, 4)
        with pytest.raises(ValueError):
            words_to_mask([1 << 64])

    def test_full_mask_spill_per_boundary(self):
        assert mask_to_words(full_mask(63), 63) == ((1 << 63) - 1,)
        assert mask_to_words(full_mask(64), 64) == ((1 << 64) - 1,)
        assert mask_to_words(full_mask(128), 128) == ((1 << 64) - 1, (1 << 64) - 1)


class TestMaskMapping:
    def test_behaves_like_the_materialised_dict(self):
        payloads = [f"m{p}" for p in range(6)]
        mask = mask_of({0, 3, 5})
        view = MaskMapping(payloads, mask)
        materialised = {q: payloads[q] for q in iter_bits(mask)}
        assert dict(view) == materialised
        assert len(view) == 3
        assert list(view) == list(materialised)
        assert list(view.values()) == list(materialised.values())
        assert view[3] == "m3"
        assert view.get(1) is None
        assert 5 in view and 1 not in view

    def test_missing_key_raises(self):
        view = MaskMapping(["a", "b"], mask_of({0}))
        with pytest.raises(KeyError):
            view[1]
        with pytest.raises(KeyError):
            view[-1]
