"""Unit tests for the bitmask HO-set representation."""

from __future__ import annotations

import pytest

from repro.rounds.bitmask import (
    MaskMapping,
    bit_count,
    full_mask,
    iter_bits,
    mask_contains,
    mask_issubset,
    mask_of,
    mask_to_frozenset,
)


class TestMaskHelpers:
    def test_full_mask(self):
        assert full_mask(1) == 0b1
        assert full_mask(4) == 0b1111
        assert full_mask(130) == (1 << 130) - 1

    def test_mask_of_roundtrips_with_frozenset(self):
        for members in (set(), {0}, {3, 1, 2}, {0, 63, 64, 129}):
            mask = mask_of(members)
            assert mask_to_frozenset(mask) == frozenset(members)

    def test_iter_bits_ascending(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b1011)) == [0, 1, 3]
        assert list(iter_bits(1 << 100)) == [100]

    def test_bit_count(self):
        assert bit_count(0) == 0
        assert bit_count(0b1011) == 3
        assert bit_count(full_mask(200)) == 200

    def test_contains_and_subset(self):
        mask = mask_of({1, 4})
        assert mask_contains(mask, 1)
        assert not mask_contains(mask, 2)
        assert mask_issubset(mask_of({1}), mask)
        assert mask_issubset(0, mask)
        assert not mask_issubset(mask_of({2}), mask)

    def test_set_algebra_matches_frozenset_algebra(self):
        a, b = {0, 2, 5}, {2, 3, 5, 7}
        assert mask_to_frozenset(mask_of(a) & mask_of(b)) == frozenset(a) & frozenset(b)
        assert mask_to_frozenset(mask_of(a) | mask_of(b)) == frozenset(a) | frozenset(b)


class TestMaskMapping:
    def test_behaves_like_the_materialised_dict(self):
        payloads = [f"m{p}" for p in range(6)]
        mask = mask_of({0, 3, 5})
        view = MaskMapping(payloads, mask)
        materialised = {q: payloads[q] for q in iter_bits(mask)}
        assert dict(view) == materialised
        assert len(view) == 3
        assert list(view) == list(materialised)
        assert list(view.values()) == list(materialised.values())
        assert view[3] == "m3"
        assert view.get(1) is None
        assert 5 in view and 1 not in view

    def test_missing_key_raises(self):
        view = MaskMapping(["a", "b"], mask_of({0}))
        with pytest.raises(KeyError):
            view[1]
        with pytest.raises(KeyError):
            view[-1]
