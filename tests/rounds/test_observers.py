"""Tests for the RoundEngine observer hook on both transport paths."""

from __future__ import annotations

from repro.algorithms import OneThirdRule
from repro.core.machine import HOMachine
from repro.core.types import HOCollection, RunTrace
from repro.predicates import MonitorBank, PSuMonitor, StopAfterHeld, build_monitor
from repro.rounds.engine import OracleTransport, RoundEngine, RoundObserver, StepTransport


class RecordingObserver:
    """The smallest possible observer: remembers every record it was fed."""

    def __init__(self):
        self.records = []

    def on_record(self, record):
        self.records.append(record)


class StopImmediately:
    def __init__(self):
        self.stop_requested = True

    def on_record(self, record):
        pass


def full_oracle(round, process):
    return range(4)


class TestLockstepObservers:
    def test_observers_see_every_record_the_sink_sees(self):
        n = 4
        observer = RecordingObserver()
        machine = HOMachine(
            OneThirdRule(n), full_oracle, [1, 2, 3, 4], observers=[observer]
        )
        machine.run(3)
        assert len(observer.records) == len(machine.trace.records) == 3 * n
        assert [
            (r.process, r.round, r.ho_mask) for r in observer.records
        ] == [(r.process, r.round, r.ho_mask) for r in machine.trace.records]

    def test_observer_protocol_is_runtime_checkable(self):
        assert isinstance(RecordingObserver(), RoundObserver)
        assert isinstance(MonitorBank(2, []), RoundObserver)

    def test_add_observer_after_construction(self):
        n = 3
        trace = RunTrace(n=n, ho_collection=HOCollection(n))
        engine = RoundEngine(OneThirdRule(n), OracleTransport(full_oracle, n), trace)
        observer = RecordingObserver()
        engine.add_observer(observer)
        states = {p: OneThirdRule(n).initial_state(p, p) for p in range(n)}
        engine.execute_round(1, states)
        assert len(observer.records) == n

    def test_stop_requested_aggregates_observers(self):
        n = 3
        trace = RunTrace(n=n, ho_collection=HOCollection(n))
        engine = RoundEngine(OneThirdRule(n), OracleTransport(full_oracle, n), trace)
        assert not engine.stop_requested
        engine.add_observer(RecordingObserver())  # no stop_requested attribute
        assert not engine.stop_requested
        engine.add_observer(StopImmediately())
        assert engine.stop_requested

    def test_run_until_decision_honours_stop_policies(self):
        n = 4
        bank = MonitorBank(
            n, [PSuMonitor(n)], stop_policies=[StopAfterHeld(1, predicate="p_su")]
        )
        # With distinct initial values OneThirdRule needs two fault-free
        # rounds to decide; the fault-free oracle is space uniform from
        # round 1, so the held-for-1 policy stops the machine first.
        machine = HOMachine(OneThirdRule(n), full_oracle, [1, 2, 3, 4], observers=[bank])
        machine.run_until_decision(max_rounds=50)
        assert bank.stop_requested
        assert machine.current_round == 1
        assert not machine.decisions()

    def test_observers_do_not_change_the_trace(self):
        n = 4
        values = [1, 2, 3, 4]
        plain = HOMachine(OneThirdRule(n), full_oracle, values)
        observed = HOMachine(
            OneThirdRule(n), full_oracle, values, observers=[RecordingObserver()]
        )
        plain.run(3)
        observed.run(3)
        assert plain.trace.records == observed.trace.records


class EchoAlgorithm:
    """A minimal RoundAlgorithm: payloads are opaque, state is the round."""

    def __init__(self, n):
        self.n = n

    def initial_state(self, process, value):
        return value

    def send(self, round, process, state):
        return ("payload", round, process)

    def transition(self, round, process, state, received):
        return (round, len(received))

    def decision(self, state):
        return None


class TestStepPathObservers:
    def test_finish_rounds_feeds_observers_including_skipped_rounds(self):
        n = 2
        algorithm = EchoAlgorithm(n)
        trace = RunTrace(n=n, ho_collection=HOCollection(n))
        transport = StepTransport(n)
        observer = RecordingObserver()
        engine = RoundEngine(algorithm, transport, trace, observers=[observer])
        state = algorithm.initial_state(0, 1)
        payload = engine.send_payload(1, 0, state)
        transport.deposit(0, 1, 0, payload)
        transport.deposit(0, 1, 1, "other")
        # finish round 1 and jump to round 4: rounds 2 and 3 are skipped
        # (executed with the empty view) and must reach observers too
        engine.finish_rounds(0, 1, 4, state, time=0.5)
        assert [(r.round, r.ho_mask) for r in observer.records] == [
            (1, 0b11),
            (2, 0),
            (3, 0),
        ]

    def test_monitor_bank_collates_step_records_across_processes(self):
        n = 2
        algorithm = EchoAlgorithm(n)
        trace = RunTrace(n=n, ho_collection=HOCollection(n))
        transport = StepTransport(n)
        bank = MonitorBank(n, [build_monitor("p_k", n, pi0={0, 1})])
        engine = RoundEngine(algorithm, transport, trace, observers=[bank])
        states = {p: algorithm.initial_state(p, p + 1) for p in range(n)}
        for p in range(n):
            payload = engine.send_payload(1, p, states[p])
            for q in range(n):
                transport.deposit(q, 1, p, payload)
        # processes finish round 1 at their own pace; the bank completes the
        # round only once both records arrived
        engine.finish_rounds(0, 1, 2, states[0], time=1.0)
        assert bank.monitors[0].rounds_observed == 0  # round 1 still incomplete
        engine.finish_rounds(1, 1, 2, states[1], time=1.2)
        report = bank.reports()["p_k"]
        assert report.rounds_observed == 1
        assert report.good_rounds == 1
