"""Byte-identical per-seed equivalence of the RoundEngine unification.

The fingerprints in ``tests/data/golden_traces.json`` were captured from the
pre-refactor executors (the original ``HOMachine`` round loop and the
hand-rolled round loops inside ``predimpl``).  These tests re-run the same
scenarios through the shared :class:`repro.rounds.RoundEngine` and require
identical traces, pinning down that the unification changed *where* the loop
lives, not *what* it computes.
"""

from __future__ import annotations

import pytest

from ._golden import (
    _run_arbitrary,
    _run_down,
    _run_machine,
    compute_fingerprints,
    load_goldens,
)


def test_all_golden_scenarios_match_pre_refactor_fingerprints():
    expected = load_goldens()
    actual = compute_fingerprints()
    assert set(actual) == set(expected)
    mismatched = {name for name in expected if actual[name] != expected[name]}
    assert not mismatched, f"traces diverged from pre-refactor goldens: {sorted(mismatched)}"


def test_machine_traces_are_deterministic_per_seed():
    from repro.algorithms import OneThirdRule

    from ._golden import fingerprint_ho_trace

    first = fingerprint_ho_trace(_run_machine(OneThirdRule, n=6, rounds=20))
    second = fingerprint_ho_trace(_run_machine(OneThirdRule, n=6, rounds=20))
    assert first == second


@pytest.mark.parametrize("fault_model", ["fault-free", "lossy"])
def test_down_stack_traces_are_deterministic_per_seed(fault_model):
    from ._golden import fingerprint_system_trace

    first = fingerprint_system_trace(_run_down(fault_model, n=3, seed=5))
    second = fingerprint_system_trace(_run_down(fault_model, n=3, seed=5))
    assert first == second


def test_arbitrary_stack_traces_are_deterministic_per_seed():
    from ._golden import fingerprint_system_trace

    first = fingerprint_system_trace(_run_arbitrary(n=3, f=1, seed=3, use_translation=False))
    second = fingerprint_system_trace(_run_arbitrary(n=3, f=1, seed=3, use_translation=False))
    assert first == second
