"""Golden-trace fixtures pinning the round-execution refactor.

The scenarios and fingerprints below were captured from the pre-refactor
executors (the original ``HOMachine`` loop and the hand-rolled round loops
inside ``predimpl``).  After the unification on ``repro.rounds.RoundEngine``
the same seeds must reproduce byte-identical traces; the fingerprints only
use public trace APIs so they are computable on both sides of the refactor.

Regenerate (only when a semantic change is intended)::

    PYTHONPATH=src python -c "from tests.rounds._golden import write_goldens; write_goldens()"
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict

from repro.algorithms import OneThirdRule, UniformVoting
from repro.core.machine import HOMachine
from repro.predimpl import build_arbitrary_stack, build_down_stack
from repro.sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "..", "data", "golden_traces.json")

PARAMS = SynchronyParams(phi=1.0, delta=2.0)


def formula_oracle(n: int):
    """A deterministic, library-independent heard-of oracle.

    Pure arithmetic (no RNG), so its outputs cannot drift when the library's
    random-stream layout changes; every process always hears of itself.
    """

    def oracle(round_, process):
        return {q for q in range(n) if (q * 31 + round_ * 17 + process * 13) % 11 < 8} | {process}

    return oracle


def _canon(value: Any) -> Any:
    return repr(value)


def fingerprint_ho_trace(trace) -> str:
    """A stable digest of a round-level ``RunTrace``."""
    payload = {
        "n": trace.n,
        "records": [
            [r.process, r.round, sorted(r.ho_set), _canon(r.state_after),
             _canon(r.decision), _canon(r.sent_payload)]
            for r in trace.records
        ],
        "ho": [[p, r, sorted(ho)] for p, r, ho in trace.ho_collection.items()],
        "decisions": sorted((p, _canon(v)) for p, v in trace.decisions().items()),
        "decision_rounds": sorted(trace.decision_rounds().items()),
        "messages_sent": trace.messages_sent,
        "messages_delivered": trace.messages_delivered,
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


def fingerprint_system_trace(trace) -> str:
    """A stable digest of a step-level ``SystemRunTrace``."""
    payload = {
        "n": trace.n,
        "ho": [[p, r, sorted(ho)] for p, r, ho in trace.ho_collection.items()],
        "transition_times": sorted(
            [[p, r, t] for (p, r), t in trace.transition_times.items()]
        ),
        "round_send_times": sorted(
            [[p, r, t] for (p, r), t in trace.round_send_times.items()]
        ),
        "reception_times": sorted(
            [[p, r, q, t] for (p, r, q), t in trace.reception_times.items()]
        ),
        "decisions": sorted(
            [[p, _canon(d.value), d.round, d.time] for p, d in trace.decisions.items()]
        ),
        "counters": [
            trace.messages_sent,
            trace.messages_dropped,
            trace.total_send_steps,
            trace.total_receive_steps,
            trace.crashes,
            trace.recoveries,
        ],
    }
    return hashlib.sha256(json.dumps(payload, sort_keys=True).encode()).hexdigest()


# --------------------------------------------------------------------------- #
# scenarios
# --------------------------------------------------------------------------- #


def _run_machine(algo_cls, n: int, rounds: int):
    values = [10 * (p % 3 + 1) for p in range(n)]
    machine = HOMachine(algo_cls(n), formula_oracle(n), values)
    return machine.run(rounds)


def _run_down(fault_model: str, n: int, seed: int):
    values = [10 * (p + 1) for p in range(n)]
    stack = build_down_stack(OneThirdRule(n), values, PARAMS)
    bad, good = 80.0, 300.0
    faults = FaultSchedule.none()
    if fault_model == "fault-free":
        schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI_GOOD)
    elif fault_model == "crash-recovery":
        faults = FaultSchedule.crash_recovery(
            [(p, bad * (0.1 + 0.15 * p), bad * (0.3 + 0.15 * p)) for p in range(n)]
        )
        schedule = PeriodSchedule.single_good_period(
            n, start=bad, length=good, kind=GoodPeriodKind.PI0_DOWN
        )
    else:  # lossy
        schedule = PeriodSchedule.single_good_period(
            n, start=bad, length=good, kind=GoodPeriodKind.PI0_DOWN
        )
    lossy = fault_model != "fault-free"
    simulator = SystemSimulator(
        stack.programs,
        PARAMS,
        schedule,
        seed=seed,
        trace=stack.trace,
        fault_schedule=faults,
        bad_network=BadPeriodNetwork(
            loss_probability=0.5 if lossy else 0.0, min_delay=1.0, max_delay=30.0
        ),
        bad_process_behavior=BadPeriodProcessBehavior(
            min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
        ),
    )
    return simulator.run(until=bad + good)


def _run_arbitrary(n: int, f: int, seed: int, use_translation: bool):
    values = list(range(10, 10 + n))
    stack = build_arbitrary_stack(
        OneThirdRule(n), f, values, PARAMS, use_translation=use_translation
    )
    pi0 = frozenset(range(n - f))
    schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI0_ARBITRARY, pi0=pi0)
    simulator = SystemSimulator(
        stack.programs, PARAMS, schedule, seed=seed, trace=stack.trace
    )
    return simulator.run(until=300.0)


def compute_fingerprints() -> Dict[str, str]:
    """Run every golden scenario and return its fingerprint, by name."""
    out: Dict[str, str] = {}
    for algo_cls in (OneThirdRule, UniformVoting):
        for n in (4, 9):
            trace = _run_machine(algo_cls, n, rounds=30)
            out[f"machine/{algo_cls.__name__}/n={n}"] = fingerprint_ho_trace(trace)
    for fault_model, seed in (("fault-free", 0), ("lossy", 1), ("crash-recovery", 2)):
        trace = _run_down(fault_model, n=4, seed=seed)
        out[f"down/{fault_model}/seed={seed}"] = fingerprint_system_trace(trace)
    for use_translation in (False, True):
        trace = _run_arbitrary(n=4, f=1, seed=0, use_translation=use_translation)
        out[f"arbitrary/translation={use_translation}"] = fingerprint_system_trace(trace)
    return out


def load_goldens() -> Dict[str, str]:
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)


def write_goldens() -> None:
    path = os.path.abspath(GOLDEN_PATH)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(compute_fingerprints(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")
