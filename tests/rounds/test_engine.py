"""Behavioural tests for the shared RoundEngine and its transports."""

from __future__ import annotations

import pytest

from repro.adversaries import FaultFreeOracle, ScriptedOracle
from repro.algorithms import OneThirdRule
from repro.core.machine import HOMachine
from repro.core.types import HOCollection, RunTrace
from repro.rounds import (
    OracleTransport,
    RoundEngine,
    RoundRecord,
    StepTransport,
    mask_of,
)
from repro.sysmodel.trace import SystemRunTrace


def make_lockstep(n=4, oracle=None, view="dict"):
    algorithm = OneThirdRule(n)
    oracle = oracle if oracle is not None else FaultFreeOracle(n)
    trace = RunTrace(n=n, ho_collection=HOCollection(n))
    engine = RoundEngine(algorithm, OracleTransport(oracle, n, view=view), trace)
    states = {p: algorithm.initial_state(p, 10 * (p + 1)) for p in range(n)}
    return engine, states, trace


class TestOracleTransport:
    def test_rejects_unknown_view(self):
        with pytest.raises(ValueError, match="view"):
            OracleTransport(FaultFreeOracle(3), 3, view="set")

    def test_clamps_sloppy_oracles(self):
        transport = OracleTransport(lambda r, p: [0, 1, 7, 9], 3)
        mask, received = transport.round_view(1, 0, ["a", "b", "c"])
        assert mask == mask_of({0, 1})
        assert dict(received) == {0: "a", 1: "b"}

    def test_mask_view_equals_dict_view(self):
        oracle = ScriptedOracle(4, {(1, 0): [1, 3]}, default=[0, 1, 2, 3])
        payloads = ["m0", "m1", "m2", "m3"]
        for view in ("dict", "mask"):
            transport = OracleTransport(oracle, 4, view=view)
            mask, received = transport.round_view(1, 0, payloads)
            assert mask == mask_of({1, 3})
            assert dict(received) == {1: "m1", 3: "m3"}


class TestLockstepExecution:
    def test_execute_round_records_unified_schema(self):
        engine, states, trace = make_lockstep(n=3)
        engine.execute_round(1, states)
        assert len(trace.records) == 3
        record = trace.records[0]
        assert isinstance(record, RoundRecord)
        assert record.round == 1
        assert record.ho_set == frozenset({0, 1, 2})
        assert record.time == 1.0
        assert trace.messages_sent == 9
        assert trace.messages_delivered == 9

    def test_mask_and_dict_views_yield_identical_traces(self):
        def run(view):
            engine, states, trace = make_lockstep(n=5, view=view)
            for round_number in range(1, 8):
                engine.execute_round(round_number, states)
            return states, trace

        states_dict, trace_dict = run("dict")
        states_mask, trace_mask = run("mask")
        assert states_dict == states_mask
        assert trace_dict.records == trace_mask.records
        assert trace_dict.ho_collection == trace_mask.ho_collection

    def test_machine_and_engine_agree(self):
        n = 4
        machine = HOMachine(OneThirdRule(n), FaultFreeOracle(n), [1, 2, 3, 4])
        machine.run(3)
        assert machine.trace.rounds_executed() == 3
        assert machine.all_decided()
        # decisions are derived from the unified records
        assert machine.trace.decision_values() == machine.decisions()
        assert set(machine.trace.decision_times().values()) <= {1.0, 2.0, 3.0}


class TestStepTransport:
    def test_round_view_collects_only_the_requested_round(self):
        transport = StepTransport(3)
        transport.deposit(0, 1, 1, "r1-from-1")
        transport.deposit(0, 2, 2, "r2-from-2")
        mask, received = transport.round_view(1, 0)
        assert mask == mask_of({1})
        assert received == {1: "r1-from-1"}

    def test_advance_prunes_finished_rounds_only(self):
        transport = StepTransport(2)
        transport.deposit(0, 1, 1, "old")
        transport.deposit(0, 5, 1, "future")
        transport.advance(0, 3)
        assert transport.round_view(1, 0)[1] == {}
        assert transport.round_view(5, 0)[1] == {1: "future"}

    def test_reset_models_a_crash(self):
        transport = StepTransport(2)
        transport.deposit(1, 4, 0, "x")
        transport.reset(1)
        assert transport.round_view(4, 1)[1] == {}

    def test_mailboxes_are_per_process(self):
        transport = StepTransport(2)
        transport.deposit(0, 1, 1, "for-0")
        assert transport.round_view(1, 1)[1] == {}

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            StepTransport(0)


class TestStepModeFinishRounds:
    def test_finish_rounds_applies_skipped_rounds_with_empty_views(self):
        n = 3
        algorithm = OneThirdRule(n)
        trace = SystemRunTrace(n=n)
        transport = StepTransport(n)
        engine = RoundEngine(algorithm, transport, trace)
        state = algorithm.initial_state(0, 10)

        payload = engine.send_payload(1, 0, state)
        for sender in range(n):
            transport.deposit(0, 1, sender, payload)
        state = engine.finish_rounds(0, 1, 4, state, time=2.5)

        assert trace.ho_collection.ho(0, 1) == frozenset(range(n))
        assert trace.ho_collection.ho(0, 2) == frozenset()
        assert trace.ho_collection.ho(0, 3) == frozenset()
        assert trace.transition_times[(0, 1)] == 2.5
        assert trace.transition_times[(0, 3)] == 2.5
        # the unified records carry the same rounds
        assert [r.round for r in trace.records] == [1, 2, 3]
        # the mailbox was pruned up to the next round
        assert transport.round_view(1, 0)[1] == {}
