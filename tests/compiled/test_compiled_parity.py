"""Compiled-tier parity: the fused round loop is bit-identical to scalar.

The compiled cores are exercised in *interpreted* mode
(``CompiledBackend(interpreted=True)``): the exact code objects numba would
JIT run under CPython, so a numba-free environment still pins the cores'
bit-identity against the numpy batch tier and the scalar reference.  When
numba *is* importable the same tests run the JIT path -- the backend only
switches how the chunk cores execute, never what they compute.

``test_classic_grid_parity`` and ``test_translation_parity`` are the
parity-evidence markers named by the registered compiled kernels
(:data:`repro.compiled.kernels._COMPILED`), audited by lint rule REP106.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import (
    FaultFreeOracle,
    PartitionOracle,
    RandomOmissionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from repro.adversaries.dynamic import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    MobileOmissionOracle,
    RotatingPartitionOracle,
)
from repro.algorithms import LastVoting, OneThirdRule, UniformVoting
from repro.engine.rng import SeededRng
from repro.predimpl.translation import KernelToUniformTranslation
from repro.rounds.backend import ReplicaBatch, ReplicaTask, get_backend
from repro.rounds.bitmask import mask_of
from repro.rounds.fallback import FallbackReason

pytestmark = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

#: classic (pure, broadcastable) and dynamic (counter-stream) adversaries;
#: all of them vectorise without the per-replica query loop, so the fused
#: chunked precompute engages for every cell.
ORACLE_FACTORIES = {
    "fault-free": lambda n, seed: FaultFreeOracle(n),
    "crash-stop": lambda n, seed: StaticCrashOracle(n, {n - 1: 3}),
    "partition-heal": lambda n, seed: PartitionOracle(
        n, [range(0, n // 2), range(n // 2, n)], heal_round=6
    ),
    "crash-recovery": lambda n, seed: SequenceOracle(
        n,
        [
            (FaultFreeOracle(n), 3),
            (StaticCrashOracle(n, {n - 1: 1}), 4),
            (FaultFreeOracle(n), None),
        ],
    ),
    "mobile": lambda n, seed: MobileOmissionOracle(
        n, faults=max(0, (n - 1) // 3), seed=seed
    ),
    "rotating": lambda n, seed: RotatingPartitionOracle(n, seed=seed),
    "bursty": lambda n, seed: BurstyLossOracle(n, seed=seed),
    "stable-coord": lambda n, seed: EventuallyStableCoordinatorOracle(
        n, stable_from=6, seed=seed
    ),
}

ALGORITHMS = [OneThirdRule, UniformVoting, LastVoting]


def compiled_backend():
    """A fresh interpreted-mode compiled backend (JIT engages when numba is up)."""
    from repro.compiled import CompiledBackend

    return CompiledBackend(interpreted=True)


def make_batch(algo_factory, oracle_name, n, base_seed, replicas, **kwargs):
    factory = ORACLE_FACTORIES[oracle_name]
    tasks = []
    for i in range(replicas):
        seed = base_seed + i
        rng = SeededRng(seed)
        values = [10 * (p + 1) for p in range(n)]
        rng.stream("values").shuffle(values)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=algo_factory(n),
                oracle=factory(n, seed),
                initial_values=values,
            )
        )
    scope = range(n - 1) if (oracle_name == "crash-stop" and n > 1) else range(n)
    kwargs.setdefault("scope_mask", mask_of(scope))
    kwargs.setdefault("max_rounds", 40)
    return ReplicaBatch(n=n, tasks=tasks, **kwargs)


def assert_compiled_engaged_and_identical(make, reference_backend="scalar"):
    """The fused loop ran (no fallback) and outcomes match the reference."""
    reference = get_backend(reference_backend).run(make())
    backend = compiled_backend()
    outcomes = backend.run(make())
    assert backend.last_fallback_reason is None
    assert outcomes == reference


# --------------------------------------------------------------------- #
# the registered parity markers (REP106 evidence)
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("algo_cls", ALGORITHMS)
@pytest.mark.parametrize("oracle_name", sorted(ORACLE_FACTORIES))
def test_classic_grid_parity(algo_cls, oracle_name):
    """Compiled == batch == scalar on every round prefix of every cell.

    Prefix runs (max_rounds = t) pin the *whole trajectory*: a transition
    divergence at round k shows up in some prefix's decisions/messages even
    if the final fixed point happens to agree.
    """
    for max_rounds in (1, 2, 5, 40):
        scalar = get_backend("scalar").run(
            make_batch(algo_cls, oracle_name, 5, 40, 4, max_rounds=max_rounds)
        )
        batched = get_backend("batch").run(
            make_batch(algo_cls, oracle_name, 5, 40, 4, max_rounds=max_rounds)
        )
        backend = compiled_backend()
        compiled = backend.run(
            make_batch(algo_cls, oracle_name, 5, 40, 4, max_rounds=max_rounds)
        )
        assert backend.last_fallback_reason is None
        assert compiled == scalar
        assert compiled == batched


@pytest.mark.parametrize("oracle_name", ["fault-free", "crash-stop", "mobile", "bursty"])
@pytest.mark.parametrize("n,f", [(4, 1), (5, 1), (7, 2)])
def test_translation_parity(oracle_name, n, f):
    """The Theorem 8 translation core: listen/known bookkeeping bit-exact."""

    def make():
        return make_batch(
            lambda size: KernelToUniformTranslation(OneThirdRule(size), f),
            oracle_name, n, 300, 3, max_rounds=60,
        )

    assert_compiled_engaged_and_identical(make)


# --------------------------------------------------------------------- #
# word-spill sizes and full-horizon mode
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("n", [1, 63, 64, 65])
@pytest.mark.parametrize("algo_cls", [OneThirdRule, UniformVoting])
def test_word_spill_parity(n, algo_cls):
    """The (K, R, n, ceil(n/64)) uint64 layout is exact across the 64-bit edge."""
    for oracle_name in ("fault-free", "mobile"):
        assert_compiled_engaged_and_identical(
            lambda: make_batch(algo_cls, oracle_name, n, 500, 2, max_rounds=6)
        )


def test_full_horizon_runs_every_round():
    """run_full_horizon disables the early-decide poll inside the fused loop."""

    def make():
        return make_batch(
            OneThirdRule, "fault-free", 5, 40, 3,
            max_rounds=12, run_full_horizon=True,
        )

    assert_compiled_engaged_and_identical(make)
    outcomes = compiled_backend().run(make())
    assert all(o.rounds_executed == 12 for o in outcomes)


def test_empty_scope_runs_zero_rounds():
    """An already-satisfied scope never queries the oracle (same as scalar)."""

    def make():
        return make_batch(
            OneThirdRule, "fault-free", 5, 40, 2, scope_mask=0, max_rounds=10
        )

    assert_compiled_engaged_and_identical(make)
    outcomes = compiled_backend().run(make())
    assert all(o.rounds_executed == 0 for o in outcomes)


# --------------------------------------------------------------------- #
# the fallback ladder
# --------------------------------------------------------------------- #


def test_forced_fallback_matches_free_run():
    from repro.compiled import CompiledBackend

    forced = CompiledBackend(force_fallback=True, interpreted=True)
    free = compiled_backend()
    a = forced.run(make_batch(LastVoting, "bursty", 5, 3, 4))
    b = free.run(make_batch(LastVoting, "bursty", 5, 3, 4))
    assert forced.last_fallback_reason == FallbackReason.FORCED.render()
    assert free.last_fallback_reason is None
    assert a == b


def test_without_numba_the_batch_path_runs(monkeypatch):
    """A non-interpreted backend degrades with NO_NUMBA when numba is absent."""
    from repro.compiled import CompiledBackend

    monkeypatch.setattr("repro._optional.NUMBA", None)
    backend = CompiledBackend()
    outcomes = backend.run(make_batch(OneThirdRule, "fault-free", 5, 40, 3))
    assert backend.last_fallback_reason == FallbackReason.NO_NUMBA.render()
    assert outcomes == get_backend("scalar").run(
        make_batch(OneThirdRule, "fault-free", 5, 40, 3)
    )


def test_monitored_cells_take_the_batch_path():
    from repro.rounds.backend import MonitorSpec

    backend = compiled_backend()
    batch = make_batch(
        OneThirdRule, "partition-heal", 5, 40, 3,
        monitor_spec=MonitorSpec(predicates=("p_su",)),
    )
    outcomes = backend.run(batch)
    assert backend.last_fallback_reason == \
        FallbackReason.MONITORED_COMPILED_CELL.render()
    # spec-only monitoring is a *batch*-tier feature (the scalar path
    # monitors through monitor_factory), so the reference is the batch run.
    reference = get_backend("batch").run(make_batch(
        OneThirdRule, "partition-heal", 5, 40, 3,
        monitor_spec=MonitorSpec(predicates=("p_su",)),
    ))
    assert outcomes == reference
    assert all(o.predicate_reports for o in outcomes)


def test_fingerprinted_cells_take_the_batch_path():
    backend = compiled_backend()
    outcomes = backend.run(
        make_batch(OneThirdRule, "fault-free", 5, 40, 3, fingerprints=True)
    )
    assert backend.last_fallback_reason == \
        FallbackReason.FINGERPRINTED_COMPILED_CELL.render()
    reference = get_backend("scalar").run(
        make_batch(OneThirdRule, "fault-free", 5, 40, 3, fingerprints=True)
    )
    assert outcomes == reference


def test_stateful_oracles_are_opaque_to_the_fused_loop():
    """rng-backed oracles need the per-replica query loop -> batch path."""

    def make():
        tasks = []
        for i in range(3):
            seed = 40 + i
            rng = SeededRng(seed)
            values = [10 * (p + 1) for p in range(5)]
            rng.stream("values").shuffle(values)
            tasks.append(ReplicaTask(
                seed=seed,
                algorithm=OneThirdRule(5),
                oracle=RandomOmissionOracle(5, 0.25, rng=rng),
                initial_values=values,
            ))
        return ReplicaBatch(n=5, tasks=tasks, max_rounds=40)

    backend = compiled_backend()
    outcomes = backend.run(make())
    assert backend.last_fallback_reason == \
        FallbackReason.OPAQUE_COMPILED_ORACLE.render()
    assert outcomes == get_backend("scalar").run(make())


def test_mixed_algorithms_fall_back():
    tasks = [
        ReplicaTask(0, OneThirdRule(3), FaultFreeOracle(3), [1, 2, 3]),
        ReplicaTask(1, UniformVoting(3), FaultFreeOracle(3), [1, 2, 3]),
    ]
    backend = compiled_backend()
    backend.run(ReplicaBatch(n=3, tasks=tasks, max_rounds=10))
    assert "mixed" in backend.last_fallback_reason


def test_disable_env_forces_numba_off(monkeypatch):
    """REPRO_DISABLE_NUMBA=1 makes the loader refuse numba entirely."""
    from repro import _optional

    monkeypatch.setenv("REPRO_DISABLE_NUMBA", "1")
    assert _optional._load_numba() is None


# --------------------------------------------------------------------- #
# the fused counter-stream hash
# --------------------------------------------------------------------- #


def test_counter_units_fused_matches_two_step():
    from repro._optional import require_numpy
    from repro.compiled.kernels import counter_units
    from repro.engine.counter import counter_hash_array, units_of_array

    np = require_numpy()
    keys = np.arange(193, dtype=np.uint64) * np.uint64(0x9E3779B9)
    rounds = np.arange(193, dtype=np.uint64)[::-1].copy()
    fused = counter_units(np, keys, [np.uint64(3), rounds, np.uint64(7)])
    two_step = units_of_array(
        np, counter_hash_array(np, keys, [np.uint64(3), rounds, np.uint64(7)])
    )
    assert fused.dtype == two_step.dtype
    assert (fused == two_step).all()
    assert ((fused >= 0.0) & (fused < 1.0)).all()


def test_counter_units_broadcasts_like_the_two_step_path():
    from repro._optional import require_numpy
    from repro.compiled.kernels import counter_units
    from repro.engine.counter import counter_hash_array, units_of_array

    np = require_numpy()
    grid = np.arange(12, dtype=np.uint64).reshape(3, 4)
    fused = counter_units(np, np.uint64(42), [grid, np.uint64(1)])
    two_step = units_of_array(
        np, counter_hash_array(np, np.uint64(42), [grid, np.uint64(1)])
    )
    assert fused.shape == (3, 4)
    assert (fused == two_step).all()


def test_units_of_counters_dispatcher_is_bit_identical():
    """The lazy dispatcher returns the same values whichever path resolved."""
    from repro._optional import require_numpy
    from repro.engine.counter import (
        counter_hash_array,
        units_of_array,
        units_of_counters,
    )

    np = require_numpy()
    keys = np.arange(50, dtype=np.uint64) + np.uint64(11)
    got = units_of_counters(np, keys, [np.uint64(2), np.uint64(9)])
    want = units_of_array(
        np, counter_hash_array(np, keys, [np.uint64(2), np.uint64(9)])
    )
    assert (got == want).all()
