"""Unit tests for the shared engine core: queue, clock, rng, fault injection."""

from __future__ import annotations

import pytest

from repro.engine import (
    Clock,
    CrashRecoveryInjector,
    EngineCore,
    EventQueue,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    SeededRng,
    derive_seed,
)


class TestEventQueue:
    def test_orders_by_time(self):
        queue = EventQueue()
        queue.schedule(3.0, "c")
        queue.schedule(1.0, "a")
        queue.schedule(2.0, "b")
        assert [event for _, event in queue.pop_due(10.0)] == ["a", "b", "c"]

    def test_fifo_among_equal_times(self):
        queue = EventQueue()
        for label in "abcde":
            queue.schedule(1.0, label)
        assert [event for _, event in queue.pop_due(1.0)] == list("abcde")

    def test_pop_due_respects_horizon(self):
        queue = EventQueue()
        queue.schedule(1.0, "early")
        queue.schedule(5.0, "late")
        assert [event for _, event in queue.pop_due(2.0)] == ["early"]
        assert len(queue) == 1
        assert queue.next_time() == 5.0

    def test_explicit_sequence_controls_ties(self):
        queue = EventQueue()
        first = queue.next_sequence()
        second = queue.next_sequence()
        queue.schedule(1.0, "second", sequence=second)
        queue.schedule(1.0, "first", sequence=first)
        assert [event for _, event in queue.pop_due(1.0)] == ["first", "second"]


class TestClock:
    def test_advances_monotonically(self):
        clock = Clock()
        clock.advance(5.0)
        clock.advance(3.0)  # ignored: never backwards
        assert clock.now == 5.0


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(7).stream("channel")
        b = SeededRng(7).stream("channel")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_differ(self):
        rng = SeededRng(7)
        assert rng.stream("channel").random() != rng.stream("steps").random()

    def test_stream_isolation(self):
        """Draining one stream must not perturb another."""
        fresh = SeededRng(3).stream("faults")
        reference = [fresh.random() for _ in range(5)]
        rng = SeededRng(3)
        for _ in range(1000):
            rng.stream("channel").random()  # heavy traffic on another stream
        assert [rng.stream("faults").random() for _ in range(5)] == reference

    def test_derive_seed_is_stable(self):
        # Hash-derived, not `hash()`-derived: stable across processes/runs.
        assert derive_seed(0, "channel") == derive_seed(0, "channel")
        assert derive_seed(0, "channel") != derive_seed(1, "channel")

    def test_spawn_is_independent(self):
        parent = SeededRng(5)
        child = parent.spawn("worker")
        value = child.stream("x").random()
        assert value == SeededRng(derive_seed(5, "worker")).stream("x").random()


class TestFaultSchedule:
    def test_from_maps_validates_recovery(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_maps({}, {0: 5.0})
        with pytest.raises(ValueError):
            FaultSchedule.from_maps({0: 5.0}, {0: 5.0})

    def test_from_maps_builds_sorted_events(self):
        schedule = FaultSchedule.from_maps({0: 2.0, 1: 1.0}, {0: 4.0})
        assert [(e.time, e.kind, e.process) for e in schedule.events] == [
            (1.0, FaultKind.CRASH, 1),
            (2.0, FaultKind.CRASH, 0),
            (4.0, FaultKind.RECOVER, 0),
        ]

    def test_merged_with(self):
        merged = FaultSchedule.crash_stop([(0, 1.0)]).merged_with(
            FaultSchedule.crash_stop([(1, 0.5)])
        )
        assert [e.process for e in merged.events] == [1, 0]


class TestCrashRecoveryInjector:
    def _make(self, schedule, veto=None):
        applied = []
        injector = CrashRecoveryInjector(
            schedule,
            crash=lambda p: applied.append(("crash", p)) or True,
            recover=lambda p: applied.append(("recover", p)) or True,
            veto=veto,
        )
        return injector, applied

    def test_arm_and_apply(self):
        schedule = FaultSchedule.crash_recovery([(1, 2.0, 5.0)])
        injector, applied = self._make(schedule)
        queue = EventQueue()
        injector.arm(queue)
        for _, event in queue.pop_due(10.0):
            injector.apply(event)
        assert applied == [("crash", 1), ("recover", 1)]
        assert injector.skipped == []

    def test_veto_records_skipped(self):
        schedule = FaultSchedule.crash_stop([(0, 1.0)])
        injector, applied = self._make(schedule, veto=lambda fault: True)
        injector.apply(schedule.events[0])
        assert applied == []
        assert injector.skipped == schedule.events


class TestEngineCoreRunLoop:
    def test_dispatches_in_order_and_advances_clock(self):
        engine = EngineCore(seed=0)
        seen = []
        engine.queue.schedule(2.0, "b")
        engine.queue.schedule(1.0, "a")
        engine.queue.schedule(9.0, "late")
        stopped = engine.run(5.0, lambda event: seen.append((engine.now, event)))
        assert not stopped
        assert seen == [(1.0, "a"), (2.0, "b")]
        assert engine.now == 5.0  # advanced to the horizon
        assert len(engine.queue) == 1  # the late event is still pending

    def test_stop_when_halts_early(self):
        engine = EngineCore(seed=0)
        seen = []
        for t in (1.0, 2.0, 3.0):
            engine.queue.schedule(t, t)
        stopped = engine.run(
            10.0, lambda event: seen.append(event), stop_when=lambda: len(seen) >= 2
        )
        assert stopped
        assert seen == [1.0, 2.0]
        assert engine.now == 2.0  # clock does NOT jump to the horizon

    def test_events_scheduled_during_dispatch_run(self):
        engine = EngineCore(seed=0)
        seen = []

        def dispatch(event):
            seen.append(event)
            if event == "first":
                engine.queue.schedule(engine.now + 1.0, "second")

        engine.queue.schedule(1.0, "first")
        engine.run(5.0, dispatch)
        assert seen == ["first", "second"]
