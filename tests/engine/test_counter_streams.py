"""Draw-order invariance of the counter-based random streams.

The whole point of :mod:`repro.engine.counter` is that a draw is a pure
function of ``(stream key, counter tuple)`` -- no sequence position, no
hidden cursor.  These tests pin the properties the scalar oracles and the
batch duals both rely on: scalar/array bit-identity on every prefix, the
leading-tag decorrelation convention, the ``SeededRng`` named-stream and
``replicate(i)`` contracts, and basic uniformity sanity.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy, require_numpy
from repro.engine.counter import (
    CounterStream,
    counter_hash,
    counter_hash_array,
    mix64,
    unit_of,
    units_of_array,
)
from repro.engine.rng import SeededRng, derive_seed

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")


class TestScalarStream:
    def test_draws_are_pure_functions_of_counters(self):
        """Query order cannot matter: re-asking yields the same value."""
        stream = CounterStream(derive_seed(7, "oracle.test"))
        forward = [stream.hash(r, q) for r in range(10) for q in range(5)]
        backward = [
            stream.hash(r, q) for r in reversed(range(10)) for q in reversed(range(5))
        ]
        backward.reverse()
        # backward iterated (r, q) in reverse lexicographic order; realign.
        realigned = [
            stream.hash(r, q) for r in range(10) for q in range(5)
        ]
        assert forward == realigned
        assert sorted(forward) == sorted(backward)

    def test_arity_and_leading_tag_decorrelate(self):
        """(a, b) is not a prefix extension of (a): tuples of different
        shapes and different leading tags give independent draws."""
        stream = CounterStream(123456789)
        assert stream.hash(3) != stream.hash(3, 0)
        assert stream.hash(0, 5, 2) != stream.hash(1, 5, 2)
        assert stream.hash(2, 7) != stream.hash(7, 2)

    def test_unit_in_range_and_deterministic(self):
        stream = CounterStream(42)
        units = [stream.unit(0, r, p) for r in range(50) for p in range(4)]
        assert all(0.0 <= u < 1.0 for u in units)
        assert units == [stream.unit(0, r, p) for r in range(50) for p in range(4)]

    def test_mod_and_below_derive_from_hash(self):
        stream = CounterStream(42)
        assert stream.mod(7, 1, 2) == stream.hash(1, 2) % 7
        assert stream.below(0.5, 1, 2) == (unit_of(stream.hash(1, 2)) < 0.5)

    def test_mix64_is_bijective_on_samples(self):
        values = [0, 1, 2**63, 2**64 - 1, 0xDEADBEEF]
        assert len({mix64(v) for v in values}) == len(values)

    def test_unit_histogram_is_roughly_uniform(self):
        stream = CounterStream(derive_seed(0, "oracle.uniformity"))
        draws = [stream.unit(i) for i in range(4000)]
        buckets = [0] * 8
        for u in draws:
            buckets[int(u * 8)] += 1
        assert all(350 < b < 650 for b in buckets)


class TestSeededRngContract:
    def test_counter_stream_keys_are_name_separated(self):
        rng = SeededRng(11)
        a = rng.counter_stream("oracle.mobile")
        b = rng.counter_stream("oracle.partition")
        assert a.key != b.key
        assert a.key == SeededRng(11).counter_stream("oracle.mobile").key

    def test_replicate_matches_seed_plus_i(self):
        """replicate(i) == an independent run seeded seed + i, for counter
        streams exactly as for the sequential named streams."""
        base = SeededRng(100)
        for i in range(5):
            replica_key = base.replicate(i).counter_stream("oracle.burst").key
            direct_key = SeededRng(100 + i).counter_stream("oracle.burst").key
            assert replica_key == direct_key


@needs_numpy
class TestArrayDual:
    def test_bit_identity_on_every_prefix(self):
        """The numpy path equals the scalar path element for element --
        single counters, multi-counter tuples, and every prefix length."""
        np = require_numpy()
        key = derive_seed(3, "oracle.dual")
        stream = CounterStream(key)
        for arity in (1, 2, 3, 4):
            counters = [np.arange(64, dtype=np.uint64) + np.uint64(t) for t in range(arity)]
            hashes = counter_hash_array(np, np.uint64(key), counters)
            scalars = [
                stream.hash(*(int(c[i]) for c in counters)) for i in range(64)
            ]
            assert [int(h) for h in hashes] == scalars

    def test_units_bit_identical(self):
        np = require_numpy()
        key = derive_seed(9, "oracle.dual")
        stream = CounterStream(key)
        hashes = counter_hash_array(
            np, np.uint64(key), [np.uint64(0), np.arange(128, dtype=np.uint64)]
        )
        units = units_of_array(np, hashes)
        assert [float(u) for u in units] == [stream.unit(0, q) for q in range(128)]

    def test_broadcast_shapes(self):
        np = require_numpy()
        keys = np.array([1, 2, 3], dtype=np.uint64)[:, None]
        counters = [np.uint64(5), np.arange(4, dtype=np.uint64)[None, :]]
        hashes = counter_hash_array(np, keys, counters)
        assert hashes.shape == (3, 4)
        for i in range(3):
            for j in range(4):
                assert int(hashes[i, j]) == counter_hash(i + 1, 5, j)

    def test_uint64_wraparound_not_promoted(self):
        """numpy 1.x promotes uint64 + python-int to float64; the array
        implementation must stay in uint64 (otherwise the wraparound --
        and hence bit-identity -- is destroyed)."""
        np = require_numpy()
        big = 2**64 - 1
        hashes = counter_hash_array(
            np, np.uint64(big), [np.array([big], dtype=np.uint64)]
        )
        assert hashes.dtype == np.uint64
        assert int(hashes[0]) == counter_hash(big, big)
