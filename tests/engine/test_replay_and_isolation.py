"""Replay guarantees of the unified engine core.

Two properties the refactor must preserve (and the engine now enforces by
construction):

* *byte-identical replay*: the same seed yields byte-identical traces, for
  both simulators built on the engine;
* *sub-stream isolation*: randomness is drawn from named engine sub-streams,
  so changing the channel-noise model does not perturb step or fault timing
  (and vice versa).
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.algorithms import OneThirdRule
from repro.des import ChannelConfig, DESProcess, EventSimulator
from repro.predimpl import build_down_stack
from repro.sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)
from repro.sysmodel.trace import SystemRunTrace


# --------------------------------------------------------------------------- #
# helpers: canonical byte serialisations of both trace kinds
# --------------------------------------------------------------------------- #


def system_trace_bytes(trace: SystemRunTrace) -> bytes:
    """A canonical byte serialisation of a step-level run trace."""
    payload = {
        "n": trace.n,
        "ho": {
            f"{p}:{r}": sorted(trace.ho_collection.ho(p, r))
            for p in range(trace.n)
            for r in range(1, trace.max_round() + 1)
            if trace.ho_collection.has_record(p, r)
        },
        "transition_times": {
            f"{p}:{r}": t for (p, r), t in sorted(trace.transition_times.items())
        },
        "decisions": {
            str(p): [record.value, record.round, record.time]
            for p, record in sorted(trace.decisions.items())
        },
        "counters": [
            trace.messages_sent,
            trace.messages_dropped,
            trace.total_send_steps,
            trace.total_receive_steps,
            trace.crashes,
            trace.recoveries,
        ],
    }
    return json.dumps(payload, sort_keys=True).encode()


class RecordingProcess(DESProcess):
    """DES process logging everything it observes (for trace comparison)."""

    def __init__(self, process_id, n):
        super().__init__(process_id, n)
        self.log = []

    def on_start(self, ctx):
        self.log.append(("start", ctx.now))
        ctx.broadcast(("ping", self.process_id), include_self=False)
        ctx.set_timer(4.0, "tick")

    def on_message(self, ctx, sender, payload):
        self.log.append(("recv", sender, payload, ctx.now))
        if payload[0] == "ping":
            ctx.send(sender, ("pong", self.process_id))

    def on_timer(self, ctx, name):
        self.log.append(("timer", name, ctx.now))
        ctx.broadcast(("ping", self.process_id), include_self=False)
        if ctx.now < 40.0:
            ctx.set_timer(4.0, name)

    def on_recover(self, ctx):
        self.log.append(("recover", ctx.now))


def des_trace_bytes(simulator: EventSimulator, processes) -> bytes:
    payload = {
        "logs": [process.log for process in processes],
        "counters": [
            simulator.messages_sent,
            simulator.messages_delivered,
            simulator.messages_lost,
            simulator.crash_count,
        ],
        "decisions": {
            str(p): [event.value, event.time]
            for p, event in sorted(simulator.decisions.items())
        },
    }
    return json.dumps(payload, sort_keys=True).encode()


def run_des(seed: int, channel: Optional[ChannelConfig] = None):
    processes = [RecordingProcess(p, 3) for p in range(3)]
    simulator = EventSimulator(
        processes,
        channel=channel if channel is not None else ChannelConfig(loss_probability=0.2),
        crash_times={2: 10.0},
        recovery_times={2: 25.0},
        seed=seed,
    )
    simulator.run(until=60.0)
    return simulator, processes


def run_system(seed: int, bad_network: Optional[BadPeriodNetwork] = None):
    n = 4
    params = SynchronyParams(phi=1.0, delta=2.0)
    stack = build_down_stack(OneThirdRule(n), [10, 20, 30, 40], params)
    schedule = PeriodSchedule.single_good_period(
        n, start=60.0, length=200.0, kind=GoodPeriodKind.PI0_DOWN
    )
    simulator = SystemSimulator(
        stack.programs,
        params,
        schedule,
        seed=seed,
        trace=stack.trace,
        fault_schedule=FaultSchedule.crash_recovery([(1, 10.0, 30.0)]),
        bad_network=(
            bad_network
            if bad_network is not None
            else BadPeriodNetwork(loss_probability=0.5, min_delay=1.0, max_delay=30.0)
        ),
        bad_process_behavior=BadPeriodProcessBehavior(
            min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
        ),
    )
    simulator.run(until=260.0)
    return simulator, stack.trace


# --------------------------------------------------------------------------- #
# byte-identical replay
# --------------------------------------------------------------------------- #


class TestByteIdenticalReplay:
    def test_system_simulator_same_seed_same_bytes(self):
        _, trace_a = run_system(seed=11)
        _, trace_b = run_system(seed=11)
        assert system_trace_bytes(trace_a) == system_trace_bytes(trace_b)

    def test_system_simulator_different_seed_different_bytes(self):
        _, trace_a = run_system(seed=11)
        _, trace_b = run_system(seed=12)
        assert system_trace_bytes(trace_a) != system_trace_bytes(trace_b)

    def test_event_simulator_same_seed_same_bytes(self):
        sim_a, procs_a = run_des(seed=11)
        sim_b, procs_b = run_des(seed=11)
        assert des_trace_bytes(sim_a, procs_a) == des_trace_bytes(sim_b, procs_b)

    def test_event_simulator_different_seed_different_bytes(self):
        sim_a, procs_a = run_des(seed=11)
        sim_b, procs_b = run_des(seed=13)
        assert des_trace_bytes(sim_a, procs_a) != des_trace_bytes(sim_b, procs_b)


# --------------------------------------------------------------------------- #
# RNG sub-stream isolation
# --------------------------------------------------------------------------- #


class AlternatingProgram:
    """A step program with a message-independent action sequence.

    Sends and receives strictly alternate, so the times at which its steps
    run depend only on the engine's ``steps`` sub-stream and the fault
    schedule -- never on what the network delivered.  Used to observe step
    timing in isolation.
    """

    def __init__(self, process_id, n):
        from repro.sysmodel.process import StepProgram

        # Composition instead of a module-level subclass keeps this helper
        # self-contained; build the concrete subclass here.
        outer = self

        class _Program(StepProgram):
            def program(self):
                from repro.sysmodel.process import ReceiveStep, SendStep

                counter = 0
                while True:
                    counter += 1
                    result = yield SendStep(payload=(self.process_id, counter))
                    outer.step_times.append(result.time)
                    result = yield ReceiveStep()
                    outer.step_times.append(result.time)
                    if result.envelope is not None:
                        outer.received += 1

            def select_message(self, buffered):
                return buffered[0] if buffered else None

        self.step_times = []
        self.received = 0
        self.program = _Program(process_id, n)


def run_alternating(seed: int, bad_network: BadPeriodNetwork):
    n = 3
    params = SynchronyParams(phi=1.0, delta=2.0)
    holders = [AlternatingProgram(p, n) for p in range(n)]
    schedule = PeriodSchedule(n=n, good_periods=[])  # one endless bad period
    simulator = SystemSimulator(
        [holder.program for holder in holders],
        params,
        schedule,
        seed=seed,
        fault_schedule=FaultSchedule.crash_recovery([(1, 15.0, 35.0)]),
        bad_network=bad_network,
        bad_process_behavior=BadPeriodProcessBehavior(
            min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
        ),
    )
    trace = simulator.run(until=120.0)
    return simulator, trace, holders


class TestSubStreamIsolation:
    def test_channel_noise_does_not_perturb_step_and_fault_timing(self):
        """Changing the bad-period network leaves process step times untouched.

        Step gaps come from the engine's ``steps`` sub-stream, link delay and
        loss from ``network``: making the network ten times noisier must not
        move a single step (or fault application) in time.
        """
        quiet = BadPeriodNetwork(loss_probability=0.0, min_delay=1.0, max_delay=2.0)
        noisy = BadPeriodNetwork(loss_probability=0.9, min_delay=5.0, max_delay=60.0)
        _, trace_quiet, holders_quiet = run_alternating(seed=7, bad_network=quiet)
        _, trace_noisy, holders_noisy = run_alternating(seed=7, bad_network=noisy)
        # The runs genuinely differ (different message fates)...
        assert trace_quiet.messages_dropped != trace_noisy.messages_dropped
        assert [h.received for h in holders_quiet] != [h.received for h in holders_noisy]
        # ...but fault accounting and step timing are identical.
        assert trace_quiet.crashes == trace_noisy.crashes
        assert trace_quiet.recoveries == trace_noisy.recoveries
        assert [h.step_times for h in holders_quiet] == [
            h.step_times for h in holders_noisy
        ]

    def test_des_loss_stream_isolated_from_delay_stream(self):
        """Changing the delay range must not change which messages get lost."""
        fast, _ = run_des(seed=9, channel=ChannelConfig(0.5, 2.0, loss_probability=0.2))
        slow, _ = run_des(seed=9, channel=ChannelConfig(0.5, 1.0, loss_probability=0.2))
        assert fast.messages_lost == slow.messages_lost
