"""Batched predicate monitors == scalar streaming monitors, replica by replica.

The scalar monitors are themselves property-pinned against the
whole-collection checkers, so agreeing with them transitively pins the
batched kernels to Table 1 / Section 4.2.
"""

from __future__ import annotations

import random

import pytest

from repro._optional import have_numpy
from repro.predicates import MONITOR_NAMES, MonitorBank, build_monitor

pytestmark = pytest.mark.skipif(not have_numpy(), reason="numpy not available")


def random_mask_rounds(n, rounds, seed, shape_bias):
    """A replica's mask stream mixing uniform, kernel-ish and noisy rounds."""
    rng = random.Random(seed)
    full = (1 << n) - 1
    out = []
    for _ in range(rounds):
        style = rng.random()
        if style < shape_bias:
            out.append([full] * n)                      # space-uniform full round
        elif style < 2 * shape_bias:
            core = full & ~(1 << rng.randrange(n))
            out.append([core | (1 << p) for p in range(n)])  # kernel-ish round
        else:
            out.append([rng.randrange(1 << n) | (1 << p) for p in range(n)])
    return out


def scalar_reports(n, streams, pi0):
    reports = []
    for masks_per_round in streams:
        bank = MonitorBank(n, [build_monitor(name, n, pi0=pi0) for name in MONITOR_NAMES])
        for round, masks in enumerate(masks_per_round, start=1):
            bank.observe_round(round, masks)
        reports.append({name: r.to_json_dict() for name, r in bank.reports().items()})
    return reports


def batched_reports(n, streams, pi0):
    import numpy as np

    from repro.batch.arrays import popcount_words, unpack_words, words_array_from_masks
    from repro.predicates.batch import BatchMonitorBank
    from repro.rounds.bitmask import mask_of

    replicas = len(streams)
    bank = BatchMonitorBank(
        n, replicas, MONITOR_NAMES, pi0_mask=None if pi0 is None else mask_of(pi0)
    )
    rounds = len(streams[0])
    active = np.ones(replicas, dtype=bool)
    for round in range(1, rounds + 1):
        words = np.stack(
            [words_array_from_masks(stream[round - 1], n) for stream in streams]
        )
        heard = unpack_words(words, n)
        bank.observe_round(round, words, heard, popcount_words(words), active)
    return [bank.reports_json_of(r) for r in range(replicas)]


class TestBatchedMonitorEquivalence:
    @pytest.mark.parametrize("n", [3, 5, 8])
    @pytest.mark.parametrize("shape_bias", [0.15, 0.4])
    def test_all_six_monitors_match_per_replica(self, n, shape_bias):
        streams = [random_mask_rounds(n, 25, seed, shape_bias) for seed in range(6)]
        pi0 = frozenset(range(n))
        assert batched_reports(n, streams, pi0) == scalar_reports(n, streams, pi0)

    def test_restricted_pi0_scope(self):
        n = 6
        streams = [random_mask_rounds(n, 20, 50 + seed, 0.3) for seed in range(4)]
        pi0 = frozenset({0, 1, 2, 4})
        assert batched_reports(n, streams, pi0) == scalar_reports(n, streams, pi0)

    def test_word_boundary_system_size(self):
        n = 65
        rng = random.Random(1)
        full = (1 << n) - 1
        streams = [
            [
                [full] * n if r % 4 == 0 else
                [rng.getrandbits(n) | (1 << p) for p in range(n)]
                for r in range(12)
            ]
            for _ in range(3)
        ]
        pi0 = frozenset(range(n))
        assert batched_reports(n, streams, pi0) == scalar_reports(n, streams, pi0)

    def test_inactive_replicas_freeze(self):
        import numpy as np

        from repro.batch.arrays import popcount_words, unpack_words, words_array_from_masks
        from repro.predicates.batch import BatchMonitorBank

        n = 4
        streams = [random_mask_rounds(n, 10, seed, 0.3) for seed in range(3)]
        bank = BatchMonitorBank(n, 3, MONITOR_NAMES)
        for round in range(1, 11):
            # replica 1 stops after round 4
            active = np.array([True, round <= 4, True])
            words = np.stack(
                [words_array_from_masks(stream[round - 1], n) for stream in streams]
            )
            bank.observe_round(
                round, words, unpack_words(words, n), popcount_words(words), active
            )
        # replica 1 must equal a scalar bank fed only the first 4 rounds
        expected = scalar_reports(n, [streams[1][:4]], frozenset(range(n)))[0]
        assert bank.reports_json_of(1) == expected
        full_expected = scalar_reports(n, [streams[0]], frozenset(range(n)))[0]
        assert bank.reports_json_of(0) == full_expected

    def test_stop_after_held_matches_scalar_policy(self):
        import numpy as np

        from repro.batch.arrays import popcount_words, unpack_words, words_array_from_masks
        from repro.predicates.batch import BatchMonitorBank
        from repro.predicates import StopAfterHeld, build_monitor_bank

        n = 4
        streams = [random_mask_rounds(n, 15, 70 + seed, 0.5) for seed in range(5)]
        batch_bank = BatchMonitorBank(n, 5, ("p_k",), stop_after_held=3)
        scalar_banks = [
            build_monitor_bank(n, ("p_k",), stop_after_held=3) for _ in streams
        ]
        assert isinstance(scalar_banks[0].stop_policies[0], StopAfterHeld)
        active = np.ones(5, dtype=bool)
        stops = [None] * 5
        for round in range(1, 16):
            words = np.stack(
                [words_array_from_masks(stream[round - 1], n) for stream in streams]
            )
            batch_bank.observe_round(
                round, words, unpack_words(words, n), popcount_words(words), active
            )
            for r, bank in enumerate(scalar_banks):
                if stops[r] is None:
                    bank.observe_round(round, streams[r][round - 1])
                    if bank.stop_requested:
                        stops[r] = round
            active &= ~batch_bank.stop_array
        batch_stops = [
            None if not batch_bank.stop_array[r] else int(
                batch_bank.monitors[0].rounds_observed[r]
            )
            for r in range(5)
        ]
        assert batch_stops == stops
