"""Property tests: every streaming monitor equals its whole-collection checker.

The acceptance bar of the predicate subsystem: for each predicate of
Table 1 and Section 4.2 (``P_otr``, ``P_restr_otr``, ``P_su``, ``P_k``,
``P_2otr``, ``P_1/1otr``), replaying a heard-of collection through the
streaming monitor round by round must reach exactly the verdict the
whole-collection checker computes on the full collection -- on arbitrary
hypothesis-generated collections, and on collections recorded from the
seeded adversary zoo driving real engine runs.
"""

from __future__ import annotations

from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversaries import (
    BurstyLossOracle,
    GoodPeriodOracle,
    MobileOmissionOracle,
    RandomOmissionOracle,
    RotatingPartitionOracle,
)
from repro.algorithms import OneThirdRule
from repro.core.machine import HOMachine
from repro.core.types import HOCollection
from repro.predicates import (
    MONITOR_NAMES,
    MonitorBank,
    P2Otr,
    P11Otr,
    POtr,
    PRestrOtr,
    build_monitor,
    monitor_collection,
    pk_holds,
    psu_holds,
)

N = 5


def collections(n: int = N, max_rounds: int = 6):
    """Strategy: arbitrary heard-of collections for *n* processes.

    Biased towards space-uniform rounds so the existential predicates
    actually find witnesses in a useful fraction of examples.
    """
    subset = st.frozensets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    uniform_row = subset.map(lambda ho: [ho] * n)
    arbitrary_row = st.lists(subset, min_size=n, max_size=n)
    schedule = st.lists(
        st.one_of(arbitrary_row, uniform_row), min_size=1, max_size=max_rounds
    )

    def build(rows: List[List[frozenset]]) -> HOCollection:
        collection = HOCollection(n)
        for round_index, row in enumerate(rows):
            for process, ho in enumerate(row):
                collection.record(process, round_index + 1, ho)
        return collection

    return schedule.map(build)


def checker_verdicts(collection: HOCollection, pi0: frozenset) -> dict:
    """The whole-collection verdicts for all six predicates."""
    return {
        "p_otr": POtr().holds(collection),
        "p_restr_otr": PRestrOtr().holds(collection),
        "p_su": psu_holds(collection, pi0, 1, collection.max_round),
        "p_k": pk_holds(collection, pi0, 1, collection.max_round),
        "p_2otr": P2Otr(pi0).holds(collection),
        "p_1/1otr": P11Otr(pi0).holds(collection),
    }


def monitor_verdicts(collection: HOCollection, pi0: frozenset) -> dict:
    reports = monitor_collection(
        collection, [build_monitor(name, collection.n, pi0=pi0) for name in MONITOR_NAMES]
    )
    return {name: reports[name].holds for name in MONITOR_NAMES}


@settings(max_examples=300, deadline=None)
@given(collection=collections(), data=st.data())
def test_all_six_monitors_match_their_checkers(collection, data):
    pi0 = data.draw(
        st.frozensets(st.integers(min_value=0, max_value=N - 1), max_size=N)
    )
    assert monitor_verdicts(collection, pi0) == checker_verdicts(collection, pi0)


@settings(max_examples=200, deadline=None)
@given(collection=collections(), data=st.data())
def test_windowed_su_and_kernel_monitors_match_the_window_functions(collection, data):
    pi0 = data.draw(
        st.frozensets(st.integers(min_value=0, max_value=N - 1), max_size=N)
    )
    first = data.draw(st.integers(min_value=1, max_value=collection.max_round + 2))
    last = data.draw(st.integers(min_value=first, max_value=first + 4))
    monitors = [
        build_monitor("p_su", N, pi0=pi0, first_round=first, last_round=last),
        build_monitor("p_k", N, pi0=pi0, first_round=first, last_round=last),
    ]
    reports = monitor_collection(collection, monitors)
    assert reports["p_su"].holds == psu_holds(collection, pi0, first, last)
    assert reports["p_k"].holds == pk_holds(collection, pi0, first, last)


@settings(max_examples=150, deadline=None)
@given(collection=collections(max_rounds=8))
def test_prefix_verdicts_track_the_checker_on_every_prefix(collection):
    """The monitor's first_hold_round is the first prefix the checker accepts."""
    monitors = [build_monitor(name, N) for name in ("p_otr", "p_restr_otr")]
    bank = MonitorBank(N, monitors)
    first_holds = {m.name: None for m in monitors}
    prefix = HOCollection(N)
    for round in collection.rounds():
        masks = [collection.ho_mask(p, round) for p in range(N)]
        for p in range(N):
            prefix.record_mask(p, round, masks[p])
        bank.observe_round(round, masks)
        for monitor, checker in ((monitors[0], POtr()), (monitors[1], PRestrOtr())):
            assert monitor.verdict == checker.holds(prefix), (
                f"{monitor.name} diverged on the prefix ending at round {round}"
            )
            if first_holds[monitor.name] is None and monitor.verdict:
                first_holds[monitor.name] = round
    for monitor in monitors:
        assert monitor.report().first_hold_round == first_holds[monitor.name]


def seeded_oracles(n: int, seed: int):
    """A representative slice of the adversary zoo, all healing eventually."""
    return [
        RandomOmissionOracle(n, 0.35, seed=seed),
        RotatingPartitionOracle(n, blocks=2, period=3, churn=0.4, seed=seed, heal_from=15),
        MobileOmissionOracle(n, faults=2, seed=seed, stable_from=12),
        BurstyLossOracle(n, p_burst=0.3, p_recover=0.3, seed=seed, stable_from=14),
        GoodPeriodOracle(n, pi0=range(n - 1), good_from=8, good_to=18, seed=seed),
    ]


@pytest.mark.parametrize("seed", range(8))
def test_monitors_match_checkers_on_engine_runs_under_seeded_adversaries(seed):
    """Equivalence on real runs: the bank observes the engine's record stream
    while the trace records the collection; both must agree for all six
    predicates and every adversary family tried."""
    n = 5
    pi0 = frozenset(range(n - 1))
    for oracle in seeded_oracles(n, seed):
        bank = MonitorBank(
            n, [build_monitor(name, n, pi0=pi0) for name in MONITOR_NAMES]
        )
        machine = HOMachine(
            OneThirdRule(n), oracle, [10 * (p + 1) for p in range(n)], observers=[bank]
        )
        machine.run(25)
        collection = machine.trace.ho_collection
        streamed = {name: report.holds for name, report in bank.reports().items()}
        assert streamed == checker_verdicts(collection, pi0), (
            f"divergence under {type(oracle).__name__} with seed {seed}"
        )
