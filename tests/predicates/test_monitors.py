"""Unit tests for the streaming predicate monitors, collator, bank and policies."""

from __future__ import annotations

import json

import pytest

from repro.core.types import HOCollection
from repro.predicates import (
    MONITOR_NAMES,
    MonitorBank,
    P2OtrMonitor,
    P11OtrMonitor,
    PKernelMonitor,
    POtrMonitor,
    PredicateReport,
    PRestrOtrMonitor,
    PSuMonitor,
    RoundCollator,
    StopAfterHeld,
    StopOnViolationAfterDecision,
    build_monitor,
    canonical_predicate_name,
    monitor_collection,
)
from repro.rounds.record import RoundRecord


def full(n):
    return (1 << n) - 1


class TestMonitorBasics:
    def test_rounds_must_arrive_consecutively(self):
        monitor = POtrMonitor(3)
        monitor.observe(1, [0b111] * 3)
        with pytest.raises(ValueError, match="expects round 2"):
            monitor.observe(3, [0b111] * 3)

    def test_potr_needs_a_uniform_quorum_round_then_big_rounds(self):
        n = 3
        monitor = POtrMonitor(n)
        monitor.observe(1, [0b011, 0b110, 0b101])  # not uniform
        assert not monitor.verdict
        monitor.observe(2, [0b111] * n)  # uniform quorum round (the witness)
        assert not monitor.verdict  # second clause needs *later* rounds
        monitor.observe(3, [0b111, 0b111, 0b011])
        assert not monitor.verdict  # |{0,1}| = 2 < threshold 3 for process 2
        monitor.observe(4, [0b001, 0b111, 0b111])
        assert monitor.verdict
        report = monitor.report()
        assert report.first_hold_round == 4
        assert report.first_good_round == 2

    def test_prestr_otr_candidate_scope_is_pi0_only(self):
        # Pi0 = {0,1,2} space-uniform at round 1; process 3 hears nothing.
        n = 4
        pi0 = 0b0111
        monitor = PRestrOtrMonitor(n)
        monitor.observe(1, [pi0, pi0, pi0, 0])
        assert not monitor.verdict
        # Later kernel rounds for Pi0 members complete the witness.
        monitor.observe(2, [pi0, 0, 0, 0])
        monitor.observe(3, [0, full(n), pi0, 0])
        assert monitor.verdict
        assert monitor.report().first_hold_round == 3

    def test_psu_windowed_counts_unobserved_rounds_as_empty(self):
        n = 3
        monitor = PSuMonitor(n, pi0={0, 1, 2}, first_round=1, last_round=5)
        for round in (1, 2, 3):
            monitor.observe(round, [full(n)] * n)
        assert not monitor.verdict  # rounds 4..5 missing = empty HO sets

    def test_psu_empty_pi0_is_vacuously_true(self):
        monitor = PSuMonitor(3, pi0=(), first_round=1, last_round=9)
        monitor.observe(1, [0b001, 0b010, 0b100])
        assert monitor.verdict

    def test_pk_accepts_supersets_where_psu_requires_equality(self):
        n = 3
        pi0 = {0, 1}
        su = PSuMonitor(n, pi0)
        pk = PKernelMonitor(n, pi0)
        masks = [full(n), full(n), 0]  # HO = Pi > Pi0
        su.observe(1, masks)
        pk.observe(1, masks)
        assert not su.verdict
        assert pk.verdict

    def test_p2otr_needs_adjacent_su_then_kernel(self):
        n = 3
        pi0 = {0, 1, 2}
        monitor = P2OtrMonitor(n, pi0)
        monitor.observe(1, [full(n)] * n)  # space uniform
        monitor.observe(2, [0, 0, 0])      # violation in between
        monitor.observe(3, [full(n)] * n)  # space uniform again
        monitor.observe(4, [full(n)] * n)  # kernel round right after
        assert monitor.verdict
        assert monitor.report().first_hold_round == 4

    def test_p11otr_allows_a_gap_between_su_and_kernel(self):
        n = 3
        pi0 = {0, 1, 2}
        p2 = P2OtrMonitor(n, pi0)
        p11 = P11OtrMonitor(n, pi0)
        rounds = [[full(n)] * n, [0, 0, 0], [full(n)] * n]
        for round, masks in enumerate(rounds, start=1):
            p2.observe(round, masks)
            p11.observe(round, masks)
        assert not p2.verdict  # su at 1 and 3, never adjacent su->kernel
        assert p11.verdict    # kernel round 3 follows su round 1

    def test_report_round_trips_through_json(self):
        monitor = PSuMonitor(3, {0, 1, 2})
        monitor.observe(1, [full(3)] * 3)
        monitor.observe(2, [0, 0, 0])
        report = monitor.report()
        clone = PredicateReport.from_json_dict(json.loads(json.dumps(report.to_json_dict())))
        assert clone == report
        assert clone.satisfaction == 0.5


class TestRunLengths:
    def test_good_and_bad_runs_are_tracked(self):
        n = 2
        monitor = PSuMonitor(n, {0, 1})
        pattern = [1, 1, 0, 1, 1, 1, 0, 0]  # 1 = space-uniform round
        for round, bit in enumerate(pattern, start=1):
            masks = [full(n)] * n if bit else [0, 0]
            monitor.observe(round, masks)
        report = monitor.report()
        assert report.good_rounds == 5
        assert report.first_good_round == 1
        assert report.longest_good_run == 3
        assert report.longest_bad_run == 2
        assert report.satisfaction == 5 / 8


class TestRoundCollator:
    def test_lockstep_rounds_complete_as_the_last_record_arrives(self):
        collator = RoundCollator(2)
        assert collator.add(0, 1, 0b01) == []
        assert collator.add(1, 1, 0b11) == [(1, [0b01, 0b11])]

    def test_out_of_order_processes_and_skipped_rounds(self):
        collator = RoundCollator(2, window=2)
        collator.add(0, 1, 0b11)
        # process 1 lags; nothing flushed yet (round 1 incomplete, in window)
        assert collator.add(0, 2, 0b01) == []
        # round 3 pushes round 1 out of the 2-round window; the lagging
        # process counts as having heard nobody there
        assert collator.add(0, 3, 0b01) == [(1, [0b11, 0])]
        assert collator.add(0, 4, 0b01) == [(2, [0b01, 0])]
        # a late record for an already-flushed round is counted, not applied
        collator.add(1, 1, 0b11)
        assert collator.late_records == 1
        assert [round for round, _ in collator.drain()] == [3, 4]

    def test_completion_mask_completes_rounds_without_dead_processes(self):
        # process 1 is crashed forever: with completion_mask = {0}, rounds
        # complete as soon as process 0 reports, with the dead process
        # counting as silent -- no window wait, live stop policies work.
        collator = RoundCollator(2, completion_mask=0b01)
        assert collator.add(0, 1, 0b01) == [(1, [0b01, 0])]
        # a report from outside the completing scope still contributes when
        # it arrives before the scope completes the round
        collator.add(1, 2, 0b11)
        assert collator.add(0, 2, 0b01) == [(2, [0b01, 0b11])]

    def test_gap_rounds_are_emitted_as_empty(self):
        collator = RoundCollator(1, window=1)
        collator.add(0, 1, 0b1)  # n=1: round 1 completes instantly
        out = collator.add(0, 4, 0b1)
        # rounds 2..3 never saw a record; round 4 completes with all of n=1
        assert out[0] == (2, [0]) and out[1] == (3, [0]) and out[2] == (4, [0b1])


class TestStopPolicies:
    def test_stop_after_held(self):
        n = 2
        bank = MonitorBank(
            n, [PSuMonitor(n, {0, 1})], stop_policies=[StopAfterHeld(3, predicate="p_su")]
        )
        for round in (1, 2):
            bank.observe_round(round, [full(n)] * n)
            assert not bank.stop_requested
        bank.observe_round(3, [full(n)] * n)
        assert bank.stop_requested

    def test_stop_on_violation_after_decision(self):
        n = 2
        bank = MonitorBank(
            n, [PSuMonitor(n, {0, 1})], stop_policies=[StopOnViolationAfterDecision()]
        )
        bank.on_record(RoundRecord(process=0, round=1, ho_mask=full(n)))
        bank.on_record(RoundRecord(process=1, round=1, ho_mask=full(n)))
        assert not bank.stop_requested  # no decision yet
        bank.on_record(RoundRecord(process=0, round=2, ho_mask=0, decision=7))
        bank.on_record(RoundRecord(process=1, round=2, ho_mask=0))
        assert bank.stop_requested  # decided, then a violated round

    def test_stop_after_held_validates_rounds(self):
        with pytest.raises(ValueError):
            StopAfterHeld(0)


class TestBank:
    def test_bank_feeds_from_records_and_finalizes_pending_rounds(self):
        n = 2
        bank = MonitorBank(n, [PKernelMonitor(n, {0})])
        bank.on_record(RoundRecord(process=0, round=1, ho_mask=0b11))
        bank.on_record(RoundRecord(process=1, round=1, ho_mask=0b10))
        bank.on_record(RoundRecord(process=0, round=2, ho_mask=0b01))
        # round 2 is incomplete; reports() drains it
        reports = bank.reports()
        assert reports["p_k"].rounds_observed == 2
        assert reports["p_k"].good_rounds == 2

    def test_reports_json_matches_reports(self):
        n = 2
        bank = MonitorBank(n, [PSuMonitor(n)])
        bank.observe_round(1, [full(n)] * n)
        assert bank.reports_json()["p_su"] == bank.reports()["p_su"].to_json_dict()


class TestFactory:
    def test_every_canonical_name_builds(self):
        for name in MONITOR_NAMES:
            monitor = build_monitor(name, 4)
            assert monitor.name == name

    def test_aliases_and_case(self):
        assert canonical_predicate_name("P_OTR") == "p_otr"
        assert canonical_predicate_name("p-restr-otr") == "p_restr_otr"
        assert canonical_predicate_name("p_11otr") == "p_1/1otr"

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(ValueError, match="p_otr"):
            build_monitor("p_bogus", 4)

    def test_pi0_ids_are_validated(self):
        with pytest.raises(ValueError, match="outside"):
            build_monitor("p_su", 3, pi0={0, 7})


class TestMonitorCollection:
    def test_replaying_a_collection_observes_every_round(self):
        collection = HOCollection(3)
        for round in (1, 2, 3):
            for p in range(3):
                collection.record_mask(p, round, 0b111)
        reports = monitor_collection(collection, [build_monitor("p_su", 3)])
        assert reports["p_su"].rounds_observed == 3
        assert reports["p_su"].holds
