"""Unit tests for the basic HO-model types."""

from __future__ import annotations

import pytest

from repro.core.types import (
    HOCollection,
    RunTrace,
    all_processes,
    validate_process_subset,
)


class TestAllProcesses:
    def test_full_set(self):
        assert all_processes(4) == frozenset({0, 1, 2, 3})

    def test_single_process(self):
        assert all_processes(1) == frozenset({0})

    @pytest.mark.parametrize("n", [0, -1, -10])
    def test_rejects_non_positive_sizes(self, n):
        with pytest.raises(ValueError):
            all_processes(n)


class TestValidateProcessSubset:
    def test_accepts_valid_subset(self):
        assert validate_process_subset([0, 2], 4) == frozenset({0, 2})

    def test_accepts_empty_subset(self):
        assert validate_process_subset([], 4) == frozenset()

    def test_rejects_out_of_range_processes(self):
        with pytest.raises(ValueError, match="outside"):
            validate_process_subset([0, 4], 4)

    def test_rejects_negative_processes(self):
        with pytest.raises(ValueError):
            validate_process_subset([-1], 4)


class TestHOCollection:
    def test_unrecorded_ho_set_is_empty(self):
        collection = HOCollection(3)
        assert collection.ho(0, 1) == frozenset()
        assert not collection.has_record(0, 1)

    def test_record_and_query(self):
        collection = HOCollection(3)
        collection.record(0, 1, [0, 1])
        assert collection.ho(0, 1) == frozenset({0, 1})
        assert collection.has_record(0, 1)
        assert collection.max_round == 1

    def test_record_overwrites(self):
        collection = HOCollection(3)
        collection.record(0, 1, [0])
        collection.record(0, 1, [0, 1, 2])
        assert collection.ho(0, 1) == frozenset({0, 1, 2})

    def test_max_round_tracks_largest_round(self):
        collection = HOCollection(3)
        collection.record(1, 5, [0])
        collection.record(2, 3, [0])
        assert collection.max_round == 5
        assert list(collection.rounds()) == [1, 2, 3, 4, 5]

    def test_rejects_bad_round_numbers(self):
        collection = HOCollection(3)
        with pytest.raises(ValueError):
            collection.record(0, 0, [0])

    def test_rejects_unknown_processes(self):
        collection = HOCollection(3)
        with pytest.raises(ValueError):
            collection.record(3, 1, [0])
        with pytest.raises(ValueError):
            collection.record(0, 1, [7])

    def test_kernel_is_intersection(self):
        collection = HOCollection(3)
        collection.record(0, 1, [0, 1, 2])
        collection.record(1, 1, [0, 1])
        collection.record(2, 1, [1, 2])
        assert collection.kernel(1) == frozenset({1})

    def test_kernel_with_scope(self):
        collection = HOCollection(3)
        collection.record(0, 1, [0, 1, 2])
        collection.record(1, 1, [0, 1])
        collection.record(2, 1, [2])
        assert collection.kernel(1, scope=[0, 1]) == frozenset({0, 1})

    def test_space_uniformity(self):
        collection = HOCollection(3)
        for p in range(3):
            collection.record(p, 1, [0, 1])
        assert collection.is_space_uniform(1)
        collection.record(2, 2, [2])
        collection.record(0, 2, [0, 1])
        collection.record(1, 2, [0, 1])
        assert not collection.is_space_uniform(2)
        assert collection.is_space_uniform(2, scope=[0, 1])

    def test_restrict_projects_onto_scope(self):
        collection = HOCollection(4)
        collection.record(0, 1, [0, 1, 3])
        collection.record(1, 1, [0, 1, 2])
        restricted = collection.restrict([0, 1])
        assert restricted.ho(0, 1) == frozenset({0, 1})
        assert restricted.ho(1, 1) == frozenset({0, 1})
        # Processes outside the scope are not carried over.
        assert not restricted.has_record(2, 1)

    def test_equality(self):
        a = HOCollection(2)
        b = HOCollection(2)
        a.record(0, 1, [0])
        b.record(0, 1, [0])
        assert a == b
        b.record(1, 1, [0, 1])
        assert a != b


class TestRunTrace:
    def test_decisions_and_rounds(self):
        from repro.core.types import ProcessRoundRecord

        trace = RunTrace(n=2, ho_collection=HOCollection(2))
        trace.records.append(ProcessRoundRecord(0, 1, frozenset({0, 1}), "s", None))
        trace.records.append(ProcessRoundRecord(0, 2, frozenset({0, 1}), "s", 42))
        trace.records.append(ProcessRoundRecord(1, 2, frozenset({0, 1}), "s", 42))
        assert trace.decisions() == {0: 42, 1: 42}
        assert trace.decision_rounds() == {0: 2, 1: 2}
        assert trace.all_decided()
        assert trace.all_decided(scope=[0])

    def test_all_decided_false_when_someone_missing(self):
        from repro.core.types import ProcessRoundRecord

        trace = RunTrace(n=2, ho_collection=HOCollection(2))
        trace.records.append(ProcessRoundRecord(0, 1, frozenset(), "s", 1))
        assert not trace.all_decided()
        assert trace.all_decided(scope=[0])

    def test_records_for_process_sorted_by_round(self):
        from repro.core.types import ProcessRoundRecord

        trace = RunTrace(n=1, ho_collection=HOCollection(1))
        trace.records.append(ProcessRoundRecord(0, 2, frozenset(), "b", None))
        trace.records.append(ProcessRoundRecord(0, 1, frozenset(), "a", None))
        rounds = [record.round for record in trace.records_for_process(0)]
        assert rounds == [1, 2]
