"""Property-based tests of the communication predicates and their relationships.

These check, on randomly generated heard-of collections, the implications
the paper states between predicates (e.g. ``P_2otr => P_restr_otr``,
``P_otr => P_restr_otr``, ``P_su => P_k``) and structural invariants of the
helper functions.
"""

from __future__ import annotations

from typing import List

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predicates import (
    P11Otr,
    P2Otr,
    PKernel,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    exists_p11otr,
    exists_p2otr,
    find_pk_window,
    find_psu_window,
    otr_threshold,
    pk_holds,
    psu_holds,
)
from repro.core.types import HOCollection


N = 5


def collections(n: int = N, max_rounds: int = 6):
    """Strategy: arbitrary heard-of collections for *n* processes."""
    subset = st.frozensets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    schedule = st.lists(
        st.lists(subset, min_size=n, max_size=n), min_size=1, max_size=max_rounds
    )

    def build(rows: List[List[frozenset]]) -> HOCollection:
        collection = HOCollection(n)
        for round_index, row in enumerate(rows):
            for process, ho in enumerate(row):
                collection.record(process, round_index + 1, ho)
        return collection

    return schedule.map(build)


def good_suffix_collections(n: int = N, max_prefix: int = 4):
    """Strategy: arbitrary prefix followed by two fault-free rounds."""
    base = collections(n, max_prefix)

    def extend(collection: HOCollection) -> HOCollection:
        full = frozenset(range(n))
        start = collection.max_round + 1
        for round in (start, start + 1):
            for process in range(n):
                collection.record(process, round, full)
        return collection

    return base.map(extend)


@settings(max_examples=200, deadline=None)
@given(collection=good_suffix_collections())
def test_potr_implies_prestrotr_on_stabilising_runs(collection):
    """On runs ending in fault-free rounds, ``P_otr`` comes with ``P_restr_otr``.

    The unrestricted implication is *not* a theorem of the finite-trace
    formulations implemented here: ``P_otr``'s second clause only bounds the
    *cardinality* of the later heard-of sets (enough for Theorem 1, since a
    Pi-wide space-uniform round makes every value common), whereas
    ``P_restr_otr``'s second clause needs the later sets to *contain* Pi0
    (Theorem 2 gets no help from processes outside Pi0).  See the pinned
    counterexample below.  On runs with a fault-free suffix -- the shape
    good periods produce -- both hold together.
    """
    if POtr().holds(collection):
        assert PRestrOtr().holds(collection)


def test_potr_without_prestrotr_counterexample():
    """Pinned counterexample: large later heard-of sets need not contain Pi0.

    Round 2 is space-uniform for all of Pi (so ``P_otr``'s first clause has
    Pi0 = Pi), and every process later hears 4 > 2n/3 processes -- but never
    a superset of Pi0, so no witness for ``P_restr_otr`` exists.
    """
    collection = HOCollection(N)
    full = frozenset(range(N))
    most = frozenset(range(N - 1))  # {0..3}: large, but never contains process 4
    for process in range(N):
        collection.record(process, 1, frozenset())
        collection.record(process, 2, full)
        collection.record(process, 3, most if process % 2 else frozenset())
        collection.record(process, 4, frozenset() if process % 2 else most)
    assert POtr().holds(collection)
    assert not PRestrOtr().holds(collection)


@settings(max_examples=200, deadline=None)
@given(collection=collections())
def test_exists_p2otr_implies_prestrotr(collection):
    if exists_p2otr(N).holds(collection):
        assert PRestrOtr().holds(collection)


@settings(max_examples=200, deadline=None)
@given(collection=collections())
def test_exists_p11otr_implies_prestrotr(collection):
    if exists_p11otr(N).holds(collection):
        assert PRestrOtr().holds(collection)


@settings(max_examples=200, deadline=None)
@given(collection=collections())
def test_p2otr_implies_p11otr(collection):
    """Two consecutive good rounds are a special case of two ordered good rounds."""
    pi0 = frozenset(range(otr_threshold(N)))
    if P2Otr(pi0).holds(collection):
        assert P11Otr(pi0).holds(collection)


@settings(max_examples=200, deadline=None)
@given(collection=collections(), data=st.data())
def test_psu_implies_pk(collection, data):
    pi0 = data.draw(
        st.frozensets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=N)
    )
    first = data.draw(st.integers(min_value=1, max_value=max(collection.max_round, 1)))
    last = data.draw(st.integers(min_value=first, max_value=max(collection.max_round, 1)))
    if psu_holds(collection, pi0, first, last):
        assert pk_holds(collection, pi0, first, last)


@settings(max_examples=200, deadline=None)
@given(collection=collections(), data=st.data())
def test_window_finders_return_satisfying_windows(collection, data):
    pi0 = data.draw(
        st.frozensets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=N)
    )
    length = data.draw(st.integers(min_value=1, max_value=3))
    psu_start = find_psu_window(collection, pi0, length)
    if psu_start is not None:
        assert psu_holds(collection, pi0, psu_start, psu_start + length - 1)
        # Minimality: no earlier window satisfies it.
        for earlier in range(1, psu_start):
            assert not psu_holds(collection, pi0, earlier, earlier + length - 1)
    pk_start = find_pk_window(collection, pi0, length)
    if pk_start is not None:
        assert pk_holds(collection, pi0, pk_start, pk_start + length - 1)


@settings(max_examples=100, deadline=None)
@given(collection=good_suffix_collections())
def test_fault_free_suffix_satisfies_the_table1_predicates(collection):
    """Two fault-free rounds at the end always yield P_otr and P_restr_otr."""
    assert POtr().holds(collection)
    assert PRestrOtr().holds(collection)
    assert exists_p2otr(N).holds(collection)


@settings(max_examples=200, deadline=None)
@given(collection=collections(), data=st.data())
def test_class_and_function_forms_agree(collection, data):
    pi0 = data.draw(
        st.frozensets(st.integers(min_value=0, max_value=N - 1), min_size=1, max_size=N)
    )
    first = data.draw(st.integers(min_value=1, max_value=max(collection.max_round, 1)))
    last = data.draw(st.integers(min_value=first, max_value=max(collection.max_round, 1)))
    assert PSpaceUniform(pi0, first, last).holds(collection) == psu_holds(
        collection, pi0, first, last
    )
    assert PKernel(pi0, first, last).holds(collection) == pk_holds(
        collection, pi0, first, last
    )


@settings(max_examples=150, deadline=None)
@given(collection=collections())
def test_restrict_preserves_pk_for_the_scope(collection):
    """Restricting a collection onto pi0 preserves kernel containment within pi0."""
    pi0 = frozenset(range(3))
    restricted = collection.restrict(pi0)
    for round in collection.rounds():
        if pk_holds(collection, pi0, round, round):
            assert pk_holds(restricted, pi0, round, round)
