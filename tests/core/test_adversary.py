"""Unit tests for the heard-of oracles (the round-level environment)."""

from __future__ import annotations

import pytest

from repro.core.adversary import (
    FaultFreeOracle,
    GoodPeriodOracle,
    KernelOnlyOracle,
    PartitionOracle,
    RandomOmissionOracle,
    ScriptedOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
)
from repro.core.types import all_processes


class TestFaultFreeOracle:
    def test_everyone_hears_everyone(self):
        oracle = FaultFreeOracle(5)
        for round in (1, 2, 10):
            for p in range(5):
                assert oracle(round, p) == all_processes(5)

    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            FaultFreeOracle(0)


class TestStaticCrashOracle:
    def test_crashed_process_disappears_from_round_on(self):
        oracle = StaticCrashOracle(4, {2: 3})
        assert 2 in oracle(2, 0)
        assert 2 not in oracle(3, 0)
        assert 2 not in oracle(10, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticCrashOracle(3, {5: 1})
        with pytest.raises(ValueError):
            StaticCrashOracle(3, {0: 0})


class TestRandomOmissionOracle:
    def test_extreme_probabilities(self):
        never = RandomOmissionOracle(4, loss_probability=0.0, seed=1)
        always = RandomOmissionOracle(4, loss_probability=1.0, seed=1)
        assert never(1, 0) == all_processes(4)
        assert always(1, 0) == frozenset({0})  # always hears itself

    def test_no_self_hearing_when_disabled(self):
        always = RandomOmissionOracle(4, loss_probability=1.0, seed=1, always_hear_self=False)
        assert always(1, 0) == frozenset()

    def test_memoisation_makes_queries_consistent(self):
        oracle = RandomOmissionOracle(6, loss_probability=0.5, seed=42)
        assert oracle(3, 2) == oracle(3, 2)

    def test_same_seed_same_run(self):
        a = RandomOmissionOracle(6, loss_probability=0.5, seed=7)
        b = RandomOmissionOracle(6, loss_probability=0.5, seed=7)
        sets_a = [a(r, p) for r in range(1, 5) for p in range(6)]
        sets_b = [b(r, p) for r in range(1, 5) for p in range(6)]
        assert sets_a == sets_b

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            RandomOmissionOracle(3, loss_probability=1.5)


class TestPartitionOracle:
    def test_processes_hear_only_their_block(self):
        oracle = PartitionOracle(5, blocks=[[0, 1, 2], [3, 4]])
        assert oracle(1, 0) == frozenset({0, 1, 2})
        assert oracle(1, 4) == frozenset({3, 4})

    def test_unlisted_processes_are_singletons(self):
        oracle = PartitionOracle(4, blocks=[[0, 1]])
        assert oracle(1, 3) == frozenset({3})

    def test_heal_round_restores_full_communication(self):
        oracle = PartitionOracle(4, blocks=[[0, 1], [2, 3]], heal_round=3)
        assert oracle(2, 0) == frozenset({0, 1})
        assert oracle(3, 0) == all_processes(4)

    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError, match="disjoint"):
            PartitionOracle(4, blocks=[[0, 1], [1, 2]])


class TestSilentAndScriptedOracles:
    def test_silent_rounds_deliver_nothing(self):
        oracle = SilentRoundsOracle(3, silent_rounds=[2, 4])
        assert oracle(1, 0) == all_processes(3)
        assert oracle(2, 0) == frozenset()
        assert oracle(4, 2) == frozenset()

    def test_scripted_oracle_uses_script_then_default(self):
        oracle = ScriptedOracle(3, {(1, 0): [0, 1]}, default=[0])
        assert oracle(1, 0) == frozenset({0, 1})
        assert oracle(1, 1) == frozenset({0})
        assert oracle(9, 2) == frozenset({0})


class TestGoodPeriodOracle:
    def test_good_rounds_are_space_uniform_for_pi0(self):
        pi0 = frozenset({0, 1, 2})
        oracle = GoodPeriodOracle(4, pi0=pi0, good_from=5, good_to=8, seed=3)
        for round in range(5, 9):
            for p in pi0:
                assert oracle(round, p) == pi0
        # Outside the good window nothing is guaranteed; outside pi0 either.
        assert oracle(5, 3) != pi0 or True

    def test_bad_rounds_are_memoised(self):
        oracle = GoodPeriodOracle(4, pi0=[0, 1, 2], good_from=10, seed=3)
        assert oracle(1, 0) == oracle(1, 0)

    def test_good_from_validation(self):
        with pytest.raises(ValueError):
            GoodPeriodOracle(4, pi0=[0, 1], good_from=0)


class TestKernelOnlyOracle:
    def test_pi0_always_contained_for_pi0_processes(self):
        pi0 = frozenset({0, 1, 2})
        oracle = KernelOnlyOracle(5, pi0=pi0, seed=11)
        for round in range(1, 10):
            for p in pi0:
                assert pi0.issubset(oracle(round, p))

    def test_not_necessarily_space_uniform(self):
        pi0 = frozenset({0, 1, 2})
        oracle = KernelOnlyOracle(5, pi0=pi0, seed=11)
        ho_sets = {
            (round, p): oracle(round, p) for round in range(1, 30) for p in pi0
        }
        # Over 30 rounds with random extras, at least one round is not uniform.
        non_uniform = any(
            len({ho_sets[(round, p)] for p in pi0}) > 1 for round in range(1, 30)
        )
        assert non_uniform
