"""Unit tests for the communication predicates (Table 1 and Section 4.2)."""

from __future__ import annotations

import pytest

from repro.core.predicates import (
    And,
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    Not,
    Or,
    P11Otr,
    P2Otr,
    PKernel,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    PerRoundCardinality,
    TruePredicate,
    UniformRoundExists,
    exists_p11otr,
    exists_p2otr,
    find_pk_window,
    find_psu_window,
    otr_threshold,
    pk_holds,
    psu_holds,
)

from tests.conftest import make_collection, uniform_round


class TestOtrThreshold:
    @pytest.mark.parametrize(
        "n, expected",
        [(3, 3), (4, 3), (5, 4), (6, 5), (7, 5), (9, 7), (10, 7)],
    )
    def test_strictly_more_than_two_thirds(self, n, expected):
        assert otr_threshold(n) == expected
        # The threshold really is the smallest integer > 2n/3.
        assert 3 * expected > 2 * n
        assert 3 * (expected - 1) <= 2 * n


class TestPsuPkHelpers:
    def test_psu_requires_exact_equality(self):
        collection = make_collection(3, [uniform_round(3, [0, 1, 2])])
        assert psu_holds(collection, [0, 1, 2], 1, 1)
        assert psu_holds(collection, [0, 1, 2], 1, 1)
        # A strict subset as pi0 fails: HO sets equal Pi, not pi0.
        assert not psu_holds(collection, [0, 1], 1, 1)

    def test_pk_requires_only_containment(self):
        collection = make_collection(3, [uniform_round(3, [0, 1, 2])])
        assert pk_holds(collection, [0, 1], 1, 1)
        assert pk_holds(collection, [0, 1, 2], 1, 1)

    def test_pk_fails_when_member_missing(self):
        collection = make_collection(
            3, [{0: [0, 1], 1: [0, 1, 2], 2: [0, 1, 2]}]
        )
        assert not pk_holds(collection, [0, 1, 2], 1, 1)
        assert pk_holds(collection, [0, 1], 1, 1)

    def test_invalid_round_ranges_do_not_hold(self):
        collection = make_collection(3, [uniform_round(3, [0, 1, 2])])
        assert not psu_holds(collection, [0, 1, 2], 0, 1)
        assert not psu_holds(collection, [0, 1, 2], 2, 1)
        assert not pk_holds(collection, [0, 1, 2], 0, 0)

    def test_find_windows(self):
        bad = {p: [p] for p in range(3)}
        good = uniform_round(3, [0, 1, 2])
        collection = make_collection(3, [bad, good, good, bad])
        assert find_psu_window(collection, [0, 1, 2], 2) == 2
        assert find_psu_window(collection, [0, 1, 2], 3) is None
        assert find_pk_window(collection, [0, 1, 2], 2) == 2
        assert find_psu_window(collection, [0, 1, 2], 1, start_round=3) == 3


class TestSimplePredicates:
    def test_true_predicate(self):
        collection = make_collection(2, [uniform_round(2, [0])])
        assert TruePredicate().holds(collection)

    def test_majority_every_round(self):
        n = 5
        majority = uniform_round(n, [0, 1, 2])
        collection = make_collection(n, [majority, majority])
        assert MajorityEveryRound(n).holds(collection)
        collection_bad = make_collection(n, [majority, uniform_round(n, [0, 1])])
        assert not MajorityEveryRound(n).holds(collection_bad)

    def test_per_round_cardinality_with_scope(self):
        collection = make_collection(3, [{0: [0, 1, 2], 1: [1], 2: [2]}])
        assert PerRoundCardinality(3, scope=[0]).holds(collection)
        assert not PerRoundCardinality(3).holds(collection)

    def test_non_empty_kernel(self):
        with_kernel = make_collection(3, [{0: [0, 1], 1: [1, 2], 2: [1]}])
        assert NonEmptyKernelEveryRound().holds(with_kernel)
        without_kernel = make_collection(3, [{0: [0], 1: [1], 2: [2]}])
        assert not NonEmptyKernelEveryRound().holds(without_kernel)

    def test_uniform_round_exists(self):
        scattered = {0: [0], 1: [1], 2: [2]}
        collection = make_collection(3, [scattered, uniform_round(3, [0, 2]), scattered])
        assert UniformRoundExists().holds(collection)
        assert not UniformRoundExists().holds(make_collection(3, [scattered]))


class TestCombinators:
    def test_and_or_not(self):
        collection = make_collection(3, [uniform_round(3, [0, 1, 2])])
        true = TruePredicate()
        false = Not(TruePredicate())
        assert And(true, true).holds(collection)
        assert not And(true, false).holds(collection)
        assert Or(false, true).holds(collection)
        assert not Or(false, false).holds(collection)
        assert Not(false).holds(collection)

    def test_operator_sugar(self):
        collection = make_collection(3, [uniform_round(3, [0, 1, 2])])
        true = TruePredicate()
        assert (true & true).holds(collection)
        assert (~(true | true)).holds(collection) is False

    def test_empty_combinators_rejected(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()


class TestPOtr:
    def test_holds_on_fault_free_run(self):
        n = 4
        collection = make_collection(n, [uniform_round(n, range(n))] * 3)
        assert POtr().holds(collection)

    def test_requires_large_uniform_round(self):
        n = 6
        # Uniform but too small (4 <= 2n/3 = 4).
        small = uniform_round(n, [0, 1, 2, 3])
        later = uniform_round(n, range(n))
        assert not POtr().holds(make_collection(n, [small]))
        # A large uniform round followed by big-enough rounds for everyone.
        big = uniform_round(n, [0, 1, 2, 3, 4])
        assert POtr().holds(make_collection(n, [big, later]))

    def test_requires_followup_rounds_for_all_processes(self):
        n = 3
        big = uniform_round(n, range(n))
        # Round 2 leaves process 2 with too small an HO set and there is no
        # later round, so the second conjunct fails.
        partial = {0: [0, 1, 2], 1: [0, 1, 2], 2: [2]}
        assert not POtr().holds(make_collection(n, [big, partial]))
        assert POtr().holds(make_collection(n, [big, partial, big]))

    def test_allows_empty_rounds_elsewhere(self):
        n = 3
        empty = {p: [] for p in range(n)}
        big = uniform_round(n, range(n))
        collection = make_collection(n, [empty, big, empty, big])
        assert POtr().holds(collection)


class TestPRestrOtr:
    def test_holds_with_restricted_scope(self):
        n = 4
        pi0 = [0, 1, 2]
        # Process 3 (outside pi0) hears random things; pi0 processes hear pi0.
        round1 = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        round2 = {0: [0, 1, 2, 3], 1: pi0, 2: pi0, 3: [3]}
        collection = make_collection(n, [round1, round2])
        predicate = PRestrOtr()
        assert predicate.holds(collection)
        r0, witness = predicate.witness(collection)
        assert r0 == 1
        assert witness == frozenset(pi0)

    def test_fails_when_pi0_too_small(self):
        n = 6
        pi0 = [0, 1, 2, 3]  # 4 <= 2n/3
        round1 = {p: pi0 for p in pi0}
        collection = make_collection(n, [round1, round1])
        assert not PRestrOtr().holds(collection)

    def test_fails_without_followup_superset_round(self):
        n = 4
        pi0 = [0, 1, 2]
        round1 = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        starved = {0: [0], 1: [1], 2: [2], 3: [3]}
        collection = make_collection(n, [round1, starved])
        assert not PRestrOtr().holds(collection)

    def test_weaker_than_potr(self):
        """P_otr implies P_restr_otr (with Pi0 = the uniform HO set)."""
        n = 4
        collection = make_collection(n, [uniform_round(n, range(n))] * 2)
        assert POtr().holds(collection)
        assert PRestrOtr().holds(collection)


class TestParametricPredicates:
    def test_space_uniform_and_kernel_classes(self):
        n = 4
        pi0 = [0, 1, 2]
        psu_round = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        pk_round = {0: [0, 1, 2, 3], 1: pi0, 2: [0, 1, 2, 3], 3: []}
        collection = make_collection(n, [psu_round, pk_round])
        assert PSpaceUniform(pi0, 1, 1).holds(collection)
        assert not PSpaceUniform(pi0, 1, 2).holds(collection)
        assert PKernel(pi0, 1, 2).holds(collection)
        assert not PKernel(pi0, 1, 3).holds(collection)

    def test_p2otr_needs_consecutive_rounds(self):
        n = 4
        pi0 = [0, 1, 2]
        psu_round = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        pk_round = {0: [0, 1, 2, 3], 1: pi0, 2: [0, 1, 2, 3], 3: []}
        bad_round = {p: [p] for p in range(n)}
        consecutive = make_collection(n, [psu_round, pk_round])
        assert P2Otr(pi0).holds(consecutive)
        assert P2Otr(pi0).witness(consecutive) == 1
        gap = make_collection(n, [psu_round, bad_round, pk_round])
        assert not P2Otr(pi0).holds(gap)
        # ... but P_1/1otr tolerates the gap.
        assert P11Otr(pi0).holds(gap)
        assert P11Otr(pi0).witness(gap) == (1, 3)

    def test_p11otr_requires_order(self):
        n = 4
        pi0 = [0, 1, 2]
        psu_round = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        pk_only = {0: [0, 1, 2, 3], 1: pi0, 2: [0, 1, 2, 3], 3: []}
        # Kernel round *before* the space-uniform round does not count.
        collection = make_collection(n, [pk_only, psu_round])
        # (psu round is also a kernel round, but there is nothing after it)
        assert not P11Otr(pi0).holds(collection)

    def test_p2otr_and_p11otr_imply_prestrotr(self):
        """The implications stated right after the predicate definitions."""
        n = 4
        pi0 = [0, 1, 2]
        psu_round = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        pk_round = {0: [0, 1, 2, 3], 1: pi0, 2: [0, 1, 2, 3], 3: []}
        collection = make_collection(n, [psu_round, pk_round])
        assert exists_p2otr(n).holds(collection)
        assert exists_p11otr(n).holds(collection)
        assert PRestrOtr().holds(collection)

    def test_exists_pi0_witness(self):
        n = 4
        pi0 = [0, 1, 2]
        psu_round = {0: pi0, 1: pi0, 2: pi0, 3: [3]}
        pk_round = {0: [0, 1, 2, 3], 1: pi0, 2: [0, 1, 2, 3], 3: []}
        collection = make_collection(n, [psu_round, pk_round])
        assert exists_p2otr(n).witness(collection) == frozenset(pi0)
        assert exists_p2otr(n).witness(make_collection(n, [psu_round])) is None
