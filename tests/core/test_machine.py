"""Unit tests for the round-level HO machine."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.core.adversary import FaultFreeOracle, ScriptedOracle, StaticCrashOracle
from repro.core.machine import HOMachine, run_ho_algorithm


class TestHOMachineBasics:
    def test_initial_values_as_sequence_and_mapping(self):
        algorithm = OneThirdRule(3)
        oracle = FaultFreeOracle(3)
        machine_seq = HOMachine(algorithm, oracle, [1, 2, 3])
        machine_map = HOMachine(algorithm, oracle, {0: 1, 1: 2, 2: 3})
        assert machine_seq.state(0).x == 1
        assert machine_map.state(2).x == 3

    def test_missing_initial_values_rejected(self):
        algorithm = OneThirdRule(3)
        with pytest.raises(ValueError, match="missing initial values"):
            HOMachine(algorithm, FaultFreeOracle(3), [1, 2])

    def test_extra_initial_values_rejected(self):
        algorithm = OneThirdRule(3)
        with pytest.raises(ValueError, match="unknown processes"):
            HOMachine(algorithm, FaultFreeOracle(3), {0: 1, 1: 2, 2: 3, 5: 9})

    def test_run_round_advances_round_counter(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [1, 2, 3])
        assert machine.current_round == 0
        assert machine.run_round() == 1
        assert machine.run_round() == 2
        assert machine.current_round == 2

    def test_negative_round_count_rejected(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [1, 2, 3])
        with pytest.raises(ValueError):
            machine.run(-1)

    def test_trace_records_ho_sets_and_messages(self):
        n = 3
        machine = HOMachine(OneThirdRule(n), FaultFreeOracle(n), [1, 2, 3])
        trace = machine.run(2)
        assert trace.ho_collection.max_round == 2
        for p in range(n):
            assert trace.ho_collection.ho(p, 1) == frozenset(range(n))
        # n^2 messages per round were "sent", all delivered in a fault-free run.
        assert trace.messages_sent == 2 * n * n
        assert trace.messages_delivered == 2 * n * n

    def test_oracle_output_clamped_to_process_set(self):
        n = 3
        oracle = ScriptedOracle(n, {}, default=range(n))

        def sloppy_oracle(round, process):
            return {0, 1, 2, 99}  # 99 does not exist

        machine = HOMachine(OneThirdRule(n), sloppy_oracle, [1, 2, 3])
        trace = machine.run(1)
        assert trace.ho_collection.ho(0, 1) == frozenset({0, 1, 2})


class TestRunUntilDecision:
    def test_stops_as_soon_as_everyone_decided(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [5, 5, 5])
        trace = machine.run_until_decision(max_rounds=50)
        # Fault-free OneThirdRule decides in the very first round.
        assert machine.current_round == 1
        assert trace.decisions() == {0: 5, 1: 5, 2: 5}

    def test_respects_max_rounds(self):
        # With every process isolated, no one can ever decide.
        oracle = ScriptedOracle(3, {}, default=[])
        machine = HOMachine(OneThirdRule(3), oracle, [1, 2, 3])
        machine.run_until_decision(max_rounds=7)
        assert machine.current_round == 7
        assert machine.decisions() == {}

    def test_scope_limits_the_wait(self):
        n = 4
        # Process 3 crashes before round 1: it still runs locally but is
        # never heard of.  The others decide; scope={0,1,2} is enough.
        oracle = StaticCrashOracle(n, {3: 1})
        machine = HOMachine(OneThirdRule(n), oracle, [2, 2, 2, 9])
        machine.run_until_decision(max_rounds=20, scope=[0, 1, 2])
        decisions = machine.decisions()
        assert set(decisions) >= {0, 1, 2}
        assert set(decisions.values()) == {2}

    def test_max_rounds_must_be_positive(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [1, 2, 3])
        with pytest.raises(ValueError):
            machine.run_until_decision(max_rounds=0)


class TestRunHelper:
    def test_run_ho_algorithm_convenience(self):
        trace = run_ho_algorithm(
            OneThirdRule(4), FaultFreeOracle(4), [4, 3, 2, 1], max_rounds=10
        )
        decisions = trace.decisions()
        assert len(decisions) == 4
        assert set(decisions.values()) == {1}
