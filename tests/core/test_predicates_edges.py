"""Edge-case coverage for predicate combinators and window finders.

n=1 systems, empty collections, zero-length windows, double negation, and
the boundary behaviour of ``find_psu_window`` / ``find_pk_window``.
"""

from __future__ import annotations

import pytest

from repro.core.predicates import (
    And,
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    Not,
    Or,
    POtr,
    PRestrOtr,
    PSpaceUniform,
    PerRoundCardinality,
    TruePredicate,
    UniformRoundExists,
    exists_p2otr,
    find_pk_window,
    find_psu_window,
    pk_holds,
    psu_holds,
)
from repro.core.types import HOCollection


def collection_of(n, rows):
    """rows: {(process, round): iterable} -> HOCollection."""
    collection = HOCollection(n)
    for (p, r), ho in rows.items():
        collection.record(p, r, ho)
    return collection


class TestEmptyCollections:
    """A fresh collection has max_round == 0: no recorded rounds at all."""

    def test_universal_predicates_hold_vacuously(self):
        empty = HOCollection(3)
        assert PerRoundCardinality(2).holds(empty)
        assert MajorityEveryRound(3).holds(empty)
        assert NonEmptyKernelEveryRound().holds(empty)

    def test_existential_predicates_fail(self):
        empty = HOCollection(3)
        assert not UniformRoundExists().holds(empty)
        assert not POtr().holds(empty)
        assert not PRestrOtr().holds(empty)
        assert not exists_p2otr(3).holds(empty)

    def test_window_finders_return_none(self):
        empty = HOCollection(3)
        assert find_psu_window(empty, [0, 1], length=1) is None
        assert find_pk_window(empty, [0, 1], length=1) is None


class TestSingleProcessSystems:
    def test_n1_fault_free_satisfies_everything(self):
        collection = collection_of(1, {(0, 1): {0}, (0, 2): {0}})
        assert psu_holds(collection, {0}, 1, 2)
        assert pk_holds(collection, {0}, 1, 2)
        assert UniformRoundExists().holds(collection)
        assert POtr().holds(collection)
        assert PRestrOtr().holds(collection)

    def test_n1_silent_round(self):
        collection = collection_of(1, {(0, 1): set()})
        assert not psu_holds(collection, {0}, 1, 1)
        assert not pk_holds(collection, {0}, 1, 1)
        # A single silent round is space uniform (all processes agree on {}).
        assert UniformRoundExists().holds(collection)
        assert not POtr().holds(collection)

    def test_empty_pi0_is_trivially_uniform(self):
        collection = collection_of(2, {(0, 1): {0}, (1, 1): {1}})
        # No process in pi0 -> the universal quantifier over pi0 is vacuous.
        assert psu_holds(collection, [], 1, 1)
        assert pk_holds(collection, [], 1, 1)


class TestZeroLengthWindows:
    def test_inverted_windows_never_hold(self):
        collection = collection_of(2, {(0, 1): {0, 1}, (1, 1): {0, 1}})
        assert not psu_holds(collection, {0, 1}, 2, 1)
        assert not pk_holds(collection, {0, 1}, 2, 1)
        assert not psu_holds(collection, {0, 1}, 0, 0)
        assert not PSpaceUniform({0, 1}, 3, 2).holds(collection)

    def test_window_finder_rejects_oversized_lengths(self):
        rows = {(p, r): {0, 1} for p in range(2) for r in (1, 2)}
        collection = collection_of(2, rows)
        assert find_psu_window(collection, {0, 1}, length=2) == 1
        assert find_psu_window(collection, {0, 1}, length=3) is None
        assert find_pk_window(collection, {0, 1}, length=3) is None

    def test_window_finder_start_round_beyond_recording(self):
        rows = {(p, r): {0, 1} for p in range(2) for r in (1, 2)}
        collection = collection_of(2, rows)
        assert find_psu_window(collection, {0, 1}, length=1, start_round=2) == 2
        assert find_psu_window(collection, {0, 1}, length=1, start_round=3) is None


class TestCombinators:
    def test_double_negation_roundtrip(self):
        uniform = collection_of(2, {(0, 1): {0, 1}, (1, 1): {0, 1}})
        split = collection_of(2, {(0, 1): {0}, (1, 1): {1}})
        for predicate in (UniformRoundExists(), POtr(), PRestrOtr(), TruePredicate()):
            for collection in (uniform, split):
                assert (~(~predicate)).holds(collection) == predicate.holds(collection)

    def test_negation_name_and_semantics(self):
        predicate = Not(TruePredicate())
        assert predicate.name == "not(true)"
        assert not predicate.holds(HOCollection(2))

    def test_and_or_with_single_operand(self):
        collection = collection_of(2, {(0, 1): {0, 1}, (1, 1): {0, 1}})
        assert And(UniformRoundExists()).holds(collection)
        assert Or(UniformRoundExists()).holds(collection)

    def test_and_or_reject_empty(self):
        with pytest.raises(ValueError):
            And()
        with pytest.raises(ValueError):
            Or()

    def test_de_morgan_on_recorded_collections(self):
        a, b = UniformRoundExists(), NonEmptyKernelEveryRound()
        uniform = collection_of(2, {(0, 1): {0, 1}, (1, 1): {0, 1}})
        split = collection_of(2, {(0, 1): {0}, (1, 1): {1}})
        for collection in (uniform, split):
            assert (~(a & b)).holds(collection) == ((~a) | (~b)).holds(collection)
            assert (~(a | b)).holds(collection) == ((~a) & (~b)).holds(collection)

    def test_pi0_validation_still_applies(self):
        collection = HOCollection(2)
        with pytest.raises(ValueError):
            psu_holds(collection, {5}, 1, 1)
        with pytest.raises(ValueError):
            pk_holds(collection, {5}, 2, 1)
