"""Unit tests for the consensus checker and the run metrics."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.analysis import (
    algorithm_complexity_summary,
    check_consensus,
    metrics_from_des,
    metrics_from_ho_trace,
    metrics_from_system_trace,
)
from repro.core.adversary import FaultFreeOracle, ScriptedOracle
from repro.core.machine import HOMachine
from repro.des import DESProcess, EventSimulator
from repro.sysmodel.trace import SystemRunTrace


class TestCheckConsensusOnHOTraces:
    def test_solved_run(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [4, 4, 2])
        trace = machine.run_until_decision(max_rounds=10)
        verdict = check_consensus(trace, [4, 4, 2])
        assert verdict.solved
        assert verdict.safe
        assert not verdict.violations

    def test_termination_failure_is_reported(self):
        oracle = ScriptedOracle(3, {}, default=[])
        machine = HOMachine(OneThirdRule(3), oracle, [1, 2, 3])
        machine.run(5)
        verdict = check_consensus(machine.trace, [1, 2, 3])
        assert verdict.safe
        assert not verdict.termination
        assert any("never decided" in violation for violation in verdict.violations)

    def test_scope_restricts_termination(self):
        oracle = ScriptedOracle(3, {}, default=[])
        machine = HOMachine(OneThirdRule(3), oracle, [1, 2, 3])
        machine.run(5)
        verdict = check_consensus(machine.trace, [1, 2, 3], scope=[])
        assert verdict.termination

    def test_integrity_violation_detected(self):
        trace = SystemRunTrace(n=2)
        trace.record_decision(0, 99, round=1, time=1.0)
        verdict = check_consensus(trace, [1, 2])
        assert not verdict.integrity
        assert not verdict.solved

    def test_agreement_violation_detected(self):
        trace = SystemRunTrace(n=2)
        trace.record_decision(0, 1, round=1, time=1.0)
        trace.record_decision(1, 2, round=1, time=1.0)
        verdict = check_consensus(trace, [1, 2])
        assert not verdict.agreement
        assert verdict.integrity

    def test_mapping_initial_values(self):
        trace = SystemRunTrace(n=2)
        trace.record_decision(0, "b", round=1, time=1.0)
        verdict = check_consensus(trace, {0: "a", 1: "b"}, scope=[0])
        assert verdict.integrity
        assert verdict.termination


class TestMetrics:
    def test_metrics_from_ho_trace(self):
        machine = HOMachine(OneThirdRule(3), FaultFreeOracle(3), [7, 7, 7])
        trace = machine.run_until_decision(max_rounds=10)
        metrics = metrics_from_ho_trace(trace)
        assert metrics.all_decided
        assert metrics.unanimous
        assert metrics.first_decision_round == 1
        assert metrics.messages_sent == 9

    def test_metrics_from_system_trace(self):
        trace = SystemRunTrace(n=2)
        trace.record_decision(0, 5, round=3, time=12.0)
        trace.record_decision(1, 5, round=4, time=15.0)
        trace.messages_sent = 42
        metrics = metrics_from_system_trace(trace)
        assert metrics.all_decided
        assert metrics.unanimous
        assert metrics.first_decision_time == 12.0
        assert metrics.last_decision_time == 15.0
        assert metrics.last_decision_round == 4
        assert metrics.messages_sent == 42

    def test_metrics_with_scope(self):
        trace = SystemRunTrace(n=3)
        trace.record_decision(0, 5, round=1, time=1.0)
        metrics = metrics_from_system_trace(trace, scope=[0, 1])
        assert metrics.decided_processes == 1
        assert metrics.scope_size == 2
        assert not metrics.all_decided

    def test_metrics_from_des(self):
        class Decider(DESProcess):
            def on_start(self, ctx):
                ctx.decide("v")

        simulator = EventSimulator([Decider(0, 2), Decider(1, 2)], seed=0)
        simulator.run(until=5.0)
        metrics = metrics_from_des(simulator)
        assert metrics.all_decided
        assert metrics.unanimous


class TestComplexitySummary:
    def test_contains_the_three_algorithms(self):
        summary = algorithm_complexity_summary()
        assert set(summary) == {"one-third-rule", "chandra-toueg", "aguilera"}

    def test_structural_gap_between_crash_stop_and_crash_recovery(self):
        """The Section 2.1 observation, as numbers."""
        summary = algorithm_complexity_summary()
        aguilera = summary["aguilera"]
        chandra_toueg = summary["chandra-toueg"]
        one_third_rule = summary["one-third-rule"]
        # The crash-recovery FD algorithm needs strictly more machinery.
        assert aguilera.state_variables > chandra_toueg.state_variables
        assert aguilera.needs_stable_storage and not chandra_toueg.needs_stable_storage
        assert aguilera.needs_retransmission_task
        assert aguilera.distinct_from_crash_stop_variant
        # The HO algorithm is the same in both fault models and needs no detector.
        assert not one_third_rule.distinct_from_crash_stop_variant
        assert not one_third_rule.needs_failure_detector
        assert one_third_rule.message_kinds < chandra_toueg.message_kinds
