"""Unit tests for the SP/ST/DP/DT fault taxonomy (Section 2.2)."""

from __future__ import annotations

import pytest

from repro.analysis.taxonomy import (
    APPLICABILITY,
    FaultClass,
    FaultConfiguration,
    classify,
    communication_predicates_applicable,
    failure_detectors_applicable,
)
from repro.sysmodel.faults import FaultSchedule


def config(n=4, schedule=None, lossy=False, omissions=()):
    return FaultConfiguration(
        n=n,
        schedule=schedule if schedule is not None else FaultSchedule.none(),
        lossy_links=lossy,
        omission_processes=frozenset(omissions),
    )


class TestClassification:
    def test_fault_free(self):
        assert classify(config()) is FaultClass.NONE

    def test_crash_stop_is_sp(self):
        schedule = FaultSchedule.crash_stop([(0, 1.0), (1, 5.0)])
        assert classify(config(schedule=schedule)) is FaultClass.SP

    def test_crash_stop_of_everyone_is_dp(self):
        schedule = FaultSchedule.crash_stop([(p, 1.0) for p in range(4)])
        assert classify(config(schedule=schedule)) is FaultClass.DP

    def test_crash_recovery_of_a_subset_is_st(self):
        schedule = FaultSchedule.crash_recovery([(0, 1.0, 5.0)])
        assert classify(config(schedule=schedule)) is FaultClass.ST

    def test_crash_recovery_of_everyone_is_dt(self):
        schedule = FaultSchedule.crash_recovery([(p, 1.0, 5.0) for p in range(4)])
        assert classify(config(schedule=schedule)) is FaultClass.DT

    def test_omissions_on_a_subset_are_st(self):
        assert classify(config(omissions=[2])) is FaultClass.ST

    def test_link_loss_is_dt(self):
        """A transmission fault can hit any process: dynamic and transient."""
        assert classify(config(lossy=True)) is FaultClass.DT

    def test_crashes_plus_link_loss_are_dt(self):
        schedule = FaultSchedule.crash_stop([(0, 1.0)])
        assert classify(config(schedule=schedule, lossy=True)) is FaultClass.DT

    def test_crashed_and_recovering_helpers(self):
        schedule = FaultSchedule.crash_recovery([(1, 1.0, 2.0)]).merged_with(
            FaultSchedule.crash_stop([(3, 4.0)])
        )
        configuration = config(schedule=schedule)
        assert configuration.crashed_processes() == frozenset({1, 3})
        assert configuration.recovering_processes() == frozenset({1})


class TestClassificationEdgeCases:
    def test_empty_crash_stop_schedule_is_fault_free(self):
        """crash_stop([]) produces no events: nothing is faulty, not SP."""
        assert classify(config(schedule=FaultSchedule.crash_stop([]))) is FaultClass.NONE

    def test_single_crash_in_a_two_process_system_is_sp(self):
        """One permanent crash out of two: a strict static subset."""
        schedule = FaultSchedule.crash_stop([(0, 1.0)])
        assert classify(config(n=2, schedule=schedule)) is FaultClass.SP

    def test_crash_of_the_only_process_is_dp(self):
        """n=1: any crashed process means every process may crash -> dynamic."""
        schedule = FaultSchedule.crash_stop([(0, 1.0)])
        assert classify(config(n=1, schedule=schedule)) is FaultClass.DP

    def test_link_loss_only_is_dt_even_without_any_process_event(self):
        """Pure transmission faults are dynamic and transient by definition."""
        assert classify(config(schedule=FaultSchedule.none(), lossy=True)) is FaultClass.DT

    def test_omissions_on_everyone_are_dt(self):
        assert classify(config(omissions=range(4))) is FaultClass.DT

    def test_recovering_subset_plus_permanent_crashes_stays_transient(self):
        """Mixed permanent + transient faults on a subset classify as ST."""
        schedule = FaultSchedule.crash_recovery([(0, 1.0, 2.0)]).merged_with(
            FaultSchedule.crash_stop([(1, 3.0)])
        )
        assert classify(config(schedule=schedule)) is FaultClass.ST

    def test_link_loss_dominates_a_static_crash_subset(self):
        """Adding lossy links to SP crashes lifts the class to DT, never ST."""
        schedule = FaultSchedule.crash_stop([(0, 1.0)])
        configuration = config(schedule=schedule, lossy=True)
        assert classify(configuration) is FaultClass.DT
        assert not failure_detectors_applicable(classify(configuration))


class TestApplicability:
    def test_failure_detectors_cover_only_sp(self):
        assert failure_detectors_applicable(FaultClass.NONE)
        assert failure_detectors_applicable(FaultClass.SP)
        assert not failure_detectors_applicable(FaultClass.ST)
        assert not failure_detectors_applicable(FaultClass.DP)
        assert not failure_detectors_applicable(FaultClass.DT)

    def test_communication_predicates_cover_every_class(self):
        for fault_class in FaultClass:
            assert communication_predicates_applicable(fault_class)

    def test_matrix_is_total(self):
        assert set(APPLICABILITY) == set(FaultClass)
