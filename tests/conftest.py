"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import pytest

from repro.core.types import HOCollection


def make_collection(n: int, rounds: Sequence[Mapping[int, Iterable[int]]]) -> HOCollection:
    """Build an :class:`HOCollection` from a list of per-round HO-set mappings.

    ``rounds[k]`` describes round ``k+1``: a mapping ``process -> HO set``.
    Processes missing from a round's mapping get the full process set.
    """
    collection = HOCollection(n)
    for index, ho_sets in enumerate(rounds):
        round_number = index + 1
        for process in range(n):
            ho = ho_sets.get(process, range(n))
            collection.record(process, round_number, ho)
    return collection


def uniform_round(n: int, ho: Iterable[int]) -> Dict[int, Iterable[int]]:
    """A per-round mapping where every process has the same HO set."""
    ho_list = list(ho)
    return {process: ho_list for process in range(n)}


@pytest.fixture
def small_n() -> int:
    """A conveniently small system size used across unit tests."""
    return 4
