"""Tests for the oracle combinator algebra."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    FaultFreeOracle,
    IntersectOracle,
    PartitionOracle,
    ScriptedOracle,
    SequenceOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
    UnionOracle,
    WindowSwitchOracle,
    ensure_oracle,
)
from repro.rounds.bitmask import mask_of


class TestIntersect:
    def test_faults_compose(self):
        n = 4
        crash = StaticCrashOracle(n, {3: 2})
        partition = PartitionOracle(n, blocks=[[0, 1], [2, 3]])
        oracle = IntersectOracle(n, crash, partition)
        # round 1: only the partition acts
        assert oracle(1, 0) == frozenset({0, 1})
        assert oracle(1, 2) == frozenset({2, 3})
        # round 2: the crash removes process 3 from block {2, 3}
        assert oracle(2, 2) == frozenset({2})

    def test_identity_under_fault_free(self):
        n = 3
        partition = PartitionOracle(n, blocks=[[0, 1]])
        oracle = IntersectOracle(n, FaultFreeOracle(n), partition)
        for p in range(n):
            assert oracle(1, p) == partition(1, p)

    def test_requires_components(self):
        with pytest.raises(ValueError):
            IntersectOracle(3)


class TestUnion:
    def test_redundant_channels(self):
        n = 4
        left = ScriptedOracle(n, {}, default=[0, 1])
        right = ScriptedOracle(n, {}, default=[2])
        oracle = UnionOracle(n, left, right)
        assert oracle(1, 0) == frozenset({0, 1, 2})

    def test_union_with_silence_is_identity(self):
        n = 3
        base = PartitionOracle(n, blocks=[[0, 1], [2]])
        oracle = UnionOracle(n, base, SilentRoundsOracle(n, range(1, 100)))
        for p in range(n):
            assert oracle(5, p) == base(5, p)


class TestSequence:
    def test_phases_switch_at_segment_boundaries(self):
        n = 3
        oracle = SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), 2),
                (SilentRoundsOracle(n, range(1, 1000)), 3),
                (FaultFreeOracle(n), None),
            ],
        )
        full = frozenset(range(n))
        assert oracle(1, 0) == full
        assert oracle(2, 0) == full
        for r in (3, 4, 5):
            assert oracle(r, 0) == frozenset()
        assert oracle(6, 0) == full
        assert oracle(100, 0) == full

    def test_components_see_local_rounds(self):
        n = 3
        # A crash segment scripted mid-sequence models a transient crash:
        # the component crashes its victim from *local* round 1.
        oracle = SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), 4),
                (StaticCrashOracle(n, {2: 1}), 2),
                (FaultFreeOracle(n), None),
            ],
        )
        assert 2 in oracle(4, 0)
        assert 2 not in oracle(5, 0)
        assert 2 not in oracle(6, 0)
        assert 2 in oracle(7, 0)

    def test_only_final_segment_may_be_open_ended(self):
        n = 2
        with pytest.raises(ValueError, match="open-ended"):
            SequenceOracle(n, [(FaultFreeOracle(n), None), (FaultFreeOracle(n), 3)])

    def test_rejects_non_positive_lengths(self):
        n = 2
        with pytest.raises(ValueError):
            SequenceOracle(n, [(FaultFreeOracle(n), 0)])


class TestWindowSwitch:
    def test_rotates_through_components(self):
        n = 4
        a = PartitionOracle(n, blocks=[[0, 1], [2, 3]])
        b = PartitionOracle(n, blocks=[[0, 2], [1, 3]])
        oracle = WindowSwitchOracle(n, [a, b], window=2)
        assert oracle(1, 0) == frozenset({0, 1})
        assert oracle(2, 0) == frozenset({0, 1})
        assert oracle(3, 0) == frozenset({0, 2})
        assert oracle(4, 0) == frozenset({0, 2})
        assert oracle(5, 0) == frozenset({0, 1})  # wrapped around

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WindowSwitchOracle(2, [FaultFreeOracle(2)], window=0)


class TestAdapters:
    def test_plain_callables_are_adapted_and_clamped(self):
        oracle = IntersectOracle(3, lambda r, p: [0, 1, 2, 99])
        assert oracle(1, 0) == frozenset({0, 1, 2})
        assert oracle.ho_mask(1, 0) == mask_of({0, 1, 2})

    def test_ensure_oracle_rejects_size_mismatch(self):
        with pytest.raises(ValueError, match="sized"):
            ensure_oracle(FaultFreeOracle(3), 4)

    def test_nesting(self):
        n = 4
        inner = SequenceOracle(
            n, [(PartitionOracle(n, blocks=[[0, 1], [2, 3]]), 2), (FaultFreeOracle(n), None)]
        )
        outer = IntersectOracle(n, inner, StaticCrashOracle(n, {3: 100}))
        assert outer(1, 0) == frozenset({0, 1})
        assert outer(3, 0) == frozenset({0, 1, 2, 3})
        assert outer(100, 0) == frozenset({0, 1, 2})


class TestStatefulComponentIsolation:
    """Regression: combinators must query every component every round.

    The old short-circuit (``if not mask: break`` / ``if mask == full:
    break``) skipped queries to later components; a skipped *stateful*
    component consumes its seeded sub-stream differently depending on
    sibling outcomes, violating the documented rule that concerns cannot
    perturb each other.
    """

    def _drive(self, oracle, n, rounds):
        return [oracle.ho_mask(r, p) for r in range(1, rounds + 1) for p in range(n)]

    def test_intersect_queries_stateful_siblings_behind_an_empty_mask(self):
        from repro.adversaries import EventuallyStableCoordinatorOracle

        n, rounds = 4, 12

        def blackout(round, process):
            # empties the accumulated mask on odd rounds BEFORE the stateful
            # component is reached; with the old short-circuit the stateful
            # oracle was only queried on even rounds.
            return [] if round % 2 else range(n)

        stateful = EventuallyStableCoordinatorOracle(n, stable_from=100, seed=5)
        composed = IntersectOracle(n, blackout, stateful)
        self._drive(composed, n, rounds)

        standalone = EventuallyStableCoordinatorOracle(n, stable_from=100, seed=5)
        assert self._drive(stateful, n, rounds)[: n * rounds] == self._drive(
            standalone, n, rounds
        ), "stateful component's draw sequence was perturbed by its sibling"

    def test_union_queries_stateful_siblings_behind_a_full_mask(self):
        from repro.adversaries import EventuallyStableCoordinatorOracle

        n, rounds = 4, 12

        def floodlight(round, process):
            # fills the accumulated mask on odd rounds before the stateful
            # component is reached (the Union short-circuit condition).
            return range(n) if round % 2 else []

        stateful = EventuallyStableCoordinatorOracle(n, stable_from=100, seed=5)
        composed = UnionOracle(n, floodlight, stateful)
        self._drive(composed, n, rounds)

        standalone = EventuallyStableCoordinatorOracle(n, stable_from=100, seed=5)
        assert self._drive(stateful, n, rounds)[: n * rounds] == self._drive(
            standalone, n, rounds
        )

    def test_two_stateful_components_compose_reproducibly(self):
        """Composing two lazily-drawing oracles replays per seed, cell by cell."""
        from repro.adversaries import BurstyLossOracle, EventuallyStableCoordinatorOracle

        n, rounds = 4, 15

        def build():
            return IntersectOracle(
                n,
                BurstyLossOracle(n, p_burst=0.4, p_recover=0.2, seed=3),
                EventuallyStableCoordinatorOracle(n, stable_from=100, seed=8),
            )

        assert self._drive(build(), n, rounds) == self._drive(build(), n, rounds)
