"""Oracle randomness flows through SeededRng named sub-streams.

One run seed controls every layer, and draws on one oracle concern are
isolated from every other concern -- the properties that make A/B
experiments comparable and replay debugging possible.
"""

from __future__ import annotations

from repro.adversaries import (
    GoodPeriodOracle,
    KernelOnlyOracle,
    MobileOmissionOracle,
    RandomOmissionOracle,
)
from repro.engine.rng import SeededRng


def snapshot(oracle, rounds=8, n=None):
    n = n if n is not None else oracle.n
    return [oracle(r, p) for r in range(1, rounds + 1) for p in range(n)]


class TestSeedPlumbing:
    def test_seed_and_rng_spellings_agree(self):
        by_seed = RandomOmissionOracle(5, 0.4, seed=12)
        by_rng = RandomOmissionOracle(5, 0.4, rng=SeededRng(12))
        assert snapshot(by_seed) == snapshot(by_rng)

    def test_one_master_rng_controls_several_oracles(self):
        def build(seed):
            rng = SeededRng(seed)
            return (
                MobileOmissionOracle(6, faults=2, rng=rng.spawn("mobile")),
                RandomOmissionOracle(6, 0.3, rng=rng.spawn("loss")),
            )

        mobile_a, loss_a = build(7)
        mobile_b, loss_b = build(7)
        assert snapshot(mobile_a) == snapshot(mobile_b)
        assert snapshot(loss_a) == snapshot(loss_b)

    def test_different_seeds_differ(self):
        a = RandomOmissionOracle(6, 0.5, seed=1)
        b = RandomOmissionOracle(6, 0.5, seed=2)
        assert snapshot(a) != snapshot(b)


class TestStreamIsolation:
    def test_loss_draws_do_not_perturb_partition_draws(self):
        """Changing the loss model must not move partitions in time.

        GoodPeriodOracle draws loss from ``oracle.loss`` and partition
        events from ``oracle.partition``.  With a shared private RNG (the
        pre-refactor arrangement) changing the loss probability would shift
        every later partition draw; with named sub-streams the chosen
        partition halves are identical.

        Observed through the outputs: with ``bad_loss_probability=0.0`` and
        ``bad_partition_probability=1.0`` every bad cell's HO set is exactly
        its partition half (plus self).  A lossy run with the same seed
        consumes very different amounts of loss randomness, yet its HO sets
        must stay *inside* the same halves -- which fails with overwhelming
        probability if the halves were re-drawn from a perturbed stream.
        """

        def build(bad_loss):
            return GoodPeriodOracle(
                6,
                pi0=[0, 1, 2, 3],
                good_from=100,
                bad_loss_probability=bad_loss,
                bad_partition_probability=1.0,
                seed=5,
            )

        lossless = build(0.0)
        lossy = build(0.7)
        for r in range(1, 12):
            for p in range(6):
                half = lossless(r, p)  # the partition half, exactly
                assert lossy(r, p) <= half

    def test_kernel_oracle_uses_its_own_stream(self):
        # Two oracles sharing one master seed but different concerns draw
        # from disjoint streams: instantiating one never changes the other.
        rng = SeededRng(3)
        kernel = KernelOnlyOracle(5, pi0=[0, 1, 2], rng=rng)
        loss = RandomOmissionOracle(5, 0.4, rng=rng)
        kernel_alone = KernelOnlyOracle(5, pi0=[0, 1, 2], rng=SeededRng(3))
        loss_alone = RandomOmissionOracle(5, 0.4, rng=SeededRng(3))
        assert snapshot(kernel) == snapshot(kernel_alone)
        assert snapshot(loss) == snapshot(loss_alone)
