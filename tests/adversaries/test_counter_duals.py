"""Counter-based batch duals: bit-identical to the scalar dynamic oracles.

Each of the four dynamic adversary families has an array dual
(:mod:`repro.adversaries.counter_batch`) that recomputes the family's
counter-based draws array-wide.  These tests pin the duals to the scalar
oracles round by round (so equality holds on every prefix), the
eligibility rules (same family, same construction signature), and the
relaxed ``IntersectOracle`` decomposition guard: any number of broadcast
or counter-based components, at most one opaque sequential one.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import (
    BurstyLossOracle,
    CounterKernelOracle,
    EventuallyStableCoordinatorOracle,
    FaultFreeOracle,
    IntersectOracle,
    MobileOmissionOracle,
    RandomOmissionOracle,
    RotatingPartitionOracle,
    StaticCrashOracle,
)
from repro.adversaries.batch import (
    IntersectBatchOracle,
    PerReplicaBatchOracle,
    vectorize_oracles,
)
from repro.adversaries.counter_batch import counter_batch_dual
from repro.engine.rng import SeededRng

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

FAMILY_FACTORIES = {
    "mobile": lambda n, seed: MobileOmissionOracle(n, faults=2, seed=seed),
    "partition": lambda n, seed: RotatingPartitionOracle(
        n, blocks=3, period=2, churn=0.4, seed=seed
    ),
    "bursty": lambda n, seed: BurstyLossOracle(
        n, p_burst=0.25, p_recover=0.35, loss_good=0.05, seed=seed
    ),
    "coordinator": lambda n, seed: EventuallyStableCoordinatorOracle(
        n, stable_from=50, flaky_probability=0.4, seed=seed
    ),
    # pi0 = everyone but the last process (n = 1 collapses to pi0 = {0}).
    "kernel": lambda n, seed: CounterKernelOracle(n, range(max(1, n - 1)), seed=seed),
}


def scalar_masks(oracles, round):
    return [
        [oracle.ho_mask(round, p) for p in range(oracle.n)] for oracle in oracles
    ]


def dual_masks(dual, round, replicas, n):
    from repro.batch.arrays import mask_from_words_row

    np = __import__("numpy")
    words = dual.round_masks(round, np.ones(replicas, dtype=bool))
    return [[mask_from_words_row(words[r, p]) for p in range(n)] for r in range(replicas)]


@needs_numpy
class TestScalarDualEquality:
    @pytest.mark.parametrize("family", sorted(FAMILY_FACTORIES))
    @pytest.mark.parametrize("n", [3, 8, 65])
    def test_masks_equal_on_every_round_prefix(self, family, n):
        """Round by round, every replica's mask row matches the scalar
        oracle -- so any prefix of the round sequence agrees too."""
        replicas = 4
        oracles = [FAMILY_FACTORIES[family](n, 20 + i) for i in range(replicas)]
        shadows = [FAMILY_FACTORIES[family](n, 20 + i) for i in range(replicas)]
        dual = counter_batch_dual(oracles, replicas)
        assert dual is not None, f"{family} has no counter dual"
        for round in range(1, 16):
            assert dual_masks(dual, round, replicas, n) == scalar_masks(
                shadows, round
            ), f"{family} diverges at round {round}"

    def test_scalar_query_order_does_not_matter(self):
        """The scalar oracle gives the same masks queried in any (p, r)
        order inside the retained window -- the counter property itself."""
        oracle = BurstyLossOracle(5, p_burst=0.3, p_recover=0.3, seed=4)
        forward = {
            (r, p): oracle.ho_mask(r, p) for r in range(1, 10) for p in range(5)
        }
        fresh = BurstyLossOracle(5, p_burst=0.3, p_recover=0.3, seed=4)
        for r in range(1, 10):  # the Markov chain still advances in order...
            fresh.ho_mask(r, 0)
        shuffled = {  # ...but within the window, query order is free
            (r, p): fresh.ho_mask(r, p)
            for r in range(9, 0, -1)
            for p in reversed(range(5))
        }
        assert forward == shuffled


class TestDualEligibility:
    @needs_numpy
    def test_mixed_signature_gets_no_dual(self):
        oracles = [
            MobileOmissionOracle(5, faults=1, seed=0),
            MobileOmissionOracle(5, faults=2, seed=1),
        ]
        assert counter_batch_dual(oracles, 2) is None

    @needs_numpy
    def test_mixed_family_gets_no_dual(self):
        oracles = [
            MobileOmissionOracle(5, faults=1, seed=0),
            BurstyLossOracle(5, seed=1),
        ]
        assert counter_batch_dual(oracles, 2) is None

    @needs_numpy
    def test_vectorize_prefers_dual_over_per_replica(self):
        oracles = [MobileOmissionOracle(6, faults=2, seed=i) for i in range(3)]
        batch_oracle = vectorize_oracles(oracles, 3)
        assert not isinstance(batch_oracle, PerReplicaBatchOracle)


@needs_numpy
class TestIntersectDecomposition:
    def make(self, components_for_seed, replicas=3, n=5):
        return vectorize_oracles(
            [
                IntersectOracle(n, *components_for_seed(n, seed))
                for seed in range(replicas)
            ],
            replicas,
        )

    def test_two_counter_components_decompose(self):
        """Multiple *stateful* components are fine once counter-based --
        the guard only counts opaque sequential components."""
        batch_oracle = self.make(
            lambda n, seed: (
                MobileOmissionOracle(n, faults=1, seed=seed),
                BurstyLossOracle(n, p_burst=0.2, p_recover=0.5, seed=seed),
            )
        )
        assert isinstance(batch_oracle, IntersectBatchOracle)

    def test_counter_plus_one_sequential_decomposes(self):
        batch_oracle = self.make(
            lambda n, seed: (
                MobileOmissionOracle(n, faults=1, seed=seed),
                RandomOmissionOracle(n, 0.2, rng=SeededRng(seed)),
            )
        )
        assert isinstance(batch_oracle, IntersectBatchOracle)

    def test_two_sequential_components_stay_opaque(self):
        """Two random.Random-driven components share draw interleaving;
        decomposition would reorder it, so the whole intersect stays on
        the per-replica loop."""
        batch_oracle = self.make(
            lambda n, seed: (
                RandomOmissionOracle(n, 0.1, rng=SeededRng(seed)),
                RandomOmissionOracle(n, 0.2, rng=SeededRng(1000 + seed)),
            )
        )
        assert isinstance(batch_oracle, PerReplicaBatchOracle)

    def test_decomposed_intersect_matches_scalar(self):
        from repro.batch.arrays import mask_from_words_row

        np = __import__("numpy")
        n, replicas = 6, 3

        def build(seed):
            return IntersectOracle(
                n,
                StaticCrashOracle(n, {n - 1: 3}),
                MobileOmissionOracle(n, faults=1, seed=seed),
                BurstyLossOracle(n, p_burst=0.2, p_recover=0.5, seed=seed),
            )

        batch_oracle = vectorize_oracles([build(s) for s in range(replicas)], replicas)
        assert isinstance(batch_oracle, IntersectBatchOracle)
        shadows = [build(s) for s in range(replicas)]
        for round in range(1, 12):
            words = batch_oracle.round_masks(round, np.ones(replicas, dtype=bool))
            for r in range(replicas):
                for p in range(n):
                    assert mask_from_words_row(words[r, p]) == shadows[r].ho_mask(
                        round, p
                    )
