"""Tests for the dynamic/transient adversary families."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    MobileOmissionOracle,
    RotatingPartitionOracle,
)
from repro.rounds.bitmask import bit_count


class TestMobileOmission:
    def test_at_most_k_senders_silenced_per_round(self):
        n, k = 8, 2
        oracle = MobileOmissionOracle(n, faults=k, seed=1)
        for r in range(1, 30):
            heard_by_all = frozenset(range(n))
            for p in range(n):
                heard_by_all &= oracle(r, p)
            assert len(heard_by_all) >= n - k

    def test_faults_move_over_time(self):
        n = 8
        oracle = MobileOmissionOracle(n, faults=2, seed=3)
        silenced_sets = {oracle._silenced_mask(r) for r in range(1, 40)}
        assert len(silenced_sets) > 1

    def test_receiver_always_hears_itself(self):
        oracle = MobileOmissionOracle(4, faults=4, seed=0)
        for r in range(1, 10):
            for p in range(4):
                assert p in oracle(r, p)

    def test_stabilises(self):
        n = 4
        oracle = MobileOmissionOracle(n, faults=2, seed=0, stable_from=10)
        assert oracle(10, 0) == frozenset(range(n))
        assert oracle(50, 3) == frozenset(range(n))

    def test_same_seed_same_run(self):
        a = MobileOmissionOracle(6, faults=2, seed=9)
        b = MobileOmissionOracle(6, faults=2, seed=9)
        assert [a(r, p) for r in range(1, 10) for p in range(6)] == [
            b(r, p) for r in range(1, 10) for p in range(6)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            MobileOmissionOracle(4, faults=5)


class TestRotatingPartition:
    def test_blocks_partition_the_system(self):
        n = 9
        oracle = RotatingPartitionOracle(n, blocks=3, period=4, churn=0.5, seed=2)
        for r in (1, 5, 13):
            seen = []
            for p in range(n):
                block = oracle(r, p)
                assert p in block
                seen.append(block)
            # blocks are equivalence classes: same block -> identical HO set
            for p in range(n):
                for q in seen[p]:
                    assert seen[q] == seen[p]

    def test_partition_is_stable_within_a_period(self):
        oracle = RotatingPartitionOracle(6, blocks=2, period=5, churn=1.0, seed=4)
        for p in range(6):
            first = oracle(1, p)
            for r in range(2, 6):
                assert oracle(r, p) == first

    def test_partition_rotates_across_periods(self):
        oracle = RotatingPartitionOracle(8, blocks=2, period=3, churn=1.0, seed=5)
        layouts = set()
        for epoch in range(6):
            r = epoch * 3 + 1
            layouts.add(tuple(sorted(oracle(r, p)) != sorted(range(8)) for p in range(1)))
            layouts.add(tuple(tuple(sorted(oracle(r, p))) for p in range(8)))
        assert len(layouts) > 2

    def test_heals(self):
        oracle = RotatingPartitionOracle(5, blocks=2, period=2, seed=0, heal_from=7)
        assert oracle(7, 0) == frozenset(range(5))

    def test_validation(self):
        with pytest.raises(ValueError):
            RotatingPartitionOracle(4, blocks=0)
        with pytest.raises(ValueError):
            RotatingPartitionOracle(4, period=0)
        with pytest.raises(ValueError):
            RotatingPartitionOracle(4, churn=1.5)


class TestBurstyLoss:
    def test_losses_cluster_in_bursts(self):
        n = 2
        oracle = BurstyLossOracle(
            n, p_burst=0.15, p_recover=0.2, loss_burst=1.0, loss_good=0.0, seed=11
        )
        # Track link 1 -> 0 over many rounds: losses should appear in runs
        # whose mean length exceeds 1 (independent loss would give ~1 / (1-p)).
        lost = [1 not in oracle(r, 0) for r in range(1, 400)]
        runs = []
        current = 0
        for flag in lost:
            if flag:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        if current:
            runs.append(current)
        assert runs, "expected at least one burst"
        assert sum(runs) / len(runs) > 1.5

    def test_query_order_does_not_matter(self):
        a = BurstyLossOracle(4, seed=7)
        b = BurstyLossOracle(4, seed=7)
        # Warm a forwards and b backwards, then compare every cell: link
        # states advance round by round internally, so any query order
        # replays the same environment.
        [a(r, p) for r in range(1, 15) for p in range(4)]
        [b(r, p) for r in range(14, 0, -1) for p in range(4)]
        for r in range(1, 15):
            for p in range(4):
                assert a(r, p) == b(r, p)

    def test_stabilises(self):
        oracle = BurstyLossOracle(3, p_burst=1.0, p_recover=0.0, seed=0, stable_from=5)
        assert oracle(5, 0) == frozenset(range(3))

    def test_self_always_heard(self):
        oracle = BurstyLossOracle(3, p_burst=1.0, p_recover=0.0, loss_burst=1.0, seed=1)
        for r in range(1, 10):
            for p in range(3):
                assert p in oracle(r, p)

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstyLossOracle(3, p_burst=1.5)


class TestEventuallyStableCoordinator:
    def test_stable_phase_is_fault_free_with_fixed_coordinator(self):
        oracle = EventuallyStableCoordinatorOracle(5, stable_from=8, stable_coordinator=2)
        assert oracle(8, 0) == frozenset(range(5))
        assert oracle.coordinator(8) == 2
        assert oracle.coordinator(100) == 2

    def test_pretenders_change_before_stabilisation(self):
        oracle = EventuallyStableCoordinatorOracle(6, stable_from=50, seed=3)
        pretenders = {oracle.coordinator(r) for r in range(1, 40)}
        assert len(pretenders) > 1

    def test_unstable_rounds_are_partial(self):
        oracle = EventuallyStableCoordinatorOracle(
            6, stable_from=100, background_probability=0.3, seed=1
        )
        sizes = [bit_count(oracle.ho_mask(r, p)) for r in range(1, 20) for p in range(6)]
        assert min(sizes) >= 1  # always hears itself
        assert any(size < 6 for size in sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventuallyStableCoordinatorOracle(4, stable_from=0)
        with pytest.raises(ValueError):
            EventuallyStableCoordinatorOracle(4, stable_from=5, stable_coordinator=9)


class TestBoundedMemos:
    """The dynamic families must not grow O(rounds * n) state on long runs."""

    def test_bursty_memo_is_bounded_on_long_runs(self):
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        n = 4
        oracle = BurstyLossOracle(n, p_burst=0.3, p_recover=0.3, seed=2)
        for r in range(1, 4 * MEMO_RETAIN_ROUNDS):
            oracle.ho_mask(r, r % n)
        assert len(oracle._memo) <= MEMO_RETAIN_ROUNDS * n

    def test_mobile_memo_is_bounded_on_long_runs(self):
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        oracle = MobileOmissionOracle(6, faults=2, seed=1)
        for r in range(1, 4 * MEMO_RETAIN_ROUNDS):
            oracle.ho_mask(r, 0)
        assert len(oracle._silenced) <= MEMO_RETAIN_ROUNDS

    def test_partition_memo_is_bounded_on_long_runs(self):
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        oracle = RotatingPartitionOracle(6, blocks=2, period=2, churn=0.5, seed=3)
        for r in range(1, 4 * MEMO_RETAIN_ROUNDS):
            oracle.ho_mask(r, 0)
        assert len(oracle._epoch_masks) <= MEMO_RETAIN_ROUNDS

    def test_coordinator_memo_is_bounded_on_long_runs(self):
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        n = 5
        oracle = EventuallyStableCoordinatorOracle(n, stable_from=10_000, seed=4)
        for r in range(1, 3 * MEMO_RETAIN_ROUNDS):
            for p in range(n):
                oracle.ho_mask(r, p)
        assert len(oracle._memo) <= MEMO_RETAIN_ROUNDS * n
        assert len(oracle._pretenders) <= MEMO_RETAIN_ROUNDS

    def test_pruning_never_changes_the_draw_sequence(self, monkeypatch):
        """Eviction is invisible to an engine-style (ascending) query order."""
        import repro.adversaries.dynamic as dynamic

        n, horizon = 4, 1200

        def drive(oracle):
            return [
                oracle.ho_mask(r, p) for r in range(1, horizon) for p in range(n)
            ]

        bounded = {
            "bursty": BurstyLossOracle(n, p_burst=0.3, p_recover=0.3, seed=9),
            "mobile": MobileOmissionOracle(n, faults=1, seed=9),
            "partition": RotatingPartitionOracle(n, blocks=2, period=3, seed=9),
            "coordinator": EventuallyStableCoordinatorOracle(n, stable_from=10_000, seed=9),
        }
        bounded_masks = {name: drive(oracle) for name, oracle in bounded.items()}

        # the same oracles with (effectively) unbounded memos draw identically
        monkeypatch.setattr(dynamic, "MEMO_RETAIN_ROUNDS", 10**9)
        unbounded = {
            "bursty": BurstyLossOracle(n, p_burst=0.3, p_recover=0.3, seed=9),
            "mobile": MobileOmissionOracle(n, faults=1, seed=9),
            "partition": RotatingPartitionOracle(n, blocks=2, period=3, seed=9),
            "coordinator": EventuallyStableCoordinatorOracle(n, stable_from=10_000, seed=9),
        }
        for name, oracle in unbounded.items():
            assert drive(oracle) == bounded_masks[name], name

    def test_stale_requery_raises_instead_of_redrawing(self):
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        oracle = MobileOmissionOracle(4, faults=1, seed=0)
        for r in range(1, 3 * MEMO_RETAIN_ROUNDS):
            oracle.ho_mask(r, 0)
        # round 1 was evicted long ago; silently re-drawing it would shift
        # every later draw, so the oracle refuses.
        with pytest.raises(LookupError, match="evicted"):
            oracle.ho_mask(1, 0)

    def test_retain_rounds_override_for_large_switch_windows(self):
        """A WindowSwitchOracle window beyond the default retention works
        when the component is built with retain_rounds >= window."""
        from repro.adversaries import FaultFreeOracle, WindowSwitchOracle
        from repro.adversaries.dynamic import MEMO_RETAIN_ROUNDS

        n, window = 4, MEMO_RETAIN_ROUNDS + 50
        mobile = MobileOmissionOracle(n, faults=1, seed=0, retain_rounds=window)
        oracle = WindowSwitchOracle(n, [mobile, FaultFreeOracle(n)], window=window)
        first_visit = [oracle.ho_mask(r, 0) for r in range(1, window + 1)]
        # skip the fault-free window, then revisit: identical on every visit
        revisit_start = 2 * window
        second_visit = [
            oracle.ho_mask(revisit_start + r, 0) for r in range(1, window + 1)
        ]
        assert second_visit == first_visit

    def test_retain_rounds_must_be_positive(self):
        with pytest.raises(ValueError, match="retain_rounds"):
            MobileOmissionOracle(4, faults=1, retain_rounds=0)
