"""Tests for the predicate-driven oracle synthesizer."""

from __future__ import annotations

import pytest

from repro.adversaries import (
    CollectionOracle,
    SynthesisError,
    synthesize_collection,
    synthesize_oracle,
)
from repro.algorithms import OneThirdRule
from repro.core.machine import HOMachine
from repro.core.predicates import (
    MajorityEveryRound,
    NonEmptyKernelEveryRound,
    POtr,
    PRestrOtr,
    TruePredicate,
    UniformRoundExists,
    exists_p2otr,
)
from repro.core.types import HOCollection


SATISFIABLE = [
    POtr(),
    PRestrOtr(),
    UniformRoundExists(),
    NonEmptyKernelEveryRound(),
    MajorityEveryRound(5),
    exists_p2otr(5),
]


class TestSynthesizeCollection:
    @pytest.mark.parametrize("predicate", SATISFIABLE, ids=lambda p: p.name)
    def test_satisfying_collections(self, predicate):
        collection = synthesize_collection(predicate, n=5, rounds=12, satisfy=True)
        assert predicate.holds(collection)

    @pytest.mark.parametrize("predicate", SATISFIABLE, ids=lambda p: p.name)
    def test_violating_collections(self, predicate):
        collection = synthesize_collection(predicate, n=5, rounds=12, satisfy=False)
        assert not predicate.holds(collection)

    def test_unsatisfiable_request_raises(self):
        with pytest.raises(SynthesisError):
            synthesize_collection(TruePredicate(), n=4, rounds=5, satisfy=False, max_attempts=25)

    def test_deterministic_per_seed(self):
        a = synthesize_collection(POtr(), n=5, rounds=10, seed=3)
        b = synthesize_collection(POtr(), n=5, rounds=10, seed=3)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            synthesize_collection(POtr(), n=0)
        with pytest.raises(ValueError):
            synthesize_collection(POtr(), n=3, rounds=0)


class TestCollectionOracle:
    def test_replays_the_recording_then_falls_back(self):
        collection = HOCollection(3)
        collection.record(0, 1, {0, 2})
        collection.record(1, 1, {1})
        oracle = CollectionOracle(collection)
        assert oracle(1, 0) == frozenset({0, 2})
        assert oracle(1, 1) == frozenset({1})
        # unrecorded cell inside the window and any round beyond it: default
        assert oracle(1, 2) == frozenset({0, 1, 2})
        assert oracle(2, 0) == frozenset({0, 1, 2})

    def test_default_mask_zero_keeps_violations_alive(self):
        collection = HOCollection(2)
        collection.record(0, 1, set())
        oracle = CollectionOracle(collection, default_mask=0)
        assert oracle(5, 0) == frozenset()


class TestEndToEnd:
    def test_machine_under_a_satisfying_oracle_terminates(self):
        n = 5
        predicate = POtr()
        oracle = synthesize_oracle(predicate, n=n, rounds=15, satisfy=True)
        machine = HOMachine(OneThirdRule(n), oracle, [30, 10, 20, 50, 40])
        trace = machine.run_until_decision(max_rounds=40)
        assert predicate.holds(trace.ho_collection) or trace.rounds_executed() > 15
        assert machine.all_decided()

    def test_machine_under_a_violating_oracle_stays_safe(self):
        n = 5
        oracle = synthesize_oracle(PRestrOtr(), n=n, rounds=15, satisfy=False)
        machine = HOMachine(OneThirdRule(n), oracle, [30, 10, 20, 50, 40])
        # Cap the run at the synthesised prefix so the violation persists.
        trace = machine.run(15)
        assert not PRestrOtr().holds(trace.ho_collection)
        decisions = set(trace.decisions().values())
        assert len(decisions) <= 1  # agreement can never break
