"""Behavioural tests of the Chandra-Toueg and Aguilera et al. baselines.

These tests reproduce the qualitative claims of Section 2 / Appendix A:

* Chandra-Toueg solves consensus in the crash-stop model with reliable
  links and ◇S (even when the first coordinators crash or are wrongly
  suspected for a while);
* it stops terminating -- but stays safe -- under message loss or
  crash-recovery;
* Aguilera et al. solves consensus in the crash-recovery model with lossy
  links, stable storage and ◇Su.
"""

from __future__ import annotations

import pytest

from repro.des import ChannelConfig, EventSimulator
from repro.failure_detectors import (
    EventuallyStrongDetector,
    EventuallyStrongRecoveryDetector,
    build_aguilera_processes,
    build_chandra_toueg_processes,
)


def run_chandra_toueg(
    n=4,
    values=None,
    crash_times=None,
    recovery_times=None,
    loss=0.0,
    stabilization=0.0,
    horizon=400.0,
    scope=None,
    seed=1,
):
    values = values if values is not None else list(range(1, n + 1))
    processes = build_chandra_toueg_processes(n, values)
    simulator = EventSimulator(
        processes,
        channel=ChannelConfig(loss_probability=loss),
        crash_times=crash_times or {},
        recovery_times=recovery_times or {},
        seed=seed,
    )
    simulator.register_failure_detector(
        "default", EventuallyStrongDetector(stabilization_time=stabilization, seed=seed + 1)
    )
    simulator.run_until_all_decided(until=horizon, scope=scope)
    return simulator, values


def run_aguilera(
    n=4,
    values=None,
    crash_times=None,
    recovery_times=None,
    loss=0.0,
    stabilization=10.0,
    horizon=800.0,
    scope=None,
    seed=1,
):
    values = values if values is not None else list(range(1, n + 1))
    processes = build_aguilera_processes(n, values)
    simulator = EventSimulator(
        processes,
        channel=ChannelConfig(loss_probability=loss),
        crash_times=crash_times or {},
        recovery_times=recovery_times or {},
        seed=seed,
    )
    simulator.register_failure_detector(
        "default",
        EventuallyStrongRecoveryDetector(stabilization_time=stabilization, seed=seed + 1),
    )
    simulator.run_until_all_decided(until=horizon, scope=scope)
    return simulator, values


def assert_consensus(simulator, values, scope):
    decisions = simulator.decision_values()
    assert set(scope).issubset(decisions), f"missing decisions: {decisions}"
    assert len(set(decisions.values())) == 1
    assert set(decisions.values()) <= set(values)


class TestChandraTouegCrashStop:
    def test_fault_free_run(self):
        simulator, values = run_chandra_toueg(n=4)
        assert_consensus(simulator, values, scope=range(4))

    def test_crashed_coordinator_is_worked_around(self):
        # Process 0 coordinates round 1 and crashes immediately.
        simulator, values = run_chandra_toueg(
            n=5, crash_times={0: 0.2}, stabilization=15.0, scope=range(1, 5), seed=3
        )
        assert_consensus(simulator, values, scope=range(1, 5))

    def test_tolerates_minority_of_crashes(self):
        simulator, values = run_chandra_toueg(
            n=5, crash_times={0: 0.2, 4: 1.0}, stabilization=15.0, scope=[1, 2, 3], seed=4
        )
        assert_consensus(simulator, values, scope=[1, 2, 3])

    def test_wrong_suspicions_delay_but_do_not_break(self):
        simulator, values = run_chandra_toueg(n=4, stabilization=25.0, seed=5)
        assert_consensus(simulator, values, scope=range(4))

    def test_decisions_are_unanimous_across_seeds(self):
        for seed in range(4):
            simulator, values = run_chandra_toueg(n=4, seed=seed)
            decisions = simulator.decision_values()
            assert len(set(decisions.values())) <= 1


class TestChandraTouegLimitations:
    """The limitations the paper attributes to the failure-detector approach."""

    def test_blocks_under_message_loss_but_stays_safe(self):
        simulator, values = run_chandra_toueg(n=4, loss=0.4, horizon=200.0, seed=2)
        decisions = simulator.decision_values()
        # Without reliable links the algorithm may block: some process never
        # decides within the horizon.  Safety is never violated.
        assert len(set(decisions.values())) <= 1
        assert len(decisions) < 4

    def test_blocks_under_crash_recovery(self):
        # Every process crashes once; in the crash-stop algorithm a crashed
        # process loses its volatile state and stops participating, so the
        # quorum of "correct" processes is gone.
        n = 4
        simulator, values = run_chandra_toueg(
            n=n,
            crash_times={p: 2.0 + p for p in range(n)},
            recovery_times={p: 10.0 + p for p in range(n)},
            loss=0.3,
            horizon=300.0,
            seed=2,
        )
        decisions = simulator.decision_values()
        assert len(set(decisions.values())) <= 1
        assert len(decisions) < n


class TestAguileraCrashRecovery:
    def test_fault_free_run(self):
        simulator, values = run_aguilera(n=4)
        assert_consensus(simulator, values, scope=range(4))

    def test_crash_recovery_with_lossy_links(self):
        n = 5
        simulator, values = run_aguilera(
            n=n,
            crash_times={0: 2.0, 2: 4.0},
            recovery_times={0: 20.0, 2: 25.0},
            loss=0.2,
            stabilization=30.0,
            seed=4,
        )
        assert_consensus(simulator, values, scope=range(n))

    def test_every_process_crashes_and_recovers(self):
        n = 4
        simulator, values = run_aguilera(
            n=n,
            crash_times={p: 2.0 + 2 * p for p in range(n)},
            recovery_times={p: 15.0 + 2 * p for p in range(n)},
            loss=0.2,
            stabilization=30.0,
            seed=6,
        )
        assert_consensus(simulator, values, scope=range(n))

    def test_permanently_crashed_minority_is_tolerated(self):
        n = 5
        simulator, values = run_aguilera(
            n=n,
            crash_times={4: 1.0},
            loss=0.1,
            stabilization=20.0,
            scope=range(4),
            seed=7,
        )
        assert_consensus(simulator, values, scope=range(4))

    def test_decision_values_always_initial_values(self):
        for seed in range(3):
            simulator, values = run_aguilera(n=4, loss=0.3, seed=seed)
            for value in simulator.decision_values().values():
                assert value in values
