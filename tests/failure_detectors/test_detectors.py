"""Unit tests for the ◇S and ◇Su failure-detector oracles."""

from __future__ import annotations

import pytest

from repro.des import DESProcess, EventSimulator
from repro.failure_detectors import (
    EventuallyStrongDetector,
    EventuallyStrongRecoveryDetector,
)


def make_simulator(n=4, crash_times=None, recovery_times=None):
    processes = [DESProcess(p, n) for p in range(n)]
    return EventSimulator(
        processes, crash_times=crash_times or {}, recovery_times=recovery_times or {}, seed=0
    )


class TestEventuallyStrong:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventuallyStrongDetector(stabilization_time=-1.0)
        with pytest.raises(ValueError):
            EventuallyStrongDetector(false_suspicion_probability=2.0)

    def test_after_stabilization_suspects_exactly_the_crashed(self):
        simulator = make_simulator(crash_times={2: 0.0})
        simulator.run(until=10.0)
        detector = EventuallyStrongDetector(stabilization_time=5.0)
        assert detector.query(simulator, 0) == frozenset({2})

    def test_before_stabilization_crashed_processes_are_still_suspected(self):
        """Strong completeness holds from the start; only accuracy is eventual."""
        simulator = make_simulator(crash_times={1: 0.0})
        simulator.run(until=2.0)
        detector = EventuallyStrongDetector(
            stabilization_time=100.0, false_suspicion_probability=0.5, seed=1
        )
        for querying_process in range(4):
            assert 1 in detector.query(simulator, querying_process)

    def test_before_stabilization_false_suspicions_happen(self):
        simulator = make_simulator()
        detector = EventuallyStrongDetector(
            stabilization_time=100.0, false_suspicion_probability=1.0, seed=1
        )
        suspects = detector.query(simulator, 0)
        assert suspects == frozenset({1, 2, 3})
        # The querying process never suspects itself.
        assert 0 not in suspects

    def test_never_false_suspicions_when_probability_zero(self):
        simulator = make_simulator()
        detector = EventuallyStrongDetector(
            stabilization_time=100.0, false_suspicion_probability=0.0
        )
        assert detector.query(simulator, 0) == frozenset()


class TestEventuallyStrongRecovery:
    def test_after_stabilization_trusts_exactly_the_good_up_processes(self):
        simulator = make_simulator(
            crash_times={1: 0.0, 2: 0.0}, recovery_times={2: 5.0}
        )
        simulator.run(until=20.0)
        detector = EventuallyStrongRecoveryDetector(stabilization_time=10.0)
        output = detector.query(simulator, 0)
        # 1 crashed for good; 0, 2, 3 are good (2 recovered).
        assert output.trustlist == frozenset({0, 2, 3})
        assert output.trusts(0)
        assert not output.trusts(1)

    def test_epochs_count_crashes(self):
        simulator = make_simulator(crash_times={2: 1.0}, recovery_times={2: 5.0})
        simulator.run(until=20.0)
        detector = EventuallyStrongRecoveryDetector(stabilization_time=0.0)
        output = detector.query(simulator, 0)
        assert output.epoch[2] == 1
        assert output.epoch[0] == 0

    def test_before_stabilization_output_is_noisy_but_self_trusting(self):
        simulator = make_simulator()
        detector = EventuallyStrongRecoveryDetector(
            stabilization_time=100.0, mistrust_probability=0.9, seed=3
        )
        output = detector.query(simulator, 1)
        assert output.trusts(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            EventuallyStrongRecoveryDetector(stabilization_time=-1.0)
        with pytest.raises(ValueError):
            EventuallyStrongRecoveryDetector(mistrust_probability=1.5)
