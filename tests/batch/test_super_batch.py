"""The super-batch contract: many heterogeneous cells, one lockstep loop.

The cross-cell :class:`~repro.batch.super.SuperBatchBackend` packs every
eligible cell of a grid into a single padded row space.  These tests pin
its outcomes bit-identical to the scalar reference backend -- across mixed
system sizes spanning the 64-bit word boundary, across all four dynamic
adversary families (whose counter-based duals make cross-cell packing
possible), through the retire-and-compact path, and on every documented
per-cell fallback.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    FaultFreeOracle,
    MobileOmissionOracle,
    RotatingPartitionOracle,
    StaticCrashOracle,
)
from repro.algorithms import LastVoting, OneThirdRule, UniformVoting
from repro.batch import SuperBatchBackend
from repro.predicates import build_monitor_bank
from repro.rounds.backend import ReplicaBatch, ReplicaTask, get_backend
from repro.rounds.bitmask import mask_of

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

FAMILIES = {
    "mobile": lambda n, seed: MobileOmissionOracle(n, faults=max(1, n // 4), seed=seed),
    "partition": lambda n, seed: RotatingPartitionOracle(
        n, blocks=2, period=3, churn=0.5, seed=seed, heal_from=10
    ),
    "bursty": lambda n, seed: BurstyLossOracle(
        n, p_burst=0.2, p_recover=0.4, seed=seed, stable_from=12
    ),
    "coordinator": lambda n, seed: EventuallyStableCoordinatorOracle(
        n, stable_from=8, seed=seed
    ),
}


def make_cell(
    algo_cls,
    n,
    base_seed,
    replicas,
    oracle_factory=None,
    max_rounds=30,
    **kwargs,
):
    factory = oracle_factory or (lambda n, seed: FaultFreeOracle(n))
    tasks = [
        ReplicaTask(
            seed=base_seed + i,
            algorithm=algo_cls(n),
            oracle=factory(n, base_seed + i),
            initial_values=[10 * (p + 1) for p in range(n)],
        )
        for i in range(replicas)
    ]
    kwargs.setdefault("fingerprints", False)
    return ReplicaBatch(n=n, tasks=tasks, max_rounds=max_rounds, **kwargs)


@needs_numpy
class TestCrossCellBitIdentity:
    def test_heterogeneous_grid_matches_scalar(self):
        """Mixed (algorithm, family, n) cells in ONE run equal the scalar runs."""
        cells = [
            make_cell(OneThirdRule, 4, 0, 3, FAMILIES["mobile"]),
            make_cell(UniformVoting, 5, 10, 2, FAMILIES["partition"]),
            make_cell(OneThirdRule, 7, 20, 3, FAMILIES["bursty"], max_rounds=40),
            make_cell(LastVoting, 6, 30, 2, FAMILIES["coordinator"], max_rounds=40),
            make_cell(OneThirdRule, 9, 40, 2, max_rounds=20, run_full_horizon=True),
        ]
        backend = SuperBatchBackend()
        results = backend.run_batches(cells)
        assert backend.last_fallback_reasons == {}
        scalar = get_backend("scalar")
        for cell, outcomes in zip(cells, results):
            assert outcomes == scalar.run(cell)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_each_dynamic_family_super_batches(self, family):
        """No per-cell fallback: all four families have counter duals."""
        cell = make_cell(OneThirdRule, 5, 7, 4, FAMILIES[family], max_rounds=40)
        backend = SuperBatchBackend()
        outcomes = backend.run(cell)
        assert backend.last_fallback_reason is None
        assert outcomes == get_backend("scalar").run(cell)

    @pytest.mark.parametrize("sizes", [(1, 4), (63, 64), (64, 65), (1, 63, 64, 65)])
    def test_word_boundary_padding(self, sizes):
        """Padded masks spill words exactly across the 64-bit edge."""
        cells = [
            make_cell(OneThirdRule, n, 100 + 10 * i, 2, FAMILIES["mobile"])
            for i, n in enumerate(sizes)
        ]
        backend = SuperBatchBackend()
        results = backend.run_batches(cells)
        assert backend.last_fallback_reasons == {}
        scalar = get_backend("scalar")
        for cell, outcomes in zip(cells, results):
            assert outcomes == scalar.run(cell)

    def test_n_equals_one_cell(self):
        cell = make_cell(OneThirdRule, 1, 0, 2)
        backend = SuperBatchBackend()
        assert backend.run(cell) == get_backend("scalar").run(cell)

    def test_compaction_path_is_identical(self):
        """Early-deciding rows trigger retire+compact without corrupting state.

        40 fault-free replicas decide within a few rounds while a lossy
        long-horizon cell keeps running -- occupancy drops far below
        COMPACT_THRESHOLD with well over COMPACT_MIN_DROP retired rows.
        """
        quick = make_cell(OneThirdRule, 4, 0, 40)
        slow = make_cell(
            OneThirdRule, 4, 100, 4, FAMILIES["bursty"], max_rounds=60
        )
        full = make_cell(
            OneThirdRule, 4, 200, 4, max_rounds=25, run_full_horizon=True
        )
        backend = SuperBatchBackend()
        results = backend.run_batches([quick, slow, full])
        assert backend.last_fallback_reasons == {}
        scalar = get_backend("scalar")
        for cell, outcomes in zip([quick, slow, full], results):
            assert outcomes == scalar.run(cell)

    def test_scope_mask_rows_respected(self):
        """Per-row scopes: a crash-stop cell stops at its scope, not n_max."""
        crashed = make_cell(
            OneThirdRule,
            4,
            0,
            3,
            lambda n, seed: StaticCrashOracle(n, {n - 1: 2}),
            scope_mask=mask_of(range(3)),
        )
        wide = make_cell(OneThirdRule, 8, 50, 2)
        backend = SuperBatchBackend()
        results = backend.run_batches([crashed, wide])
        assert backend.last_fallback_reasons == {}
        scalar = get_backend("scalar")
        for cell, outcomes in zip([crashed, wide], results):
            assert outcomes == scalar.run(cell)


@needs_numpy
class TestPerCellFallbacks:
    def test_monitored_cell_falls_back_per_cell(self):
        cell = make_cell(
            OneThirdRule,
            4,
            0,
            2,
            monitor_factory=lambda: build_monitor_bank(4, predicates=("p_otr",)),
        )
        backend = SuperBatchBackend()
        outcomes = backend.run(cell)
        assert backend.last_fallback_reason == (
            "monitored runs take the per-cell batch path"
        )
        assert outcomes == get_backend("scalar").run(cell)

    def test_fingerprinted_cell_falls_back_per_cell(self):
        cell = make_cell(OneThirdRule, 4, 0, 2, fingerprints=True)
        backend = SuperBatchBackend()
        outcomes = backend.run(cell)
        assert backend.last_fallback_reason == (
            "fingerprinted runs take the per-cell batch path"
        )
        assert outcomes == get_backend("scalar").run(cell)

    def test_forced_fallback_is_identical(self):
        cell = make_cell(OneThirdRule, 5, 3, 3, FAMILIES["mobile"])
        forced = SuperBatchBackend(force_fallback=True)
        outcomes = forced.run(cell)
        assert forced.last_fallback_reason == "forced"
        assert outcomes == get_backend("scalar").run(cell)

    def test_mixed_grid_fallback_and_super_coexist(self):
        """Eligible cells super-batch; the monitored one drops per-cell."""
        eligible = make_cell(OneThirdRule, 4, 0, 2, FAMILIES["coordinator"])
        monitored = make_cell(
            OneThirdRule,
            4,
            10,
            2,
            monitor_factory=lambda: build_monitor_bank(4, predicates=("p_otr",)),
        )
        backend = SuperBatchBackend()
        results = backend.run_batches([eligible, monitored])
        assert set(backend.last_fallback_reasons) == {1}
        scalar = get_backend("scalar")
        assert results[0] == scalar.run(eligible)
        assert results[1] == scalar.run(monitored)


def test_super_backend_registered():
    assert get_backend("super").name == "super"


def test_scalar_fallback_without_numpy_matches(monkeypatch):
    """Numpy-free environments still get correct (per-cell scalar) results."""
    import repro.batch.super as super_mod

    monkeypatch.setattr(super_mod, "have_numpy", lambda: False)
    backend = SuperBatchBackend()
    cell = make_cell(OneThirdRule, 4, 0, 2, FAMILIES["mobile"])
    outcomes = backend.run(cell)
    assert backend.last_fallback_reason is not None
    assert "numpy" in backend.last_fallback_reason
    assert outcomes == get_backend("scalar").run(cell)
