"""The batched environment layer and the uint64 array boundary."""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import (
    BurstyLossOracle,
    FaultFreeOracle,
    IntersectOracle,
    MobileOmissionOracle,
    PartitionOracle,
    RandomOmissionOracle,
    ScriptedOracle,
    SequenceOracle,
    SilentRoundsOracle,
    StaticCrashOracle,
    UnionOracle,
    WindowSwitchOracle,
    vectorize_oracles,
)
from repro.adversaries.batch import BroadcastBatchOracle, IntersectBatchOracle, PerReplicaBatchOracle
from repro.engine.rng import SeededRng

pytestmark = pytest.mark.skipif(not have_numpy(), reason="numpy not available")


class TestReplicaInvariance:
    def test_classic_deterministic_oracles_are_invariant(self):
        n = 5
        for oracle in (
            FaultFreeOracle(n),
            StaticCrashOracle(n, {4: 2}),
            PartitionOracle(n, [range(2), range(2, 5)]),
            SilentRoundsOracle(n, [3]),
            ScriptedOracle(n, {(1, 0): [0, 1]}),
        ):
            assert oracle.replica_invariant

    def test_seeded_oracles_are_not(self):
        n = 5
        assert not RandomOmissionOracle(n, 0.1).replica_invariant
        assert not MobileOmissionOracle(n, faults=1).replica_invariant
        assert not BurstyLossOracle(n).replica_invariant

    def test_combinators_propagate_invariance(self):
        n = 4
        det = StaticCrashOracle(n, {3: 2})
        noisy = RandomOmissionOracle(n, 0.1)
        assert IntersectOracle(n, det, FaultFreeOracle(n)).replica_invariant
        assert not IntersectOracle(n, det, noisy).replica_invariant
        assert not UnionOracle(n, noisy, det).replica_invariant
        assert SequenceOracle(n, [(det, 3), (FaultFreeOracle(n), None)]).replica_invariant
        assert not SequenceOracle(n, [(noisy, 3), (det, None)]).replica_invariant
        assert WindowSwitchOracle(n, [det, FaultFreeOracle(n)], window=2).replica_invariant


class TestVectorizeOracles:
    def _masks_as_ints(self, words):
        from repro.batch.arrays import int_masks_from_words

        return [int_masks_from_words(row) for row in words]

    def test_broadcast_for_invariant_oracles(self):
        import numpy as np

        n, replicas = 5, 3
        oracles = [StaticCrashOracle(n, {4: 2}) for _ in range(replicas)]
        batch = vectorize_oracles(oracles, replicas)
        assert isinstance(batch, BroadcastBatchOracle)
        active = np.ones(replicas, dtype=bool)
        for round in (1, 2, 5):
            rows = self._masks_as_ints(batch.round_masks(round, active))
            expected = [oracles[0].ho_mask(round, p) for p in range(n)]
            assert rows == [expected] * replicas

    def test_per_replica_for_stateful_oracles(self):
        import numpy as np

        n, replicas = 6, 4
        def fresh():
            return [
                RandomOmissionOracle(n, 0.4, rng=SeededRng(100 + i))
                for i in range(replicas)
            ]

        batch = vectorize_oracles(fresh(), replicas)
        assert isinstance(batch, PerReplicaBatchOracle)
        reference = fresh()
        active = np.ones(replicas, dtype=bool)
        for round in (1, 2, 3):
            rows = self._masks_as_ints(batch.round_masks(round, active))
            for r in range(replicas):
                assert rows[r] == [reference[r].ho_mask(round, p) for p in range(n)]

    def test_heterogeneous_invariant_oracles_are_not_broadcast(self):
        """Replica-invariant but replica-*varying* oracles must not collapse to replica 0's."""
        import numpy as np

        n, replicas = 4, 3
        # Each replica crashes a different process: invariant per oracle,
        # different across replicas -- broadcasting would be silently wrong.
        oracles = [StaticCrashOracle(n, {r: 2}) for r in range(replicas)]
        batch = vectorize_oracles(oracles, replicas)
        assert isinstance(batch, PerReplicaBatchOracle)
        rows = self._masks_as_ints(batch.round_masks(3, np.ones(replicas, dtype=bool)))
        for r in range(replicas):
            assert rows[r] == [oracles[r].ho_mask(3, p) for p in range(n)]

    def test_identically_built_combinators_still_broadcast(self):
        n, replicas = 4, 3
        def build():
            return SequenceOracle(
                n, [(StaticCrashOracle(n, {3: 1}), 2), (FaultFreeOracle(n), None)]
            )

        batch = vectorize_oracles([build() for _ in range(replicas)], replicas)
        assert isinstance(batch, BroadcastBatchOracle)

    def test_inactive_replicas_are_not_queried(self):
        import numpy as np

        n, replicas = 4, 3

        class Counting(FaultFreeOracle):
            replica_invariant = False

            def __init__(self, n):
                super().__init__(n)
                self.queries = 0

            def ho_mask(self, round, process):
                self.queries += 1
                return super().ho_mask(round, process)

        oracles = [Counting(n) for _ in range(replicas)]
        batch = vectorize_oracles(oracles, replicas)
        active = np.array([True, False, True])
        batch.round_masks(1, active)
        assert [o.queries for o in oracles] == [n, 0, n]

    def test_mixed_intersect_decomposes_to_broadcast_plus_per_replica(self):
        import numpy as np

        n, replicas = 5, 3

        def build(i):
            return IntersectOracle(
                n,
                StaticCrashOracle(n, {n - 1: 2}),
                RandomOmissionOracle(n, 0.4, rng=SeededRng(10 + i)),
            )

        batch = vectorize_oracles([build(i) for i in range(replicas)], replicas)
        assert isinstance(batch, IntersectBatchOracle)
        kinds = {type(c) for c in batch.components}
        assert kinds == {BroadcastBatchOracle, PerReplicaBatchOracle}
        reference = [build(i) for i in range(replicas)]
        active = np.ones(replicas, dtype=bool)
        for round in (1, 2, 3):
            rows = self._masks_as_ints(batch.round_masks(round, active))
            for r in range(replicas):
                assert rows[r] == [reference[r].ho_mask(round, p) for p in range(n)]

    def test_two_stateful_intersect_components_stay_per_replica(self):
        # Two randomness-drawing components could share a stream; the
        # decomposition must refuse and keep whole-oracle per-replica order.
        n, replicas = 4, 2

        def build(i):
            rng = SeededRng(20 + i)
            return IntersectOracle(
                n,
                RandomOmissionOracle(n, 0.2, rng=rng),
                RandomOmissionOracle(n, 0.3, seed=99 + i),
            )

        batch = vectorize_oracles([build(i) for i in range(replicas)], replicas)
        assert isinstance(batch, PerReplicaBatchOracle)

    def test_intersect_batch_oracle(self):
        import numpy as np

        n, replicas = 5, 2
        a = vectorize_oracles([StaticCrashOracle(n, {4: 1})] * replicas, replicas)
        b = vectorize_oracles([PartitionOracle(n, [range(3), range(3, 5)])] * replicas, replicas)
        both = IntersectBatchOracle(a, b)
        scalar = IntersectOracle(
            n, StaticCrashOracle(n, {4: 1}), PartitionOracle(n, [range(3), range(3, 5)])
        )
        rows = self._masks_as_ints(both.round_masks(2, np.ones(replicas, dtype=bool)))
        assert rows[0] == [scalar.ho_mask(2, p) for p in range(n)]


class TestArrayBoundary:
    @pytest.mark.parametrize("n", [5, 63, 64, 65, 128])
    def test_pack_unpack_round_trip(self, n):
        import numpy as np

        from repro.batch.arrays import (
            pack_bools,
            popcount_words,
            unpack_words,
            words_array_from_masks,
        )
        from repro.rounds.bitmask import bit_count, full_mask, mask_of

        masks = [
            0,
            full_mask(n),
            mask_of({0, n - 1}),
            mask_of({p for p in range(n) if p % 5 == 2}),
        ]
        words = words_array_from_masks(masks, n)
        bits = unpack_words(words, n)
        assert bits.shape == (len(masks), n)
        for i, mask in enumerate(masks):
            assert [int(b) for b in bits[i]] == [(mask >> p) & 1 for p in range(n)]
        assert popcount_words(words).tolist() == [bit_count(m) for m in masks]
        repacked = pack_bools(bits, n)
        assert np.array_equal(repacked, words)
