"""The backend contract: batch execution is bit-identical to the scalar path.

Golden scenarios (all three algorithms x the classic fault-model axis) are
executed three ways -- the scalar reference backend, the vectorised batch
backend, and the batch backend with vectorisation forcibly disabled -- and
every replica must agree on decisions, decision rounds, message accounting,
predicate reports and the per-round fingerprints.
"""

from __future__ import annotations

import pytest

from repro._optional import have_numpy
from repro.adversaries import (
    FaultFreeOracle,
    IntersectOracle,
    PartitionOracle,
    RandomOmissionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from repro.algorithms import LastVoting, OneThirdRule, UniformVoting
from repro.batch import BatchBackend
from repro.engine.rng import SeededRng
from repro.predicates import MONITOR_NAMES, build_monitor_bank
from repro.rounds.backend import (
    MonitorSpec,
    ReplicaBatch,
    ReplicaTask,
    backend_names,
    get_backend,
)
from repro.rounds.bitmask import mask_of

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

ORACLE_FACTORIES = {
    "fault-free": lambda n, rng: FaultFreeOracle(n),
    "crash-stop": lambda n, rng: StaticCrashOracle(n, {n - 1: 3}),
    "partition-heal": lambda n, rng: PartitionOracle(
        n, [range(0, n // 2), range(n // 2, n)], heal_round=6
    ),
    "crash-recovery": lambda n, rng: SequenceOracle(
        n,
        [
            (FaultFreeOracle(n), 3),
            (StaticCrashOracle(n, {n - 1: 1}), 4),
            (FaultFreeOracle(n), None),
        ],
    ),
    "lossy": lambda n, rng: RandomOmissionOracle(n, 0.25, rng=rng),
    # Deterministic crash schedule intersected with seeded loss: exercises
    # the IntersectBatchOracle decomposition (broadcast + per-replica).
    "crash+lossy": lambda n, rng: IntersectOracle(
        n, StaticCrashOracle(n, {n - 1: 4}), RandomOmissionOracle(n, 0.2, rng=rng)
    ),
}


def make_batch(algo_cls, fault_model, n, base_seed, replicas, **kwargs):
    factory = ORACLE_FACTORIES[fault_model]
    tasks = []
    for i in range(replicas):
        seed = base_seed + i
        rng = SeededRng(seed)
        values = [10 * (p + 1) for p in range(n)]
        rng.stream("values").shuffle(values)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=algo_cls(n),
                oracle=factory(n, rng),
                initial_values=values,
            )
        )
    scope = range(n - 1) if fault_model == "crash-stop" else range(n)
    kwargs.setdefault("scope_mask", mask_of(scope))
    kwargs.setdefault("fingerprints", True)
    return ReplicaBatch(n=n, tasks=tasks, max_rounds=40, **kwargs)


class TestBackendRegistry:
    def test_names_and_auto(self):
        from repro._optional import have_numba

        assert set(backend_names()) >= {"scalar", "batch", "compiled", "auto"}
        assert get_backend("scalar").name == "scalar"
        assert get_backend("batch").name == "batch"
        assert get_backend("compiled").name == "compiled"
        expected_auto = "compiled" if have_numba() else "batch"
        assert get_backend("auto").name == expected_auto

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown execution backend"):
            get_backend("gpu")


class TestBitIdenticalReplicas:
    @pytest.mark.parametrize("algo_cls", [OneThirdRule, UniformVoting, LastVoting])
    @pytest.mark.parametrize("fault_model", sorted(ORACLE_FACTORIES))
    def test_batch_matches_scalar_per_seed(self, algo_cls, fault_model):
        """Decisions, decision rounds and round fingerprints are bit-identical."""
        scalar = get_backend("scalar").run(make_batch(algo_cls, fault_model, 5, 40, 5))
        batch_backend = get_backend("batch")
        batched = batch_backend.run(make_batch(algo_cls, fault_model, 5, 40, 5))
        if have_numpy():
            assert batch_backend.last_fallback_reason is None
        assert batched == scalar

    @needs_numpy
    @pytest.mark.parametrize("n", [7, 63, 64, 65])
    def test_word_boundary_sizes(self, n):
        """The (R, ceil(n/64)) word spill is exact across the 64-bit edge."""
        scalar = get_backend("scalar").run(
            make_batch(OneThirdRule, "partition-heal", n, 9, 3)
        )
        batched = get_backend("batch").run(
            make_batch(OneThirdRule, "partition-heal", n, 9, 3)
        )
        assert batched == scalar

    @needs_numpy
    def test_forced_fallback_is_also_identical(self):
        forced = BatchBackend(force_fallback=True)
        free = BatchBackend()
        a = forced.run(make_batch(LastVoting, "lossy", 5, 3, 4))
        b = free.run(make_batch(LastVoting, "lossy", 5, 3, 4))
        assert forced.last_fallback_reason == "forced"
        assert free.last_fallback_reason is None
        assert a == b

    def test_fallback_on_unencodable_values(self):
        backend = BatchBackend()
        tasks = [
            ReplicaTask(
                seed=s,
                algorithm=OneThirdRule(3),
                oracle=FaultFreeOracle(3),
                # complex numbers are not totally ordered -> scalar loop
                initial_values=[1 + 1j, 2 + 2j, 1 + 1j],
            )
            for s in range(2)
        ]
        outcomes = backend.run(ReplicaBatch(n=3, tasks=tasks, max_rounds=5))
        if have_numpy():
            assert "not encodable" in backend.last_fallback_reason
        # OneThirdRule still decides on the unanimous-majority value.
        assert all(o.decisions for o in outcomes)

    def test_equal_values_with_distinct_reprs_take_the_scalar_loop(self):
        """1 and 1.0 compare equal but print differently -- not encodable."""
        backend = BatchBackend()
        tasks = [
            ReplicaTask(s, OneThirdRule(3), FaultFreeOracle(3), [1.0, 1, 2])
            for s in range(2)
        ]
        batch = ReplicaBatch(n=3, tasks=tasks, max_rounds=5, fingerprints=True)
        outcomes = backend.run(batch)
        if have_numpy():
            assert "differ in repr" in backend.last_fallback_reason
        reference = get_backend("scalar").run(
            ReplicaBatch(
                n=3,
                tasks=[
                    ReplicaTask(s, OneThirdRule(3), FaultFreeOracle(3), [1.0, 1, 2])
                    for s in range(2)
                ],
                max_rounds=5,
                fingerprints=True,
            )
        )
        assert outcomes == reference

    def test_mis_sized_algorithm_rejected_identically(self):
        """Both backends must reject an algorithm sized for a different n."""
        def bad_batch():
            return ReplicaBatch(
                n=5,
                tasks=[ReplicaTask(0, OneThirdRule(8), FaultFreeOracle(5),
                                   [1, 2, 3, 4, 5])],
                max_rounds=5,
            )

        with pytest.raises(ValueError, match="sized for n=8"):
            get_backend("scalar").run(bad_batch())
        with pytest.raises(ValueError, match="sized for n=8"):
            get_backend("batch").run(bad_batch())

    def test_fallback_on_unknown_algorithm(self):
        class Custom(OneThirdRule):
            def transition(self, round, process, state, received):
                return state  # never changes -> different from OneThirdRule

        backend = BatchBackend()
        tasks = [
            ReplicaTask(s, Custom(3), FaultFreeOracle(3), [1, 2, 3]) for s in range(2)
        ]
        outcomes = backend.run(ReplicaBatch(n=3, tasks=tasks, max_rounds=5))
        if have_numpy():
            assert "no batched kernel" in backend.last_fallback_reason
        assert all(not o.decisions for o in outcomes)


class TestMonitoredBatches:
    def _make(self, fault_model, stop=None, horizon=False):
        n = 5
        pi0 = frozenset(range(n))
        names = tuple(MONITOR_NAMES)
        batch = make_batch(
            OneThirdRule, fault_model, n, 7, 6,
            run_full_horizon=horizon,
            monitor_factory=lambda: build_monitor_bank(
                n, names, pi0=pi0, stop_after_held=stop
            ),
            monitor_spec=MonitorSpec(
                predicates=names, pi0_mask=mask_of(pi0), stop_after_held=stop
            ),
        )
        return batch

    @pytest.mark.parametrize("fault_model", ["partition-heal", "lossy", "crash-recovery"])
    @pytest.mark.parametrize("stop,horizon", [(None, False), (4, False), (None, True), (3, True)])
    def test_all_six_monitors_agree(self, fault_model, stop, horizon):
        scalar = get_backend("scalar").run(self._make(fault_model, stop, horizon))
        batched = get_backend("batch").run(self._make(fault_model, stop, horizon))
        assert batched == scalar

    def test_spec_only_monitoring_survives_the_fallback(self):
        """A batch carrying only a MonitorSpec must monitor on *every* path.

        The fallback loop synthesises the scalar MonitorBank from the spec,
        so reports and early-stop timing are identical whether or not
        vectorisation engaged.
        """
        def spec_only():
            batch = self._make("partition-heal", stop=3, horizon=True)
            batch.monitor_factory = None
            return batch

        forced = BatchBackend(force_fallback=True).run(spec_only())
        free = BatchBackend().run(spec_only())
        assert forced == free
        assert all(o.predicate_reports for o in forced)
        assert all(o.stopped_early for o in forced)

    @needs_numpy
    def test_opaque_monitor_factory_falls_back(self):
        batch = self._make("partition-heal")
        batch.monitor_spec = None
        backend = BatchBackend()
        outcomes = backend.run(batch)
        assert backend.last_fallback_reason == "opaque monitor factory without a MonitorSpec"
        assert outcomes == get_backend("scalar").run(self._make("partition-heal"))


class TestRngReplicate:
    def test_replicate_reproduces_the_single_run_streams(self):
        base = SeededRng(41)
        for index in (0, 1, 5):
            replica = base.replicate(index)
            single = SeededRng(41 + index)
            assert [replica.stream("oracle.loss").random() for _ in range(8)] == [
                single.stream("oracle.loss").random() for _ in range(8)
            ]
            assert [replica.stream("values").random() for _ in range(4)] == [
                single.stream("values").random() for _ in range(4)
            ]

    def test_replicate_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            SeededRng(0).replicate(-1)
