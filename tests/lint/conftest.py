"""Shared helpers for the ``repro.lint`` test suite.

Rule-level tests parse snippets straight into a
:class:`~repro.lint.rules.FileContext`; engine-level tests write little
file trees under ``tmp_path`` and run :func:`~repro.lint.engine.lint_paths`
over them (audit rules off by default, so fixtures stay hermetic).
"""

from __future__ import annotations

import textwrap
from pathlib import Path
from typing import Dict, List

from repro.lint.engine import LintResult, lint_paths
from repro.lint.findings import Finding
from repro.lint.rules import FileContext, get_rule


def check_rule(code: str, source: str, module: str = "repro.fake",
               path: str = "", is_package: bool = False) -> List[Finding]:
    """Run one source rule over a dedented snippet; returns its findings."""
    if not path:
        tail = "/__init__.py" if is_package else ".py"
        path = "src/" + module.replace(".", "/") + tail
    ctx = FileContext.parse(path, module, textwrap.dedent(source),
                            is_package=is_package)
    return get_rule(code).check(ctx)


def write_tree(root: Path, files: Dict[str, str]) -> Path:
    """Materialise ``{relpath: source}`` under *root* (dedented)."""
    for rel, text in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def run_lint(root: Path, files: Dict[str, str], **kwargs) -> LintResult:
    """Write *files* under *root* and lint the tree (no audit by default)."""
    write_tree(root, files)
    kwargs.setdefault("audit", False)
    kwargs.setdefault("root", root)
    return lint_paths([str(root)], **kwargs)


def codes_of(result: LintResult) -> List[str]:
    return [finding.code for finding in result.findings]
