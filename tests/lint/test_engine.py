"""Engine behaviour: module naming, file collection, parse failures."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.engine import lint_paths, module_name_of

from .conftest import codes_of, run_lint, write_tree


@pytest.mark.parametrize("path, module", [
    ("src/repro/batch/backends.py", "repro.batch.backends"),
    ("src/repro/batch/__init__.py", "repro.batch"),
    ("src/repro/__init__.py", "repro"),
    ("repro/core/types.py", "repro.core.types"),
    ("tests/batch/test_backends.py", None),
    ("somewhere/else.py", None),
])
def test_module_name_of(path, module):
    assert module_name_of(Path(path)) == module


def test_unparseable_file_is_a_rep000_finding(tmp_path):
    result = run_lint(tmp_path, {"repro/broken.py": "def broken(:\n"})
    assert codes_of(result) == ["REP000"]
    assert "does not parse" in result.findings[0].message


def test_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        lint_paths([str(tmp_path / "no-such-dir")])


def test_unknown_select_code_raises(tmp_path):
    with pytest.raises(KeyError, match="REP999"):
        lint_paths([str(tmp_path)], select=["REP999"])


def test_explicit_file_paths_and_dedup(tmp_path):
    write_tree(tmp_path, {"repro/mod.py": "import random\n"})
    target = tmp_path / "repro" / "mod.py"
    result = lint_paths([str(target), str(tmp_path)], audit=False,
                        root=tmp_path)
    assert result.files == 1  # the file is linted once, not twice
    assert codes_of(result) == ["REP001"]


def test_findings_are_sorted_by_location(tmp_path):
    result = run_lint(tmp_path, {
        "repro/b.py": "import random\nfrom time import time\n",
        "repro/a.py": "import numpy\n",
    })
    rendered = [(f.path, f.line) for f in result.findings]
    assert rendered == sorted(rendered)


def test_paths_in_findings_are_root_relative(tmp_path):
    result = run_lint(tmp_path, {"repro/mod.py": "import random\n"})
    assert result.findings[0].path == "repro/mod.py"
