"""Parity-audit rules (REP101-REP106): real registries audit clean, and
deliberately broken registrations are caught.

The broken fixtures are injected through :class:`ProjectContext`'s
providers -- the real registries are never mutated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import pytest

from repro.algorithms.batched import _KERNELS, BatchKernel
from repro.lint.parity import ProjectContext
from repro.lint.rules import audit_rules, get_rule

AUDIT_CODES = ("REP101", "REP102", "REP103", "REP105", "REP106")


@pytest.mark.parametrize("code", AUDIT_CODES)
def test_real_registries_audit_clean(code):
    findings = get_rule(code).audit(ProjectContext())
    assert findings == [], [f.render() for f in findings]


def test_audit_rules_cover_all_audit_codes():
    assert tuple(r.code for r in audit_rules(None)) == AUDIT_CODES


# --- REP101: counter-dual signature handshake ---------------------------- #

class _SignaturelessFamily:
    """A scalar family that forgot the eligibility handshake."""


class _SomeDual:
    pass


class _ProperFamily:
    @classmethod
    def counter_batch_signature(cls):
        return ("proper", 1)


def test_rep101_catches_missing_signature():
    project = ProjectContext(duals={_SignaturelessFamily: _SomeDual})
    findings = get_rule("REP101").audit(project)
    assert len(findings) == 1
    assert "counter_batch_signature" in findings[0].message


def test_rep101_catches_non_class_dual():
    project = ProjectContext(duals={_ProperFamily: "not a class"})
    findings = get_rule("REP101").audit(project)
    assert len(findings) == 1
    assert "not a constructible class" in findings[0].message


# --- REP102: batched kernel registration coherence ------------------------ #

class _UndeclaredKernel(BatchKernel):
    """A kernel that never names its scalar algorithm."""


class _MisflaggedKernel(BatchKernel):
    algorithm_class = _ProperFamily
    super_batchable = "yes"  # not a bool


def test_rep102_catches_non_kernel_registration():
    project = ProjectContext(kernels={_ProperFamily: object})
    findings = get_rule("REP102").audit(project)
    assert len(findings) == 1
    assert "not a BatchKernel subclass" in findings[0].message


def test_rep102_catches_undeclared_algorithm():
    project = ProjectContext(kernels={_ProperFamily: _UndeclaredKernel})
    findings = get_rule("REP102").audit(project)
    assert any("declares no algorithm_class" in f.message for f in findings)


def test_rep102_catches_mismatched_registration():
    # register a real kernel under a *different* real algorithm class
    algorithm_cls, kernel_cls = next(iter(sorted(
        _KERNELS.items(), key=lambda kv: kv[0].__name__)))
    others = [a for a in _KERNELS if a is not algorithm_cls]
    assert others, "fixture needs at least two registered kernels"
    project = ProjectContext(kernels={others[0]: kernel_cls})
    findings = get_rule("REP102").audit(project)
    assert len(findings) == 1
    assert "one of the two is wrong" in findings[0].message


def test_rep102_catches_non_boolean_super_batchable():
    project = ProjectContext(kernels={_ProperFamily: _MisflaggedKernel})
    findings = get_rule("REP102").audit(project)
    assert any("super_batchable" in f.message for f in findings)


# --- REP103: scenario backend resolution ---------------------------------- #

class _BrokenRegistry:
    """Resolves every sweep choice to a backend that does not exist, and
    registers a batch builder without the per-cell runner it implies."""

    def scenario_names(self):
        return ["demo", "builder-only"]

    def batchable_scenario_names(self):
        return ["demo"]

    def resolve_backend(self, name, requested):
        return "no-such-backend"

    def batch_runner(self, name):
        return (lambda: None) if name == "demo" else None

    def batch_builder(self, name):
        return (lambda: None) if name == "builder-only" else None


def _no_backend(name):
    raise KeyError(f"unknown backend {name!r}")


def test_rep103_catches_unresolvable_backends_and_builder_without_runner():
    project = ProjectContext(registry=_BrokenRegistry(),
                             get_backend=_no_backend)
    findings = get_rule("REP103").audit(project)
    messages = [f.message for f in findings]
    # one finding per unresolvable sweep choice for 'demo'
    assert sum("no-such-backend" in m for m in messages) == 5
    assert any("no batch_runner" in m for m in messages)


# --- REP106: compiled kernel registration coherence ----------------------- #

@dataclass(frozen=True)
class _CompiledSpec:
    algorithm_class: Any
    batch_kernel_class: Any
    parity_test: str
    runner: Any


class _DualedKernel(BatchKernel):
    algorithm_class = _ProperFamily


def _compiled_project(spec, kernel=_DualedKernel):
    return ProjectContext(
        kernels={_ProperFamily: kernel},
        compiled_kernels={kernel: spec},
    )


def _good_spec(**overrides):
    spec = dict(
        algorithm_class=_ProperFamily,
        batch_kernel_class=_DualedKernel,
        parity_test="tests/compiled/test_compiled_parity.py::test_classic_grid_parity",
        runner=lambda: None,
    )
    spec.update(overrides)
    return _CompiledSpec(**spec)


def test_rep106_accepts_a_coherent_registration():
    findings = get_rule("REP106").audit(_compiled_project(_good_spec()))
    assert findings == [], [f.render() for f in findings]


def test_rep106_catches_mismatched_algorithm_class():
    findings = get_rule("REP106").audit(
        _compiled_project(_good_spec(algorithm_class=_SignaturelessFamily)))
    assert any("algorithm_class" in f.message for f in findings)


def test_rep106_catches_missing_parity_marker():
    findings = get_rule("REP106").audit(
        _compiled_project(_good_spec(parity_test="tests/compiled/test_compiled_parity.py")))
    assert any("parity-test marker" in f.message for f in findings)


def test_rep106_catches_missing_parity_file():
    findings = get_rule("REP106").audit(
        _compiled_project(_good_spec(parity_test="tests/no_such_file.py::test_x")))
    assert any("missing file" in f.message for f in findings)


def test_rep106_catches_unregistered_batch_kernel():
    project = ProjectContext(
        kernels={},  # the compiled dual's kernel is not batch-registered
        compiled_kernels={_DualedKernel: _good_spec()},
    )
    findings = get_rule("REP106").audit(project)
    assert any("not itself a registered batch kernel" in f.message
               for f in findings)


def test_rep106_catches_non_callable_runner():
    findings = get_rule("REP106").audit(
        _compiled_project(_good_spec(runner=None)))
    assert any("callable runner" in f.message for f in findings)


# --- REP105: RunRecord stays a slim picklable wire record ----------------- #

@dataclass
class _FatRecord:
    blob: Dict[str, Any]  # stored as a string under future annotations
    result: Any = None  # compare defaults to True -> violation


@dataclass
class _BloatedRecord:
    name: str
    payload: str = field(default_factory=lambda: "x" * 100000)
    result: Optional[Any] = field(default=None, compare=False)


def test_rep105_catches_fat_annotations_and_comparing_result():
    findings = get_rule("REP105").audit(ProjectContext(run_record=_FatRecord))
    messages = [f.message for f in findings]
    assert any("wire vocabulary" in m for m in messages)
    assert any("compare=False" in m for m in messages)


def test_rep105_catches_fat_pickles():
    findings = get_rule("REP105").audit(
        ProjectContext(run_record=_BloatedRecord))
    assert any("stopped being slim" in f.message for f in findings)


def test_rep105_rejects_non_dataclass():
    findings = get_rule("REP105").audit(ProjectContext(run_record=dict))
    assert len(findings) == 1
    assert "not a dataclass" in findings[0].message
