"""The ``python -m repro.lint`` CLI: flags, exit codes, repo round-trip."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.cli import DEFAULT_BASELINE, main
from repro.lint.report import JSON_SCHEMA
from repro.lint.rules import rule_codes

from .conftest import write_tree

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_TREE = {"repro/mod.py": "import random\nfrom time import time\n"}
CLEAN_TREE = {"repro/mod.py": "VALUE = 1\n"}


def test_list_rules_mentions_every_code(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in rule_codes():
        assert code in out


def test_exit_one_on_findings(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, BAD_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit"]) == 1
    out = capsys.readouterr().out
    assert "REP001" in out and "REP003" in out
    assert "2 findings" in out


def test_exit_zero_on_clean_tree(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, CLEAN_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_format(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, BAD_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit", "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == JSON_SCHEMA
    assert payload["summary"]["findings"] == 2
    assert payload["summary"]["clean"] is False
    assert {f["code"] for f in payload["findings"]} == {"REP001", "REP003"}


def test_select_restricts_rules(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, BAD_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit", "--select", "REP003"]) == 1
    out = capsys.readouterr().out
    assert "REP003" in out and "REP001" not in out


def test_unknown_select_code_is_a_usage_error(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, CLEAN_TREE)
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit) as excinfo:
        main(["repro", "--no-audit", "--select", "REP999"])
    assert excinfo.value.code == 2


def test_update_baseline_round_trip(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, BAD_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit", "--update-baseline"]) == 0
    assert "wrote 2 findings" in capsys.readouterr().out
    assert (tmp_path / DEFAULT_BASELINE).is_file()
    # the default baseline in cwd is picked up without a flag
    assert main(["repro", "--no-audit"]) == 0
    assert "2 baselined" in capsys.readouterr().out


def test_stale_baseline_is_reported_not_fatal(tmp_path, monkeypatch, capsys):
    write_tree(tmp_path, BAD_TREE)
    monkeypatch.chdir(tmp_path)
    assert main(["repro", "--no-audit", "--update-baseline"]) == 0
    capsys.readouterr()
    # pay down one of the two grandfathered findings
    write_tree(tmp_path, {"repro/mod.py": "import random\n"})
    assert main(["repro", "--no-audit"]) == 0
    out = capsys.readouterr().out
    assert "stale baseline" in out


def test_unloadable_baseline_is_a_usage_error(tmp_path, monkeypatch):
    write_tree(tmp_path, CLEAN_TREE)
    (tmp_path / "bogus.json").write_text("{}")
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit) as excinfo:
        main(["repro", "--no-audit", "--baseline", "bogus.json"])
    assert excinfo.value.code == 2


def test_repo_lints_clean():
    """The acceptance invocation: the repo itself carries zero findings."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "src", "tests"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "0 findings" in proc.stdout
