"""Fixture tests for the determinism rules (REP001-REP006, REP104).

Each rule gets the trio the linter's contract promises: the violation
*fires*, an inline ``# repro: noqa[...] -- reason`` *suppresses* it, and a
baseline built from the findings *grandfathers* it.
"""

from __future__ import annotations

import pytest

from repro.lint.baseline import Baseline

from .conftest import check_rule, codes_of, run_lint

#: (code, fixture path, source, 1-based line the finding lands on).
VIOLATIONS = [
    ("REP001", "repro/fake.py", "import random\n", 1),
    ("REP001", "repro/fake.py", "from random import Random\n", 1),
    ("REP002", "repro/fake.py", "import numpy\n", 1),
    ("REP002", "repro/fake.py", "from numpy import asarray\n", 1),
    ("REP003", "repro/fake.py",
     "import time\n\n\ndef stamp():\n    return time.time()\n", 5),
    ("REP003", "repro/fake.py", "from time import time\n", 1),
    ("REP003", "repro/fake.py", "import secrets\n", 1),
    ("REP003", "repro/fake.py",
     "import uuid\n\n\ndef tag():\n    return uuid.uuid4()\n", 5),
    ("REP004", "repro/fake.py",
     "def order(xs):\n    return sorted(xs, key=id)\n", 2),
    ("REP004", "repro/fake.py",
     "def order(xs):\n    xs.sort(key=lambda x: id(x))\n", 2),
    ("REP005", "repro/fake.py",
     "def walk():\n    return [x for x in {1, 2, 3}]\n", 2),
    ("REP005", "repro/fake.py",
     "def walk(xs):\n    for x in set(xs):\n        print(x)\n", 2),
    ("REP006", "repro/core/fake.py", "import repro.batch\n", 1),
    ("REP006", "repro/engine/fake.py", "from repro.runner import sweep\n", 1),
    ("REP104", "repro/batch/fake.py",
     "def _fallback_reason(cell):\n    return 'numpy went missing'\n", 2),
]

IDS = [f"{code}-{i}" for i, (code, _, _, _) in enumerate(VIOLATIONS)]


@pytest.mark.parametrize("code, rel, source, line", VIOLATIONS, ids=IDS)
def test_violation_fires(tmp_path, code, rel, source, line):
    result = run_lint(tmp_path, {rel: source}, select=[code])
    assert codes_of(result) == [code]
    assert result.findings[0].line == line
    assert result.findings[0].path == rel


@pytest.mark.parametrize("code, rel, source, line", VIOLATIONS, ids=IDS)
def test_violation_suppressed(tmp_path, code, rel, source, line):
    lines = source.splitlines()
    lines[line - 1] += f"  # repro: noqa[{code}] -- fixture demo"
    result = run_lint(tmp_path, {rel: "\n".join(lines) + "\n"})
    assert result.clean, [f.render() for f in result.findings]
    assert result.suppressed == 1


@pytest.mark.parametrize("code, rel, source, line", VIOLATIONS, ids=IDS)
def test_violation_baselined(tmp_path, code, rel, source, line):
    first = run_lint(tmp_path, {rel: source}, select=[code])
    baseline = Baseline.from_findings(first.findings)
    again = run_lint(tmp_path, {rel: source}, select=[code], baseline=baseline)
    assert again.clean
    assert again.baselined == 1
    assert again.stale_baseline == []


# --- per-rule negatives: the sanctioned patterns stay silent ------------- #

def test_rep001_type_checking_guard_is_sanctioned():
    source = """\
        from typing import TYPE_CHECKING

        if TYPE_CHECKING:
            import random
    """
    assert check_rule("REP001", source) == []


def test_rep001_ignores_non_repro_modules():
    ctx_findings = check_rule("REP001", "import random\n", module="repro.fake")
    assert ctx_findings  # sanity: same snippet fires inside the package
    from repro.lint.rules import get_rule

    assert not get_rule("REP001").applies_to(None)
    assert not get_rule("REP001").applies_to("tests.something")


def test_rep002_optional_module_is_exempt():
    from repro.lint.rules import get_rule

    rule = get_rule("REP002")
    assert not rule.applies_to("repro._optional")
    assert rule.applies_to("repro.batch.backends")


def test_rep003_perf_counter_is_allowed():
    source = """\
        import time


        def took():
            return time.perf_counter()
    """
    assert check_rule("REP003", source) == []


def test_rep004_deterministic_keys_are_fine():
    assert check_rule(
        "REP004", "def order(xs):\n    return sorted(xs, key=str)\n"
    ) == []


def test_rep005_sorted_set_is_fine():
    assert check_rule(
        "REP005", "def walk(xs):\n    return [x for x in sorted(set(xs))]\n"
    ) == []


def test_rep006_function_local_import_is_sanctioned():
    source = """\
        def lazy():
            from repro.batch import backends

            return backends
    """
    assert check_rule("REP006", source, module="repro.rounds.fake") == []


def test_rep006_relative_import_in_package_init_resolves_right():
    # ``from .backend import x`` inside repro/rounds/__init__.py targets
    # repro.rounds.backend -- same layer, not a violation.
    assert check_rule(
        "REP006", "from .backend import get_backend\n",
        module="repro.rounds", is_package=True,
    ) == []


def test_rep006_relative_import_crossing_layers_is_caught():
    findings = check_rule(
        "REP006", "from ..batch import backends\n",
        module="repro.rounds.fake",
    )
    assert len(findings) == 1
    assert "repro.batch" in findings[0].message


def test_rep006_lint_is_a_leaf():
    findings = check_rule(
        "REP006", "import repro.lint\n", module="repro.runner.fake"
    )
    assert len(findings) == 1
    assert "leaf" in findings[0].message
    # ...but the linter may of course import itself.
    assert check_rule(
        "REP006", "from repro.lint import rules\n", module="repro.lint.cli"
    ) == []


def test_rep104_rendered_enum_values_are_fine():
    source = """\
        from repro.rounds.fallback import FallbackReason


        def _fallback_reason(cell):
            if cell is None:
                return FallbackReason.FORCED.render()
            return None
    """
    assert check_rule("REP104", source, module="repro.batch.fake") == []


def test_rep104_fstring_counts_once():
    source = """\
        def _eligibility(kernel):
            return (False, f"no kernel for {kernel}")
    """
    findings = check_rule("REP104", source, module="repro.batch.fake")
    assert len(findings) == 1


def test_rep104_other_functions_may_build_strings():
    source = """\
        def describe(cell):
            return f"cell {cell}"
    """
    assert check_rule("REP104", source, module="repro.batch.fake") == []
