"""Baseline matching, counts, staleness, and file round-trips."""

from __future__ import annotations

import json

import pytest

from repro.lint.baseline import BASELINE_VERSION, Baseline, BaselineEntry
from repro.lint.findings import Finding

from .conftest import codes_of, run_lint


def _finding(code="REP001", path="repro/mod.py", line=1, text="import random"):
    return Finding(code=code, path=path, line=line, col=1,
                   message="m", line_text=text)


def test_absorbs_by_key_not_line_number():
    baseline = Baseline([BaselineEntry("REP001", "repro/mod.py",
                                       "import random")])
    # same code/path/text on a *different* line still matches
    assert baseline.absorbs(_finding(line=40))
    # ...but only count times
    assert not baseline.absorbs(_finding(line=41))


def test_count_semantics():
    baseline = Baseline([BaselineEntry("REP001", "repro/mod.py",
                                       "import random", count=2)])
    assert baseline.absorbs(_finding(line=1))
    assert baseline.absorbs(_finding(line=9))
    assert not baseline.absorbs(_finding(line=17))


def test_stale_entries_are_reported():
    baseline = Baseline([
        BaselineEntry("REP001", "repro/mod.py", "import random"),
        BaselineEntry("REP003", "repro/old.py", "time.time()"),
    ])
    baseline.absorbs(_finding())
    stale = baseline.stale()
    assert [entry.key for entry in stale] == [
        ("REP003", "repro/old.py", "time.time()")
    ]


def test_file_round_trip(tmp_path):
    original = Baseline.from_findings([
        _finding(), _finding(line=7),  # identical key -> count 2
        _finding(code="REP005", text="for x in {1}:"),
    ])
    target = tmp_path / "baseline.json"
    original.write(str(target))
    loaded = Baseline.load(str(target))
    assert [e.key for e in loaded.entries] == [e.key for e in original.entries]
    assert loaded.entries[0].count == 2
    payload = json.loads(target.read_text())
    assert payload["version"] == BASELINE_VERSION


def test_version_mismatch_rejected(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"version": 99, "entries": []}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(str(target))


def test_engine_grandfathers_and_gates_new_findings(tmp_path):
    files = {"repro/mod.py": "import random\n"}
    first = run_lint(tmp_path, files)
    baseline = Baseline.from_findings(first.findings)

    # the grandfathered finding no longer fails the run...
    again = run_lint(tmp_path, files, baseline=baseline)
    assert again.clean
    assert again.baselined == 1

    # ...but a new violation in the same file still does
    grown = {"repro/mod.py": "import random\nfrom time import time\n"}
    gated = run_lint(tmp_path, grown,
                     baseline=Baseline.from_findings(first.findings))
    assert codes_of(gated) == ["REP003"]
    assert gated.baselined == 1
