"""Suppression parsing and REP007 hygiene."""

from __future__ import annotations

from .conftest import codes_of, run_lint


def test_house_form_suppresses_and_counts(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "import random  # repro: noqa[REP001] -- fixture\n",
    })
    assert result.clean
    assert result.suppressed == 1


def test_house_form_covers_multiple_codes(tmp_path):
    line = ("import random  "
            "# repro: noqa[REP001,REP003] -- fixture hits two rules\n")
    # only REP001 fires here, so the REP003 half of the comment is unused
    result = run_lint(tmp_path, {"repro/mod.py": line})
    assert result.suppressed == 1
    assert codes_of(result) == ["REP007"]
    assert "unused suppression of REP003" in result.findings[0].message


def test_ruff_shared_form_suppresses(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "import random  # noqa: REP001\n",
    })
    assert result.clean
    assert result.suppressed == 1


def test_ruff_form_ignores_foreign_codes(tmp_path):
    # F401 belongs to ruff; our linter neither uses nor complains about it.
    result = run_lint(tmp_path, {
        "repro/mod.py": "import random  # noqa: REP001, F401\n",
    })
    assert result.clean
    assert result.suppressed == 1


def test_bare_noqa_never_suppresses(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "import random  # noqa\n",
    })
    assert codes_of(result) == ["REP001"]
    assert result.suppressed == 0


def test_missing_reason_is_flagged_but_still_suppresses(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "import random  # repro: noqa[REP001]\n",
    })
    assert result.suppressed == 1
    assert codes_of(result) == ["REP007"]
    assert "justification" in result.findings[0].message


def test_unknown_code_is_flagged(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "x = 1  # repro: noqa[REP999] -- no such rule\n",
    })
    assert codes_of(result) == ["REP007"]
    assert "unknown rule code 'REP999'" in result.findings[0].message


def test_malformed_code_is_flagged(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "x = 1  # repro: noqa[REP01] -- too short\n",
    })
    assert codes_of(result) == ["REP007"]
    assert "malformed" in result.findings[0].message


def test_unused_suppression_is_flagged(tmp_path):
    result = run_lint(tmp_path, {
        "repro/mod.py": "x = 1  # repro: noqa[REP001] -- nothing here\n",
    })
    assert codes_of(result) == ["REP007"]
    assert "unused" in result.findings[0].message


def test_unused_check_skipped_under_select(tmp_path):
    # With --select, a suppression for an unselected rule is not "unused".
    result = run_lint(
        tmp_path,
        {"repro/mod.py": "x = 1  # repro: noqa[REP001] -- held for REP001\n"},
        select=["REP005"],
    )
    assert result.clean


def test_suppression_syntax_inside_strings_is_inert(tmp_path):
    source = '''\
        DOC = """the form is `# repro: noqa[REP001] -- reason`"""
        EXAMPLE = "import random  # noqa: REP001"
    '''
    result = run_lint(tmp_path, {"repro/mod.py": source})
    assert result.clean, [f.render() for f in result.findings]
    assert result.suppressed == 0


def test_hygiene_applies_outside_the_package_too(tmp_path):
    # No repro/ directory in the path: determinism rules don't apply, but
    # suppression hygiene (REP007) still does.
    result = run_lint(tmp_path, {
        "helpers/util.py": "x = 1  # repro: noqa[REP999] -- bogus\n",
    })
    assert codes_of(result) == ["REP007"]
