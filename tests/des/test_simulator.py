"""Unit tests for the event-driven asynchronous simulator."""

from __future__ import annotations

import pytest

from repro.des import ChannelConfig, DESProcess, EventSimulator


class EchoProcess(DESProcess):
    """Test process: broadcasts one hello, echoes everything it receives once."""

    def __init__(self, process_id, n):
        super().__init__(process_id, n)
        self.received = []
        self.timers_fired = []
        self.recovered = 0

    def on_start(self, ctx):
        ctx.broadcast(("hello", self.process_id), include_self=False)
        ctx.set_timer(5.0, "tick")

    def on_message(self, ctx, sender, payload):
        self.received.append((sender, payload, ctx.now))
        if payload[0] == "hello":
            ctx.send(sender, ("echo", self.process_id))

    def on_timer(self, ctx, name):
        self.timers_fired.append((name, ctx.now))

    def on_recover(self, ctx):
        self.recovered += 1
        ctx.stable_store("recovered", self.recovered)


class DeciderProcess(DESProcess):
    """Decides its own id as soon as it starts (for decision bookkeeping tests)."""

    def on_start(self, ctx):
        ctx.decide(self.process_id)
        ctx.decide(self.process_id + 100)  # ignored: only the first decision counts


class TestChannelConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelConfig(min_delay=-1.0)
        with pytest.raises(ValueError):
            ChannelConfig(min_delay=3.0, max_delay=1.0)
        with pytest.raises(ValueError):
            ChannelConfig(loss_probability=1.0)


class TestBasicDelivery:
    def test_messages_flow_and_are_counted(self):
        processes = [EchoProcess(p, 3) for p in range(3)]
        simulator = EventSimulator(processes, seed=1)
        simulator.run(until=100.0)
        # Everyone got 2 hellos and 2 echoes.
        for process in processes:
            kinds = [payload[0] for _, payload, _ in process.received]
            assert kinds.count("hello") == 2
            assert kinds.count("echo") == 2
        assert simulator.messages_sent == simulator.messages_delivered
        assert simulator.messages_lost == 0

    def test_delays_respect_channel_bounds(self):
        processes = [EchoProcess(p, 2) for p in range(2)]
        channel = ChannelConfig(min_delay=1.0, max_delay=3.0)
        simulator = EventSimulator(processes, channel=channel, seed=2)
        simulator.run(until=50.0)
        for process in processes:
            for _, payload, time in process.received:
                if payload[0] == "hello":
                    assert 1.0 <= time <= 3.0

    def test_lossy_channel_drops_messages(self):
        processes = [EchoProcess(p, 2) for p in range(2)]
        channel = ChannelConfig(loss_probability=0.9)
        simulator = EventSimulator(processes, channel=channel, seed=3)
        simulator.run(until=50.0)
        assert simulator.messages_lost > 0

    def test_determinism(self):
        def run(seed):
            processes = [EchoProcess(p, 3) for p in range(3)]
            simulator = EventSimulator(processes, seed=seed)
            simulator.run(until=30.0)
            return [process.received for process in processes]

        assert run(7) == run(7)


class TestTimers:
    def test_timer_fires_once(self):
        processes = [EchoProcess(0, 1)]
        simulator = EventSimulator(processes, seed=1)
        simulator.run(until=20.0)
        assert processes[0].timers_fired == [("tick", 5.0)]

    def test_cancelled_timer_does_not_fire(self):
        class Canceller(DESProcess):
            def __init__(self):
                super().__init__(0, 1)
                self.fired = []

            def on_start(self, ctx):
                timer_id = ctx.set_timer(5.0, "doomed")
                ctx.set_timer(1.0, "keep")
                self._doomed = timer_id

            def on_timer(self, ctx, name):
                self.fired.append(name)

        process = Canceller()
        simulator = EventSimulator([process], seed=1)
        simulator._start()
        simulator.cancel_timer(0, 1)  # the first timer id handed out is 1
        simulator.run(until=20.0)
        assert "doomed" not in process.fired
        assert "keep" in process.fired

    def test_negative_timer_rejected(self):
        simulator = EventSimulator([EchoProcess(0, 1)])
        with pytest.raises(ValueError):
            simulator.post_timer(0, -1.0, "bad")


class TestCrashRecovery:
    def test_crashed_process_receives_nothing(self):
        processes = [EchoProcess(p, 2) for p in range(2)]
        simulator = EventSimulator(processes, crash_times={1: 0.0}, seed=1)
        simulator.run(until=30.0)
        assert processes[1].received == []
        assert not simulator.is_up(1)

    def test_recovery_invokes_handler_and_resumes_delivery(self):
        processes = [EchoProcess(p, 2) for p in range(2)]
        simulator = EventSimulator(
            processes, crash_times={1: 1.0}, recovery_times={1: 10.0}, seed=1
        )
        simulator.run(until=30.0)
        assert processes[1].recovered == 1
        assert simulator.is_up(1)
        assert simulator.stable_storage[1]["recovered"] == 1
        assert simulator.crash_count[1] == 1

    def test_recovery_without_crash_rejected(self):
        with pytest.raises(ValueError):
            EventSimulator([EchoProcess(0, 1)], recovery_times={0: 5.0})

    def test_eventually_up_processes(self):
        processes = [EchoProcess(p, 3) for p in range(3)]
        simulator = EventSimulator(
            processes,
            crash_times={1: 5.0, 2: 5.0},
            recovery_times={2: 10.0},
            seed=1,
        )
        assert simulator.eventually_up_processes() == frozenset({0, 2})


class TestDecisions:
    def test_only_first_decision_is_recorded(self):
        processes = [DeciderProcess(p, 2) for p in range(2)]
        simulator = EventSimulator(processes, seed=1)
        simulator.run(until=10.0)
        assert simulator.decision_values() == {0: 0, 1: 1}
        assert simulator.all_decided()

    def test_run_until_all_decided_stops_early(self):
        processes = [DeciderProcess(p, 2) for p in range(2)]
        simulator = EventSimulator(processes, seed=1)
        simulator.run_until_all_decided(until=1000.0)
        assert simulator.now <= 1.0

    def test_failure_detector_registry(self):
        simulator = EventSimulator([EchoProcess(0, 1)])
        with pytest.raises(KeyError):
            simulator.query_failure_detector("default", 0)
        simulator.register_failure_detector("default", lambda sim, p: frozenset())
        assert simulator.query_failure_detector("default", 0) == frozenset()
