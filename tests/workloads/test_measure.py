"""Integration tests of the measurement harness against the paper's bounds.

Each test runs a small instance of the corresponding experiment and asserts
the paper's claim (measured <= bound, shape of the comparison).  These tests
are the fast versions of the sweeps in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.workloads import (
    measure_arbitrary_p2otr,
    measure_corollary4,
    measure_ratio_noninitial_vs_initial,
    measure_theorem3,
    measure_theorem5,
    measure_theorem6,
    measure_theorem7,
)


class TestDownPeriodMeasurements:
    def test_theorem3_within_bound(self):
        for seed in (0, 1):
            measurement = measure_theorem3(4, 2, seed=seed)
            assert measurement.within_bound
            assert measurement.measured is not None

    def test_theorem5_within_bound_and_tight(self):
        measurement = measure_theorem5(4, 2, seed=0)
        assert measurement.within_bound
        # With worst-case step gaps and delays, the nice-run measurement is
        # exactly the analytic round length: the bound is tight.
        assert measurement.measured == pytest.approx(measurement.bound)

    def test_corollary4_measurements(self):
        p2otr, p11otr = measure_corollary4(4, seed=0)
        assert p2otr.within_bound
        assert p11otr.within_bound
        assert p11otr.bound < p2otr.bound

    def test_ratio_between_non_initial_and_initial(self):
        result = measure_ratio_noninitial_vs_initial(4, seed=0)
        assert 1.5 <= result["bound_ratio"] <= 1.7
        assert "measured_ratio" in result
        # The measured ratio cannot exceed the bound ratio by much; it stays
        # in the same ballpark (the paper's "approximately 3/2").
        assert result["measured_ratio"] <= result["bound_ratio"] + 0.2

    def test_scaling_with_n(self):
        small = measure_theorem5(3, 2, seed=0)
        large = measure_theorem5(6, 2, seed=0)
        assert small.measured < large.measured
        assert small.bound < large.bound


class TestArbitraryPeriodMeasurements:
    def test_theorem6_within_bound(self):
        measurement = measure_theorem6(4, 1, 2, seed=0)
        assert measurement.within_bound
        assert measurement.measured is not None

    def test_theorem7_within_bound(self):
        for n, f in ((3, 1), (4, 1)):
            measurement = measure_theorem7(n, f, 2, seed=0)
            assert measurement.within_bound

    def test_theorem6_costs_more_than_theorem7(self):
        non_initial = measure_theorem6(4, 1, 2, seed=0)
        initial = measure_theorem7(4, 1, 2, seed=0)
        assert non_initial.bound > initial.bound

    def test_full_stack_consensus_within_p2otr_bound(self):
        measurement = measure_arbitrary_p2otr(4, 1, seed=0)
        assert measurement.within_bound
        decisions = measurement.extra["decisions"]
        assert len(set(decisions.values())) == 1
