"""Integration tests of the end-to-end comparison scenarios (E7 / E8 / E9)."""

from __future__ import annotations

import pytest

from repro.workloads import run_aguilera, run_chandra_toueg, run_ho_stack


class TestHOStackScenarios:
    """The same HO stack, unchanged, under every fault model (Section 3.3)."""

    @pytest.mark.parametrize(
        "fault_model", ["fault-free", "crash-stop", "crash-recovery", "lossy"]
    )
    def test_ho_stack_solves_consensus_under_every_fault_model(self, fault_model):
        result = run_ho_stack(fault_model, n=4, seed=1)
        assert result.safe
        assert result.verdict.termination, result.verdict.violations

    def test_fault_classes_are_reported(self):
        assert run_ho_stack("fault-free", n=4, seed=0).extra["fault_class"] == "fault-free"
        assert run_ho_stack("crash-recovery", n=4, seed=0).extra["fault_class"] in (
            "dynamic-transient",
            "static-transient",
        )


class TestFailureDetectorScenarios:
    def test_chandra_toueg_solves_crash_stop(self):
        result = run_chandra_toueg("crash-stop", n=4, seed=1)
        assert result.solved

    def test_chandra_toueg_fails_to_terminate_under_crash_recovery(self):
        result = run_chandra_toueg("crash-recovery", n=4, seed=1)
        assert result.safe
        assert not result.verdict.termination

    def test_chandra_toueg_fails_to_terminate_under_loss(self):
        result = run_chandra_toueg("lossy", n=4, seed=1)
        assert result.safe
        assert not result.verdict.termination

    def test_aguilera_solves_crash_recovery(self):
        result = run_aguilera("crash-recovery", n=4, seed=1)
        assert result.solved

    def test_aguilera_solves_lossy(self):
        result = run_aguilera("lossy", n=4, seed=1)
        assert result.solved

    def test_rows_are_printable(self):
        result = run_chandra_toueg("fault-free", n=3, seed=0)
        assert "chandra-toueg" in result.row()
