"""Tests for the round-level adversarial scenario family."""

from __future__ import annotations

import pytest

from repro.runner.registry import REGISTRY
from repro.workloads.adversarial import ROUND_FAMILIES, run_round_adversary


class TestRegistry:
    def test_every_family_is_registered(self):
        names = REGISTRY.scenario_names()
        for family in ROUND_FAMILIES:
            assert f"ho-round-{family}" in names

    def test_registered_runner_matches_direct_call(self):
        direct = run_round_adversary("fault-free", n=4, seed=1, family="bursty-loss")
        via_registry = REGISTRY.scenario("ho-round-bursty-loss")("fault-free", n=4, seed=1)
        assert direct.verdict.decisions == via_registry.verdict.decisions
        assert direct.metrics == via_registry.metrics


class TestMatrix:
    @pytest.mark.parametrize("family", ROUND_FAMILIES)
    @pytest.mark.parametrize(
        "fault_model", ["fault-free", "crash-stop", "crash-recovery", "lossy"]
    )
    def test_safety_never_breaks(self, family, fault_model):
        for seed in (0, 1):
            result = run_round_adversary(fault_model, n=4, seed=seed, family=family)
            assert result.safe, result.verdict.violations

    @pytest.mark.parametrize("family", ROUND_FAMILIES)
    def test_termination_after_stabilisation(self, family):
        """Stabilising families + crash overlays guarantee termination in scope."""
        for fault_model in ("fault-free", "crash-stop", "crash-recovery"):
            result = run_round_adversary(fault_model, n=4, seed=0, family=family)
            assert result.solved, (fault_model, result.verdict.violations)

    def test_crash_stop_scope_excludes_the_crashed_process(self):
        result = run_round_adversary("crash-stop", n=4, seed=0, family="mobile-omission")
        assert result.metrics.scope_size == 3
        assert 3 not in result.verdict.decisions or result.verdict.termination

    def test_deterministic_per_seed(self):
        a = run_round_adversary("lossy", n=4, seed=5, family="rotating-partition")
        b = run_round_adversary("lossy", n=4, seed=5, family="rotating-partition")
        assert a.verdict.decisions == b.verdict.decisions
        assert a.metrics == b.metrics

    def test_unknown_family_and_fault_model_raise(self):
        with pytest.raises(ValueError):
            run_round_adversary("fault-free", family="nope")
        with pytest.raises(ValueError):
            run_round_adversary("nope", family="mobile-omission")

    def test_extra_stays_descriptive(self):
        result = run_round_adversary("fault-free", n=4, seed=0, family="bursty-loss")
        assert result.extra["family"] == "bursty-loss"
        assert result.stack == "ho-round/bursty-loss"
