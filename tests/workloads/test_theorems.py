"""The theorem scenario family: scalar/batched wire parity and sweep wiring.

The ``ho-step-*`` and ``ho-theorem8-translation`` scenarios promise that a
sweep cell produces identical per-replica wire records whichever execution
backend runs it, and that the sweep's generic ``--backend`` choices
resolve through the registered step-path aliases.
"""

from __future__ import annotations

import pickle

import pytest

from repro._optional import have_numpy
from repro.runner.registry import REGISTRY
from repro.runner.sweep import RunSpec, run_sweep
from repro.workloads.theorems import (
    STEP_BACKEND_ALIASES,
    build_step_batch,
    run_step,
    run_step_batch,
    run_translation,
    run_translation_batch,
)

needs_numpy = pytest.mark.skipif(not have_numpy(), reason="numpy not available")

FAULT_MODELS = ("fault-free", "crash-stop", "crash-recovery", "lossy")


class TestRegistration:
    def test_scenarios_are_registered(self):
        names = REGISTRY.scenario_names()
        for name in ("ho-step-down-otr", "ho-step-arbitrary-otr", "ho-theorem8-translation"):
            assert name in names
            assert REGISTRY.batch_runner(name) is not None
            assert REGISTRY.scenario_is_monitorable(name)

    def test_step_scenarios_alias_the_generic_backends(self):
        for requested, resolved in STEP_BACKEND_ALIASES.items():
            assert REGISTRY.resolve_backend("ho-step-down-otr", requested) == resolved
            assert REGISTRY.resolve_backend("ho-step-arbitrary-otr", requested) == resolved
        # The round-level translation cell keeps the generic backends.
        assert REGISTRY.resolve_backend("ho-theorem8-translation", "batch") == "batch"
        # Unregistered scenarios pass every name through.
        assert REGISTRY.resolve_backend("ho-classic-otr", "batch") == "batch"

    def test_translation_cell_is_super_batch_food(self):
        assert REGISTRY.batch_builder("ho-theorem8-translation") is not None


class TestStepScenarioParity:
    @pytest.mark.parametrize("fault_model", FAULT_MODELS)
    def test_step_backends_agree_per_seed(self, fault_model):
        seeds = [0, 1]
        batched = run_step_batch(fault_model, n=4, seeds=seeds, backend="auto")
        scalar = run_step_batch(fault_model, n=4, seeds=seeds, backend="scalar")
        assert batched == scalar
        assert all(record["solved"] for record in batched)

    @pytest.mark.parametrize("kind", ["down-good", "arbitrary-good"])
    def test_scalar_scenario_matches_the_wire_record(self, kind):
        result = run_step("fault-free", n=4, seed=2, kind=kind)
        (record,) = run_step_batch("fault-free", n=4, seeds=(2,), kind=kind)
        assert result.solved == record["solved"]
        assert result.verdict.termination == record["terminated"]
        assert result.metrics.decided_processes == record["decided_processes"]
        assert result.metrics.scope_size == record["scope_size"]
        assert result.metrics.first_decision_time == record["first_decision_time"]
        assert result.metrics.last_decision_time == record["last_decision_time"]
        assert result.metrics.messages_sent == record["messages_sent"]

    def test_arbitrary_kind_solves_with_translation(self):
        result = run_step("fault-free", n=4, seed=0, kind="arbitrary-good")
        assert result.solved
        assert result.extra["f"] == 1
        assert result.extra["use_translation"] is True

    def test_keep_trace_attaches_the_step_trace(self):
        result = run_step("fault-free", n=4, seed=0, keep_trace=True)
        assert result.extra["trace"].decisions
        slim = run_step("fault-free", n=4, seed=0)
        assert "trace" not in slim.extra

    def test_slim_records_pickle(self):
        """Sweep records cross worker pools: no trace may ride along."""
        plan = build_step_batch("fault-free", n=4, seeds=(0, 1))
        records = run_step_batch("fault-free", n=4, seeds=(0, 1))
        assert plan.batch.tasks[0].oracle is not None
        pickle.dumps(records)

    def test_monitored_step_run_reports_predicates(self):
        result = run_step(
            "fault-free", n=4, seed=0, predicates=("p_su",), run_full_horizon=False
        )
        assert result.extra["predicate_reports"]["p_su"]["rounds_observed"] > 0


class TestTranslationScenarioParity:
    @pytest.mark.parametrize("fault_model", FAULT_MODELS)
    def test_backends_agree_per_seed(self, fault_model):
        seeds = [0, 1, 2]
        batched = run_translation_batch(fault_model, n=4, seeds=seeds, backend="auto")
        scalar = run_translation_batch(fault_model, n=4, seeds=seeds, backend="scalar")
        assert batched == scalar

    def test_scalar_scenario_matches_the_wire_record(self):
        result = run_translation("fault-free", n=4, seed=1)
        (record,) = run_translation_batch("fault-free", n=4, seeds=(1,))
        assert result.solved == record["solved"]
        assert result.metrics.last_decision_round == int(record["last_decision_time"])
        assert result.metrics.messages_sent == record["messages_sent"]

    def test_decides_at_the_macro_round_cadence(self):
        result = run_translation("fault-free", n=7, seed=0)
        assert result.solved
        per_macro = result.extra["rounds_per_macro"]
        assert per_macro == result.extra["f"] + 1
        assert result.metrics.last_decision_round % per_macro == 0

    def test_scope_is_the_kernel_intersected_with_survivors(self):
        result = run_translation("crash-stop", n=4, seed=0)
        # f = 1: pi0 = {0, 1, 2}; the crash victim n-1 = 3 is an outsider.
        assert result.metrics.scope_size == 3
        assert result.solved


class TestSweepIntegration:
    def sweep(self, scenario, backend, fault_model="fault-free", replicas=3):
        spec = RunSpec(
            scenario=scenario, fault_model=fault_model, seed=0, n=4,
            replicas=replicas, backend=backend,
        )
        (record,) = run_sweep([spec], workers=1).records
        return record

    @pytest.mark.parametrize(
        "scenario", ["ho-step-down-otr", "ho-step-arbitrary-otr", "ho-theorem8-translation"]
    )
    def test_backend_axis_produces_identical_records(self, scenario):
        batch = self.sweep(scenario, "batch")
        scalar = self.sweep(scenario, "scalar")
        auto = self.sweep(scenario, "auto")
        for field in ("solved", "safe", "terminated", "decided_processes",
                      "first_decision_time", "last_decision_time", "messages_sent"):
            assert getattr(batch, field) == getattr(scalar, field) == getattr(auto, field)
        assert batch.replicas["outcomes"] == scalar.replicas["outcomes"]
        assert batch.replicas["outcomes"] == auto.replicas["outcomes"]

    @needs_numpy
    def test_step_cells_report_the_step_backend(self):
        record = self.sweep("ho-step-down-otr", "batch")
        assert record.replicas["backend"] == "step-batch"
        fallback = self.sweep("ho-step-down-otr", "batch", fault_model="lossy")
        assert fallback.replicas["backend"].startswith("step-batch:scalar-fallback")

    def test_translation_cells_report_the_round_backend(self):
        record = self.sweep("ho-theorem8-translation", "batch")
        expected = "batch" if have_numpy() else "batch:scalar-fallback"
        assert record.replicas["backend"].startswith(expected)
