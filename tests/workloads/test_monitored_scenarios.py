"""Tests for streaming predicate monitoring inside the scenario runners."""

from __future__ import annotations

import pytest

from repro.predimpl.bounds import arbitrary_p2otr_rounds
from repro.runner.registry import REGISTRY
from repro.workloads.adversarial import (
    DEFAULT_MONITORED_PREDICATES,
    ROUND_FAMILIES,
    run_round_adversary,
    run_round_adversary_monitored,
)
from repro.workloads.scenarios import run_ho_stack


class TestRoundScenarioMonitoring:
    def test_predicates_param_attaches_reports(self):
        result = run_round_adversary(
            "fault-free", n=4, seed=0, predicates=("p_su", "p_k", "p_2otr")
        )
        reports = result.extra["predicate_reports"]
        assert set(reports) == {"p_su", "p_k", "p_2otr"}
        for report in reports.values():
            assert report["rounds_observed"] > 0

    def test_no_predicates_means_no_reports(self):
        result = run_round_adversary("fault-free", n=4, seed=0)
        assert "predicate_reports" not in result.extra

    def test_stop_after_held_requires_predicates(self):
        with pytest.raises(ValueError, match="stop_after_held"):
            run_round_adversary("fault-free", n=4, seed=0, stop_after_held=3)

    def test_stop_after_held_cuts_the_full_horizon(self):
        slow = run_round_adversary(
            "fault-free", n=4, seed=0, rounds=60, stabilize_round=20,
            predicates=("p_su",), run_full_horizon=True,
        )
        fast = run_round_adversary(
            "fault-free", n=4, seed=0, rounds=60, stabilize_round=20,
            predicates=("p_su",), stop_after_held=4, run_full_horizon=True,
        )
        slow_rounds = slow.extra["predicate_reports"]["p_su"]["rounds_observed"]
        fast_rounds = fast.extra["predicate_reports"]["p_su"]["rounds_observed"]
        assert slow_rounds == 60
        assert fast.extra["stopped_early"]
        assert fast_rounds < slow_rounds
        # the run ended right as the streak completed: 4 good rounds from
        # stabilisation at round 20, plus engine-stop granularity of a round
        assert fast_rounds <= 20 + 4 + 1

    def test_scope_excludes_the_crashed_process_from_pi0(self):
        """Under crash-stop the monitors quantify over the surviving scope,
        so the good period after stabilisation is visible despite the dead
        process never appearing in any heard-of set."""
        result = run_round_adversary(
            "crash-stop", n=4, seed=0, rounds=60, stabilize_round=20,
            predicates=("p_su",), run_full_horizon=True,
        )
        report = result.extra["predicate_reports"]["p_su"]
        assert report["longest_good_run"] >= 60 - 20


class TestMonitoredFamily:
    def test_monitored_twins_are_registered_and_monitorable(self):
        names = REGISTRY.scenario_names()
        for family in ROUND_FAMILIES:
            name = f"ho-round-{family}-monitored"
            assert name in names
            assert REGISTRY.scenario_is_monitorable(name)

    def test_default_predicates_and_bound_check(self):
        result = run_round_adversary_monitored("fault-free", n=4, seed=1)
        reports = result.extra["predicate_reports"]
        assert set(reports) == set(DEFAULT_MONITORED_PREDICATES)
        check = result.extra["bound_check"]
        assert check["predicate"] == "p_2otr"
        assert check["round_bound"] == check["stabilize_round"] + arbitrary_p2otr_rounds(
            check["f"]
        )

    @pytest.mark.parametrize("fault_model", ["fault-free", "crash-stop", "crash-recovery"])
    def test_first_hold_respects_the_translation_round_bound(self, fault_model):
        """Once the family stabilises, P_2otr must first-hold within 2f+3
        rounds -- the Section 4.2.2(c) bound read at round granularity.
        (The lossy model keeps dropping messages after stabilisation, so it
        is deliberately excluded: there the check records, not asserts.)"""
        for seed in (0, 1, 2):
            result = run_round_adversary_monitored(fault_model, n=4, seed=seed)
            check = result.extra["bound_check"]
            assert check["within_round_bound"] is True, (fault_model, seed, check)

    def test_monitored_runs_cover_the_full_horizon(self):
        result = run_round_adversary_monitored("fault-free", n=4, seed=0, rounds=50)
        report = result.extra["predicate_reports"]["p_su"]
        assert report["rounds_observed"] == 50


class TestHoStackMonitoring:
    def test_step_level_stack_streams_reports(self):
        result = run_ho_stack("fault-free", n=3, predicates=("p_su", "p_k"))
        reports = result.extra["predicate_reports"]
        assert set(reports) == {"p_su", "p_k"}
        assert reports["p_k"]["rounds_observed"] > 0
        # a pi-good run reaches kernel rounds quickly
        assert reports["p_k"]["good_rounds"] > 0

    def test_step_level_early_stop(self):
        full = run_ho_stack("fault-free", n=3, predicates=("p_su",))
        stopped = run_ho_stack("fault-free", n=3, predicates=("p_su",), stop_after_held=2)
        assert stopped.extra["stopped_early"]
        assert (
            stopped.extra["predicate_reports"]["p_su"]["rounds_observed"]
            <= full.extra["predicate_reports"]["p_su"]["rounds_observed"]
        )

    def test_stop_after_held_requires_predicates(self):
        with pytest.raises(ValueError, match="stop_after_held"):
            run_ho_stack("fault-free", n=3, stop_after_held=2)

    def test_zero_stop_after_held_is_rejected_not_ignored(self):
        with pytest.raises(ValueError, match="at least 1"):
            run_ho_stack("fault-free", n=3, predicates=("p_su",), stop_after_held=0)

    def test_crash_stop_early_stop_fires_live(self):
        """Regression: the dead process never reports again, so rounds must
        complete on the surviving scope -- otherwise every round stays
        pending in the collator window and the stop policy only ever runs
        at finalize, after the full horizon already executed."""
        full = run_ho_stack("crash-stop", n=4, seed=0, predicates=("p_su",))
        stopped = run_ho_stack(
            "crash-stop", n=4, seed=0, predicates=("p_su",), stop_after_held=5
        )
        assert stopped.extra["stopped_early"]
        assert (
            stopped.extra["predicate_reports"]["p_su"]["rounds_observed"]
            < full.extra["predicate_reports"]["p_su"]["rounds_observed"]
        )

    def test_full_horizon_run_never_claims_early_stop(self):
        """Regression: finalize() drains pending rounds without evaluating
        stop policies, so a run that went the distance must report
        stopped_early=False even though the drained tail would have
        satisfied the attached policy."""
        from repro.predicates import MonitorBank, PSuMonitor, StopAfterHeld
        from repro.rounds.record import RoundRecord

        n = 2
        bank = MonitorBank(n, [PSuMonitor(n, pi0={0})], stop_policies=[StopAfterHeld(2)])
        # only process 0 ever reports: no round completes live, but every
        # drained round is space uniform for pi0={0}
        for round in (1, 2, 3):
            bank.on_record(RoundRecord(process=0, round=round, ho_mask=0b01))
        reports = bank.reports()  # drains rounds 1..3 through finalize()
        assert reports["p_su"].rounds_observed == 3
        assert reports["p_su"].longest_good_run == 3
        assert not bank.stop_requested

        result = run_ho_stack("crash-stop", n=4, seed=0, predicates=("p_su",))
        assert result.extra["stopped_early"] is False
        assert result.extra["predicate_reports"]["p_su"]["longest_good_run"] >= 5
