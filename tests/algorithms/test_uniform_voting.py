"""Unit tests for the UniformVoting HO algorithm."""

from __future__ import annotations

from repro.algorithms import UniformVoting
from repro.core.adversary import FaultFreeOracle, RandomOmissionOracle, ScriptedOracle
from repro.core.machine import HOMachine


class TestRoundStructure:
    def test_voting_and_resolution_rounds(self):
        algorithm = UniformVoting(3)
        assert algorithm.is_voting_round(1)
        assert not algorithm.is_voting_round(2)
        assert algorithm.is_voting_round(3)
        assert algorithm.phase_of(1) == 1
        assert algorithm.phase_of(2) == 1
        assert algorithm.phase_of(3) == 2


class TestTransitions:
    def test_vote_set_only_when_all_received_values_agree(self):
        algorithm = UniformVoting(3)
        state = algorithm.initial_state(0, 5)
        from repro.algorithms.uniform_voting import UniformVotingMessage

        unanimous = {0: UniformVotingMessage(x=7), 1: UniformVotingMessage(x=7)}
        voted = algorithm.transition(1, 0, state, unanimous)
        assert voted.vote == 7

        split = {0: UniformVotingMessage(x=7), 1: UniformVotingMessage(x=8)}
        not_voted = algorithm.transition(1, 0, state, split)
        assert not_voted.vote is None

    def test_resolution_round_adopts_vote_and_decides_when_unanimous(self):
        algorithm = UniformVoting(3)
        from repro.algorithms.uniform_voting import UniformVotingMessage

        state = algorithm.initial_state(0, 5)
        all_voted = {
            0: UniformVotingMessage(x=7, vote=7),
            1: UniformVotingMessage(x=7, vote=7),
            2: UniformVotingMessage(x=7, vote=7),
        }
        decided = algorithm.transition(2, 0, state, all_voted)
        assert decided.x == 7
        assert decided.decision == 7

        mixed = {
            0: UniformVotingMessage(x=7, vote=7),
            1: UniformVotingMessage(x=3, vote=None),
        }
        adopted = algorithm.transition(2, 0, state, mixed)
        assert adopted.x == 7
        assert adopted.decision is None

    def test_resolution_round_without_votes_takes_smallest_estimate(self):
        algorithm = UniformVoting(3)
        from repro.algorithms.uniform_voting import UniformVotingMessage

        state = algorithm.initial_state(0, 5)
        no_votes = {
            0: UniformVotingMessage(x=7, vote=None),
            1: UniformVotingMessage(x=3, vote=None),
        }
        new_state = algorithm.transition(2, 0, state, no_votes)
        assert new_state.x == 3
        assert new_state.decision is None


class TestEndToEnd:
    def test_fault_free_run_decides(self):
        n = 4
        machine = HOMachine(UniformVoting(n), FaultFreeOracle(n), [4, 2, 3, 2])
        trace = machine.run_until_decision(max_rounds=10)
        decisions = trace.decisions()
        assert len(decisions) == n
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {2, 3, 4}

    def test_safety_with_nonempty_kernels(self):
        """With a fixed process heard by everyone each round, agreement must hold."""
        n = 4
        # Every HO set contains process 0 (a non-empty kernel), but they differ.
        script = {}
        for round in range(1, 31):
            script[(round, 0)] = [0, 1]
            script[(round, 1)] = [0, 1, 2]
            script[(round, 2)] = [0, 2, 3]
            script[(round, 3)] = [0, 3]
        oracle = ScriptedOracle(n, script)
        machine = HOMachine(UniformVoting(n), oracle, [5, 6, 7, 8])
        machine.run(30)
        assert len(set(machine.decisions().values())) <= 1

    def test_safety_under_random_loss_with_nonempty_kernel(self):
        """Random omissions on top of a guaranteed kernel member: never disagreement.

        UniformVoting's safety argument relies on non-empty kernels (two
        processes can then never lock conflicting votes), so the random
        omissions are applied on top of an always-heard process 0.
        """
        n = 5

        class KernelPreservingOmissionOracle(RandomOmissionOracle):
            def ho_set(self, round, process):
                return super().ho_set(round, process) | {0}

        for seed in range(5):
            oracle = KernelPreservingOmissionOracle(n, loss_probability=0.4, seed=seed)
            machine = HOMachine(UniformVoting(n), oracle, [1, 2, 3, 4, 5])
            machine.run(40)
            assert len(set(machine.decisions().values())) <= 1
