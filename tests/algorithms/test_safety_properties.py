"""Property-based tests: consensus safety under arbitrary heard-of collections.

Theorem 1's proof observes that Algorithm 1 "never violates the safety
properties of consensus", whatever the environment does.  These tests let
Hypothesis play the adversary: it generates arbitrary HO collections (any
subset for any process in any round) and checks integrity and agreement of
OneThirdRule and LastVoting on every generated run.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import LastVoting, OneThirdRule, UniformVoting
from repro.core.machine import HOMachine


def ho_schedule(n_rounds: int, n: int):
    """Strategy: a full HO schedule, i.e. one HO set per (round, process)."""
    subset = st.frozensets(st.integers(min_value=0, max_value=n - 1), max_size=n)
    return st.lists(
        st.lists(subset, min_size=n, max_size=n),
        min_size=n_rounds,
        max_size=n_rounds,
    )


def oracle_from_schedule(schedule: List[List[frozenset]]):
    def oracle(round: int, process: int):
        if round - 1 < len(schedule):
            return schedule[round - 1][process]
        return frozenset()

    return oracle


def check_safety(algorithm_factory, n: int, schedule, initial_values) -> None:
    algorithm = algorithm_factory(n)
    machine = HOMachine(algorithm, oracle_from_schedule(schedule), initial_values)
    machine.run(len(schedule))
    decisions = machine.decisions()
    # Agreement: no two processes decide differently.
    assert len(set(decisions.values())) <= 1
    # Integrity: any decision is the initial value of some process.
    for value in decisions.values():
        assert value in initial_values


@settings(max_examples=120, deadline=None)
@given(
    schedule=ho_schedule(n_rounds=6, n=4),
    initial_values=st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=4),
)
def test_one_third_rule_safety_under_arbitrary_collections(schedule, initial_values):
    check_safety(OneThirdRule, 4, schedule, initial_values)


@settings(max_examples=80, deadline=None)
@given(
    schedule=ho_schedule(n_rounds=5, n=5),
    initial_values=st.lists(st.integers(min_value=0, max_value=4), min_size=5, max_size=5),
)
def test_one_third_rule_safety_five_processes(schedule, initial_values):
    check_safety(OneThirdRule, 5, schedule, initial_values)


@settings(max_examples=80, deadline=None)
@given(
    schedule=ho_schedule(n_rounds=12, n=4),
    initial_values=st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=4),
)
def test_last_voting_safety_under_arbitrary_collections(schedule, initial_values):
    check_safety(LastVoting, 4, schedule, initial_values)


def kernel_schedule(n_rounds: int, n: int, kernel_member: int = 0):
    """Strategy: HO schedules in which *kernel_member* is always heard of."""
    subset = st.frozensets(st.integers(min_value=0, max_value=n - 1), max_size=n).map(
        lambda s: s | {kernel_member}
    )
    return st.lists(
        st.lists(subset, min_size=n, max_size=n),
        min_size=n_rounds,
        max_size=n_rounds,
    )


@settings(max_examples=80, deadline=None)
@given(
    schedule=kernel_schedule(n_rounds=8, n=4),
    initial_values=st.lists(st.integers(min_value=0, max_value=3), min_size=4, max_size=4),
)
def test_uniform_voting_safety_with_nonempty_kernels(schedule, initial_values):
    """UniformVoting is safe whenever every round has a non-empty kernel."""
    check_safety(UniformVoting, 4, schedule, initial_values)


@settings(max_examples=60, deadline=None)
@given(
    prefix=ho_schedule(n_rounds=4, n=4),
    initial_values=st.lists(st.integers(min_value=0, max_value=9), min_size=4, max_size=4),
)
def test_one_third_rule_terminates_once_environment_becomes_good(prefix, initial_values):
    """Liveness: after any adversarial prefix, appending a P_otr suffix makes everyone decide."""
    n = 4
    full = frozenset(range(n))
    suffix = [[full] * n, [full] * n]
    schedule = prefix + suffix
    machine = HOMachine(OneThirdRule(n), oracle_from_schedule(schedule), initial_values)
    machine.run(len(schedule))
    decisions = machine.decisions()
    assert len(decisions) == n
    assert len(set(decisions.values())) == 1
    for value in decisions.values():
        assert value in initial_values
