"""Unit tests for the LastVoting (Paxos-like) HO algorithm."""

from __future__ import annotations

import pytest

from repro.algorithms import LastVoting
from repro.core.adversary import FaultFreeOracle, RandomOmissionOracle, ScriptedOracle
from repro.core.machine import HOMachine


class TestPhaseStructure:
    def test_rounds_map_to_phases_and_steps(self):
        algorithm = LastVoting(3)
        assert algorithm.phase_of(1) == 1
        assert algorithm.phase_of(4) == 1
        assert algorithm.phase_of(5) == 2
        assert [algorithm.step_of(r) for r in range(1, 9)] == [1, 2, 3, 4, 1, 2, 3, 4]

    def test_coordinator_rotates(self):
        algorithm = LastVoting(3)
        assert [algorithm.coordinator(phase) for phase in range(1, 7)] == [0, 1, 2, 0, 1, 2]


class TestSendFunction:
    def test_phase_one_sends_estimate(self):
        algorithm = LastVoting(3)
        state = algorithm.initial_state(1, 42)
        message = algorithm.send(1, 1, state)
        assert message.kind == "estimate"
        assert message.x == 42

    def test_only_committed_coordinator_sends_vote(self):
        algorithm = LastVoting(3)
        coordinator_state = algorithm.initial_state(0, 5)
        assert algorithm.send(2, 0, coordinator_state).kind == "noop"
        committed = coordinator_state.__class__(x=5, vote=5, commit=True)
        assert algorithm.send(2, 0, committed).kind == "vote"
        # A non-coordinator never sends a vote, committed or not.
        assert algorithm.send(2, 1, committed).kind == "noop"

    def test_ack_only_when_timestamp_matches_phase(self):
        algorithm = LastVoting(3)
        state = algorithm.initial_state(2, 5)
        assert algorithm.send(3, 2, state).kind == "noop"
        adopted = state.__class__(x=7, timestamp=1)
        assert algorithm.send(3, 2, adopted).kind == "ack"


class TestEndToEnd:
    def test_fault_free_run_decides_in_first_phase(self):
        n = 3
        machine = HOMachine(LastVoting(n), FaultFreeOracle(n), [30, 10, 20])
        trace = machine.run_until_decision(max_rounds=4)
        decisions = trace.decisions()
        assert len(decisions) == n
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {10, 20, 30}

    def test_survives_lossy_rounds_and_eventually_decides(self):
        n = 5
        oracle = RandomOmissionOracle(n, loss_probability=0.25, seed=3)
        machine = HOMachine(LastVoting(n), oracle, [5, 4, 3, 2, 1])
        trace = machine.run_until_decision(max_rounds=200)
        decisions = trace.decisions()
        assert decisions, "no process ever decided despite repeated phases"
        assert len(set(decisions.values())) == 1
        assert set(decisions.values()) <= {1, 2, 3, 4, 5}

    def test_no_decision_when_coordinator_never_heard(self):
        n = 3
        # Nobody ever hears process 0 (the phase-1 coordinator) nor any other
        # coordinator: every HO set excludes the current coordinator.
        script = {}
        for round in range(1, 41):
            phase = (round - 1) // 4 + 1
            coordinator = (phase - 1) % n
            for p in range(n):
                script[(round, p)] = [q for q in range(n) if q != coordinator]
        oracle = ScriptedOracle(n, script)
        machine = HOMachine(LastVoting(n), oracle, [1, 2, 3])
        machine.run(40)
        assert machine.decisions() == {}

    def test_safety_under_random_loss(self):
        """Whatever the loss pattern, there is never disagreement."""
        n = 4
        for seed in range(5):
            oracle = RandomOmissionOracle(n, loss_probability=0.5, seed=seed)
            machine = HOMachine(LastVoting(n), oracle, [1, 2, 3, 4])
            machine.run(60)
            assert len(set(machine.decisions().values())) <= 1
