"""Unit tests for the OneThirdRule consensus algorithm (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.algorithms import OneThirdRule
from repro.algorithms.one_third_rule import OneThirdRuleMessage, OneThirdRuleState
from repro.core.adversary import FaultFreeOracle, ScriptedOracle, SilentRoundsOracle
from repro.core.machine import HOMachine


class TestTransitionFunction:
    """Direct tests of T_p^r against the pseudo-code of Algorithm 1."""

    def setup_method(self):
        self.algorithm = OneThirdRule(6)

    def _received(self, values):
        return {sender: OneThirdRuleMessage(x=value) for sender, value in enumerate(values)}

    def test_no_change_when_too_few_messages(self):
        # 4 <= 2n/3 = 4 messages: the guard |HO| > 2n/3 fails.
        state = OneThirdRuleState(x=99)
        new_state = self.algorithm.transition(1, 0, state, self._received([1, 1, 1, 1]))
        assert new_state is state

    def test_adopts_overwhelming_value(self):
        # 5 values, 4 of them equal; the odd one out is within floor(n/3)=2.
        state = OneThirdRuleState(x=99)
        new_state = self.algorithm.transition(1, 0, state, self._received([7, 7, 7, 7, 3]))
        assert new_state.x == 7

    def test_falls_back_to_smallest_value(self):
        # 6 values, the most frequent one misses 3 > floor(n/3) = 2 others.
        state = OneThirdRuleState(x=99)
        new_state = self.algorithm.transition(
            1, 0, state, self._received([5, 5, 5, 2, 3, 4])
        )
        assert new_state.x == 2

    def test_decides_on_more_than_two_thirds(self):
        state = OneThirdRuleState(x=99)
        new_state = self.algorithm.transition(
            1, 0, state, self._received([8, 8, 8, 8, 8, 1])
        )
        assert new_state.decision == 8
        assert new_state.x == 8

    def test_exactly_two_thirds_does_not_decide(self):
        # 4 equal values out of 6 received: 4 is not > 2n/3 = 4.
        state = OneThirdRuleState(x=99)
        new_state = self.algorithm.transition(
            1, 0, state, self._received([8, 8, 8, 8, 1, 2])
        )
        assert new_state.decision is None

    def test_decision_is_stable(self):
        state = OneThirdRuleState(x=8, decision=8)
        new_state = self.algorithm.transition(
            2, 0, state, self._received([1, 1, 1, 1, 1, 1])
        )
        # The estimate may change but the decision never does.
        assert new_state.decision == 8

    def test_empty_reception_keeps_state(self):
        state = OneThirdRuleState(x=3)
        assert self.algorithm.transition(1, 0, state, {}) is state


class TestSendFunction:
    def test_sends_current_estimate(self):
        algorithm = OneThirdRule(3)
        state = algorithm.initial_state(0, 17)
        assert algorithm.send(1, 0, state) == OneThirdRuleMessage(x=17)


class TestEndToEnd:
    def test_fault_free_run_decides_unanimously(self):
        n = 7
        machine = HOMachine(OneThirdRule(n), FaultFreeOracle(n), list(range(n)))
        trace = machine.run_until_decision(max_rounds=10)
        decisions = trace.decisions()
        assert len(decisions) == n
        assert set(decisions.values()) == {0}  # the smallest initial value wins here

    def test_integrity_fault_free(self):
        n = 5
        values = [11, 22, 33, 44, 55]
        machine = HOMachine(OneThirdRule(n), FaultFreeOracle(n), values)
        trace = machine.run_until_decision(max_rounds=10)
        for decision in trace.decisions().values():
            assert decision in values

    def test_silent_rounds_delay_but_do_not_break(self):
        """P_otr explicitly allows rounds in which no messages are received."""
        n = 4
        oracle = SilentRoundsOracle(n, silent_rounds=[1, 2, 3])
        machine = HOMachine(OneThirdRule(n), oracle, [9, 9, 1, 1])
        trace = machine.run_until_decision(max_rounds=10)
        decisions = trace.decisions()
        assert len(decisions) == n
        assert len(set(decisions.values())) == 1

    def test_no_termination_without_quorum_rounds(self):
        """With every HO set at half the system, the decision guard can never fire."""
        n = 6
        half = {p: [0, 1, 2] for p in range(n)}
        oracle = ScriptedOracle(n, {}, default=[0, 1, 2])
        machine = HOMachine(OneThirdRule(n), oracle, [1, 2, 3, 4, 5, 6])
        machine.run(20)
        assert machine.decisions() == {}

    def test_agreement_under_asymmetric_ho_sets(self):
        """A hand-crafted adversarial collection: safety must hold regardless."""
        n = 4
        script = {
            (1, 0): [0, 1, 2],
            (1, 1): [1, 2, 3],
            (1, 2): [0, 2, 3],
            (1, 3): [0, 1, 3],
            (2, 0): [0, 1, 2, 3],
            (2, 1): [0, 1],
            (2, 2): [2, 3],
            (2, 3): [0, 1, 2, 3],
        }
        oracle = ScriptedOracle(n, script)
        machine = HOMachine(OneThirdRule(n), oracle, [3, 1, 4, 1])
        machine.run(10)
        decided_values = set(machine.decisions().values())
        assert len(decided_values) <= 1
        if decided_values:
            assert decided_values <= {3, 1, 4}
