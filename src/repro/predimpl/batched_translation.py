"""The batched dual of Algorithm 4: vectorised kernel->uniform translation.

:class:`BatchTranslationKernel` advances R lockstep replicas of
:class:`~repro.predimpl.translation.KernelToUniformTranslation` (inner
algorithm: :class:`~repro.algorithms.OneThirdRule`) one round at a time, as
the round-level :class:`~repro.batch.engine.BatchEngine` expects.  The
per-process gossip state vectorises exactly:

* ``listen`` -- the processes still listened to this macro-round -- is an
  ``(R, n, n)`` boolean matrix (receiver-major), intersected with the
  round's heard-matrix every round;
* ``known`` -- which upper-layer macro-round messages each process knows --
  reduces to an ``(R, n, n)`` boolean *presence* matrix: within one
  macro-round every circulating payload for process ``k`` equals
  ``inner.send(macro, k, state_k)`` (payloads originate only from ``k``'s
  own boundary reset and gossip merely copies them), so merge order and the
  payload values themselves carry no extra information;
* the per-round gossip merge and the boundary report counts are one batched
  matmul: ``counts[r, p, k] = |{q in listen : k in known_q}|`` over the
  *start-of-round* ``known`` (messages carry pre-transition state);
* ``NewHO`` at a macro-round boundary is the popcount threshold of
  Theorem 8 -- ``counts >= n - f`` ("reported by at least n - f of the
  listened-to processes") -- and feeds the embedded
  :class:`~repro.algorithms.batched.BatchOneThirdRule` directly as its
  heard-matrix: a member's unique payload is its inner estimate, which the
  inner kernel already holds in its own ``x`` array.

The inner kernel is stepped with the *outer* round number: scalar
``decision_rounds`` are the outer rounds at which the backend first
observes a non-``None`` decision (macro-round boundaries), and
``BatchOneThirdRule`` uses its round argument only to record decisions.
Only an exact :class:`~repro.algorithms.OneThirdRule` inner is accepted --
its transition ignores the round number, whereas the phase-structured
algorithms (UniformVoting, LastVoting) would be stepped with the wrong
phase.  OneThirdRule's tie-breaks provably cannot observe the scalar
boundary's frozenset iteration order (an adopted-with-tie top count would
need ``top > n/3`` and ``top <= n//3`` at once; a decided value's count
exceeds ``2n/3``, hence is unique), so the kernel is bit-identical to the
scalar reference per seed -- pinned by the fingerprint-prefix tests.

The kernel opts out of super-batching (``super_batchable = False``): the
super engine constructs kernels directly with a padded mixed-n row space,
bypassing :meth:`from_batch`, and the translation parameters live on the
task algorithms.  Translation cells keep the per-cell batch path.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from .._optional import require_numpy
from ..algorithms.batched import (
    BatchKernel,
    BatchOneThirdRule,
    BatchUnsupported,
    register_batch_kernel,
)
from ..algorithms.one_third_rule import OneThirdRule
from .translation import KernelToUniformTranslation


class BatchTranslationKernel(BatchKernel):
    """R lockstep replicas of Algorithm 4 over a OneThirdRule inner."""

    algorithm_class = KernelToUniformTranslation

    super_batchable = False

    @classmethod
    def from_batch(cls, batch: Any) -> "BatchTranslationKernel":
        first = batch.tasks[0].algorithm
        if type(first) is not KernelToUniformTranslation:
            raise BatchUnsupported(
                f"{type(first).__name__} is not the translation algorithm"
            )
        for task in batch.tasks:
            algorithm = task.algorithm
            if (
                type(algorithm) is not KernelToUniformTranslation
                or algorithm.f != first.f
                or algorithm.n != first.n
            ):
                raise BatchUnsupported(
                    "translation replicas must share one (n, f) configuration"
                )
            if type(algorithm.inner) is not OneThirdRule:
                raise BatchUnsupported(
                    f"inner {type(algorithm.inner).__name__} does not vectorise: "
                    "the translation steps the inner kernel with the outer round "
                    "number, which only a round-oblivious transition tolerates"
                )
        return cls(
            batch.n,
            [list(task.initial_values) for task in batch.tasks],
            f=first.f,
        )

    def __init__(
        self,
        n: int,
        initial_values: Sequence[Sequence[Any]],
        f: int = 0,
        row_n: Optional[Sequence[int]] = None,
    ) -> None:
        if row_n is not None:
            raise BatchUnsupported(
                "the translation kernel has no mixed-n row mode"
            )
        np = require_numpy()
        if n <= 2 * f:
            raise ValueError(f"the translation requires n > 2f, got n={n}, f={f}")
        self.np = np
        self.n = n
        self.f = f
        self.rounds_per_macro = f + 1
        self.row_n = None
        #: the embedded upper layer: owns values, estimates and decisions.
        self._inner = BatchOneThirdRule(n, initial_values)
        self.replicas = self._inner.replicas
        self.tables = self._inner.tables
        #: (R, n, n) bool -- listen[r, p, q]: p still listens to q.
        self.listen = np.ones((self.replicas, n, n), dtype=bool)
        #: (R, n, n) bool -- known[r, p, k]: p knows k's macro-round message.
        eye = np.eye(n, dtype=bool)
        self._eye = eye[None, :, :]
        self.known = np.broadcast_to(eye, (self.replicas, n, n)).copy()
        #: the (R, n, n) NewHO matrix of the last boundary round stepped
        #: (rows of replicas inactive at that boundary hold garbage).
        self.last_new_ho: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # the lockstep step
    # ------------------------------------------------------------------ #

    def step(self, round: int, heard: Any, active: Any) -> None:
        np = self.np
        act3 = active[:, None, None]
        shape = (self.replicas, self.n, self.n)
        listen_new = np.logical_and(
            self.listen, heard, out=self._scratch("tr_listen_new", shape, bool)
        )
        # counts[r, p, k] = |{q in listen'(p) : k in known_q}| over the
        # start-of-round known (messages carry pre-transition state); exact
        # in float32 for any n below 2^24.
        listen_f = self._scratch("tr_listen_f32", shape, np.float32)
        np.copyto(listen_f, listen_new)
        known_f = self._scratch("tr_known_f32", shape, np.float32)
        np.copyto(known_f, self.known)
        counts = np.matmul(
            listen_f, known_f, out=self._scratch("tr_counts", shape, np.float32)
        )
        if round % self.rounds_per_macro != 0:
            self.known = np.where(act3, self.known | (counts > 0.5), self.known)
            self.listen = np.where(act3, listen_new, self.listen)
            return
        new_ho = counts >= np.float32(self.n - self.f)
        self._inner.step(round, new_ho, active)
        self.last_new_ho = new_ho
        self.listen = np.where(act3, True, self.listen)
        self.known = np.where(act3, self._eye, self.known)

    # ------------------------------------------------------------------ #
    # engine-facing queries: decisions live in the inner kernel; the
    # translation state is opaque to the scalar fingerprint (TranslationState
    # has no ``x`` attribute, so every scalar estimate repr is "None").
    # ------------------------------------------------------------------ #

    def decided(self) -> Any:
        return self._inner.decided()

    def scope_all_decided(self, scope_processes: Sequence[int]) -> Any:
        return self._inner.scope_all_decided(scope_processes)

    def decisions_of(self, replica: int):
        return self._inner.decisions_of(replica)

    def estimate_reprs(self, replica: int) -> List[str]:
        return ["None"] * self.n

    def newly_decided(self, replica: int, decided_before: Any):
        return self._inner.newly_decided(replica, decided_before)

    def compact(self, keep: Any) -> None:
        raise NotImplementedError(
            "the translation kernel does not super-batch; no row compaction"
        )


register_batch_kernel(KernelToUniformTranslation, BatchTranslationKernel)


__all__ = ["BatchTranslationKernel"]
