"""Algorithm 3: ensuring ``P_k(pi0, -, -)`` in a "pi0-arbitrary" good period.

Unlike the "pi0-down" case, processes outside ``pi0`` are unconstrained:
they may crash, recover, run arbitrarily fast or slow, and their links may
lose or delay messages.  Algorithm 3 therefore needs explicit round
synchronisation messages:

* ``<ROUND, r, msg>`` carries the upper layer's round-``r`` payload;
* ``<INIT, r+1, msg>`` announces the intention to enter round ``r+1`` (sent
  once the round timeout ``tau_0 = 2*delta + (2n+1)*phi`` receive steps has
  expired) and piggy-backs the sender's round-``r`` payload.

A process starts round ``rho`` when it receives ``f+1`` INIT messages for
``rho`` from distinct processes, and it *jumps* to a higher round as soon as
it sees any evidence (ROUND or INIT) of that round -- the paper points out
that this jump rule is what makes synchronisation at the beginning of a good
period fast, and is the main difference with Byzantine clock-synchronisation
algorithms.  The implementation requires ``f < n/2`` where ``|pi0| = n - f``.

The reception policy selects, at the ``i``-th receive step, the message with
the highest round number *from process* ``p_(i mod n)``, falling back to an
arbitrary message; this guarantees that a fast process cannot starve the
messages of slower ones.

Round number and upper-layer state live on stable storage; recovery restarts
the main loop with the volatile message set and next-round variable
reinitialised.

As with Algorithm 2, the send -> environment -> transition loop belongs to
the shared :class:`repro.rounds.RoundEngine`; this program contributes the
step-level round-synchronisation policy (timeouts, INIT quorums, jumps) and
deposits round evidence into the engine's step transport.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Set

from ..core.algorithm import HOAlgorithm
from ..core.types import ProcessId, Round
from ..rounds.engine import RoundEngine, StepTransport
from ..sysmodel.network import Envelope
from ..sysmodel.params import SynchronyParams
from ..sysmodel.process import ReceiveStep, SendStep, StepProgram, StepProgramGenerator
from ..sysmodel.trace import SystemRunTrace
from .wire import WireKind, WireMessage, init_message, round_message

ROUND_KEY = "round"
STATE_KEY = "state"


class ArbitraryGoodPeriodProgram(StepProgram):
    """One process of Algorithm 3, implementing ``P_k`` in "pi0-arbitrary" good periods."""

    def __init__(
        self,
        process_id: ProcessId,
        n: int,
        f: int,
        algorithm: HOAlgorithm,
        initial_value: Any,
        params: SynchronyParams,
        trace: SystemRunTrace,
        resend_init: bool = True,
        engine: Optional[RoundEngine] = None,
    ) -> None:
        super().__init__(process_id, n)
        if not 0 <= f < n / 2:
            raise ValueError(f"Algorithm 3 requires 0 <= f < n/2, got f={f}, n={n}")
        self.f = f
        self.algorithm = algorithm
        self.params = params
        self.trace = trace
        if engine is None:
            engine = RoundEngine(algorithm, StepTransport(n), trace)
        self.engine = engine
        self.transport: StepTransport = engine.transport
        #: whether the INIT message is re-sent every ``tau_0`` receive steps
        #: while the process is stuck in the same round.  Re-sending is needed
        #: for liveness when an INIT sent during a bad period was lost (the
        #: case analysed by Lemma B.8); sending it exactly once per timeout
        #: window keeps the per-round step count of Theorem 6's proof (one
        #: INIT send step followed by at most n receive steps).
        self.resend_init = resend_init
        #: receive-step budget per round: ceil(tau_0) = ceil(2*delta + (2n+1)*phi)
        self.timeout = params.algorithm3_timeout(n)
        #: global receive-step counter driving the round-robin reception policy
        self._policy_counter = 0
        self.stable_storage.store(ROUND_KEY, 1)
        self.stable_storage.store(
            STATE_KEY, algorithm.initial_state(process_id, initial_value)
        )

    # ------------------------------------------------------------------ #
    # reception policy: highest round message from each process, round robin
    # ------------------------------------------------------------------ #

    def select_message(self, buffered: Sequence[Envelope]) -> Optional[Envelope]:
        if not buffered:
            return None
        target = self._policy_counter % self.n
        from_target = [envelope for envelope in buffered if envelope.sender == target]
        candidates = from_target if from_target else buffered
        return max(
            candidates,
            key=lambda envelope: (
                self._round_of(envelope),
                -envelope.sequence,
            ),
        )

    @staticmethod
    def _round_of(envelope: Envelope) -> Round:
        payload = envelope.payload
        if isinstance(payload, WireMessage):
            return payload.round
        return 0

    # ------------------------------------------------------------------ #
    # the program (Algorithm 3, lines 6-24)
    # ------------------------------------------------------------------ #

    def program(self) -> StepProgramGenerator:
        round_number: Round = self.stable_storage.load(ROUND_KEY)
        state = self.stable_storage.load(STATE_KEY)
        # Volatile (lost on a crash): the collected round evidence -- cleared
        # from the engine transport's mailbox on (re)boot -- and the INIT
        # senders seen per round.
        self.transport.reset(self.process_id)
        init_senders: Dict[Round, Set[ProcessId]] = {}
        next_round = round_number

        while True:
            payload = self.engine.send_payload(round_number, self.process_id, state)
            result = yield SendStep(payload=round_message(round_number, payload))
            self.trace.record_round_start(self.process_id, round_number, result.time)

            receive_steps = 0
            init_sent = False
            last_time = result.time
            while next_round == round_number:
                result = yield ReceiveStep()
                self._policy_counter += 1
                last_time = result.time
                envelope = result.envelope
                if envelope is not None and isinstance(envelope.payload, WireMessage):
                    message = envelope.payload
                    evidence_round = message.evidence_round()
                    if evidence_round >= round_number:
                        self.transport.deposit(
                            self.process_id, evidence_round, envelope.sender, message.payload
                        )
                        self.trace.record_reception(
                            self.process_id, evidence_round, envelope.sender, result.time
                        )
                    if message.kind is WireKind.INIT:
                        init_senders.setdefault(message.round, set()).add(envelope.sender)
                    if evidence_round > round_number:
                        next_round = evidence_round
                    if len(init_senders.get(round_number + 1, ())) >= self.f + 1:
                        next_round = max(round_number + 1, next_round)

                receive_steps += 1
                if receive_steps >= self.timeout and (self.resend_init or not init_sent):
                    init_sent = True
                    receive_steps = 0
                    result = yield SendStep(
                        payload=init_message(round_number + 1, payload)
                    )
                    last_time = result.time

            state = self.engine.finish_rounds(
                self.process_id, round_number, next_round, state, last_time
            )
            round_number = next_round
            self.stable_storage.store(ROUND_KEY, round_number)
            self.stable_storage.store(STATE_KEY, state)
            init_senders = {
                entered: senders
                for entered, senders in init_senders.items()
                if entered > round_number
            }


def build_arbitrary_period_programs(
    algorithm: HOAlgorithm,
    f: int,
    initial_values: Sequence[Any],
    params: SynchronyParams,
    trace: SystemRunTrace,
    resend_init: bool = True,
    observers: Sequence[Any] = (),
) -> list[ArbitraryGoodPeriodProgram]:
    """One :class:`ArbitraryGoodPeriodProgram` per process, sharing *trace*.

    All processes share one :class:`~repro.rounds.RoundEngine` (and its
    step transport), mirroring the shared trace.  *observers* are
    :class:`~repro.rounds.engine.RoundObserver` hooks fed every record the
    shared engine produces (streaming predicate monitors ride here).
    """
    n = algorithm.n
    if len(initial_values) != n:
        raise ValueError(f"expected {n} initial values, got {len(initial_values)}")
    engine = RoundEngine(algorithm, StepTransport(n), trace, observers=observers)
    return [
        ArbitraryGoodPeriodProgram(
            process_id=p,
            n=n,
            f=f,
            algorithm=algorithm,
            initial_value=initial_values[p],
            params=params,
            trace=trace,
            resend_init=resend_init,
            engine=engine,
        )
        for p in range(n)
    ]


__all__ = [
    "ArbitraryGoodPeriodProgram",
    "build_arbitrary_period_programs",
    "ROUND_KEY",
    "STATE_KEY",
]
