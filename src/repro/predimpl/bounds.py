"""Closed-form bounds of the paper as executable formulas.

All formulas are stated in *normalised* time (multiples of ``Phi-``), with
``phi = Phi+/Phi-`` and ``delta = Delta/Phi-`` as in Section 4.1, and are the
exact expressions of:

* Theorem 3   -- minimal length of a (non-initial) "pi0-down" good period to
  achieve ``P_su(pi0, rho0, rho0+x-1)`` with Algorithm 2;
* Corollary 4 -- minimal "pi0-down" good period(s) for ``P_2otr`` (one
  period) and ``P_1/1otr`` (two periods) with Algorithm 2;
* Theorem 5   -- minimal length of an *initial* "pi0-down" good period for
  ``x`` space-uniform rounds with Algorithm 2;
* Theorem 6   -- minimal length of a (non-initial) "pi0-arbitrary" good
  period to achieve ``P_k(pi0, rho0, rho0+x-1)`` with Algorithm 3;
* Theorem 7   -- minimal length of an *initial* "pi0-arbitrary" good period
  for ``P_k(pi0, 1, x)`` with Algorithm 3;
* Section 4.2.2(c) -- minimal "pi0-arbitrary" good period for ``P_2otr``
  through the Algorithm 4 translation (``2f+3`` rounds).

The paper's main text and appendix differ by one additive constant inside
the parenthesis of Corollary 4 (``+3`` in the main text, ``+2`` in
Proposition B.1); both variants are provided, the main-text one being the
default used by the benchmarks (it is the larger, i.e. the safe one).

The benchmark harness compares these bounds against good-period lengths
*measured* in the step-level simulator: measured values must never exceed
the bound, and must scale with the same shape (linear in ``x``, ``n``,
``delta``, ``f``).
"""

from __future__ import annotations

from dataclasses import dataclass


def _check(n: int, phi: float, delta: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if phi < 1.0:
        raise ValueError(f"phi must be >= 1, got {phi}")
    if delta <= 0.0:
        raise ValueError(f"delta must be positive, got {delta}")


# --------------------------------------------------------------------------- #
# Algorithm 2 ("pi0-down" good periods)
# --------------------------------------------------------------------------- #


def algorithm2_round_length(n: int, phi: float, delta: float) -> float:
    """Length of one full round of Algorithm 2 in a good period.

    One send step plus ``2*delta + (n+2)*phi`` receive steps, each taking at
    most ``phi`` time: ``(2*delta + (n+2)*phi + 1) * phi``.
    """
    _check(n, phi, delta)
    return (2 * delta + (n + 2) * phi + 1) * phi


def theorem3_good_period_length(x: int, n: int, phi: float, delta: float) -> float:
    """Theorem 3: minimal "pi0-down" good period for ``P_su(pi0, rho0, rho0+x-1)``.

    ``(x+1)(2*delta + (n+2)*phi + 1)*phi + delta + phi``.
    """
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")
    _check(n, phi, delta)
    return (x + 1) * (2 * delta + (n + 2) * phi + 1) * phi + delta + phi


def corollary4_p2otr_length(n: int, phi: float, delta: float, main_text: bool = True) -> float:
    """Corollary 4: one "pi0-down" good period sufficient for ``P_2otr(pi0)``.

    Main text: ``(6*delta + 3*n*phi + 6*phi + 3)*phi + delta + phi`` (equals
    Theorem 3 with ``x = 2``); Proposition B.1 states ``+2`` instead of
    ``+3`` in the inner parenthesis.
    """
    _check(n, phi, delta)
    constant = 3 if main_text else 2
    return (6 * delta + 3 * n * phi + 6 * phi + constant) * phi + delta + phi


def corollary4_p11otr_length(n: int, phi: float, delta: float, main_text: bool = True) -> float:
    """Corollary 4: each of the two "pi0-down" good periods sufficient for ``P_1/1otr(pi0)``.

    Main text: ``(4*delta + 2*n*phi + 4*phi + 2)*phi + delta + phi`` (equals
    Theorem 3 with ``x = 1``); Proposition B.1 states ``+1`` instead of
    ``+2``.
    """
    _check(n, phi, delta)
    constant = 2 if main_text else 1
    return (4 * delta + 2 * n * phi + 4 * phi + constant) * phi + delta + phi


def theorem5_initial_good_period_length(x: int, n: int, phi: float, delta: float) -> float:
    """Theorem 5: minimal *initial* "pi0-down" good period for ``P_su(pi0, 1, x)``.

    ``x * (2*delta + (n+2)*phi + 1) * phi``.
    """
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")
    _check(n, phi, delta)
    return x * (2 * delta + (n + 2) * phi + 1) * phi


def noninitial_to_initial_ratio(x: int, n: int, phi: float, delta: float) -> float:
    """Ratio Theorem 3 / Theorem 5 for the same ``x``.

    The paper points out this ratio is approximately ``3/2`` for the relevant
    value ``x = 2``.
    """
    return theorem3_good_period_length(x, n, phi, delta) / theorem5_initial_good_period_length(
        x, n, phi, delta
    )


# --------------------------------------------------------------------------- #
# Algorithm 3 ("pi0-arbitrary" good periods)
# --------------------------------------------------------------------------- #


def algorithm3_timeout(n: int, phi: float, delta: float) -> float:
    """The timeout ``tau_0 = 2*delta + (2n+1)*phi`` of Algorithm 3 (in receive steps)."""
    _check(n, phi, delta)
    return 2 * delta + (2 * n + 1) * phi


def algorithm3_round_length(n: int, phi: float, delta: float) -> float:
    """Length of one full round of Algorithm 3 in a good period.

    ``tau_0*phi + delta + n*phi + 2*phi``: the receive-step budget, plus the
    INIT send, its transmission, and its reception (Theorem 6's proof).
    """
    tau0 = algorithm3_timeout(n, phi, delta)
    return tau0 * phi + delta + n * phi + 2 * phi


def theorem6_good_period_length(x: int, n: int, phi: float, delta: float) -> float:
    """Theorem 6: minimal "pi0-arbitrary" good period for ``P_k(pi0, rho0, rho0+x-1)``.

    ``(x+2) * [tau_0*phi + delta + n*phi + 2*phi] + tau_0*phi`` with
    ``tau_0 = 2*delta + (2n+1)*phi``.  Requires ``f < n/2``.
    """
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")
    tau0 = algorithm3_timeout(n, phi, delta)
    return (x + 2) * (tau0 * phi + delta + n * phi + 2 * phi) + tau0 * phi


def theorem7_initial_good_period_length(x: int, n: int, phi: float, delta: float) -> float:
    """Theorem 7: minimal *initial* "pi0-arbitrary" good period for ``P_k(pi0, 1, x)``.

    ``(x-1) * [tau_0*phi + delta + n*phi + 2*phi] + tau_0*phi + phi``.
    """
    if x <= 0:
        raise ValueError(f"x must be positive, got {x}")
    tau0 = algorithm3_timeout(n, phi, delta)
    return (x - 1) * (tau0 * phi + delta + n * phi + 2 * phi) + tau0 * phi + phi


def arbitrary_p2otr_rounds(f: int) -> int:
    """Number of Algorithm 3 rounds needed for ``P_2otr`` through the translation: ``2f+3``.

    Two macro-rounds of ``f+1`` rounds (the worst case starts just after the
    beginning of a macro-round) plus one extra kernel round.
    """
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")
    return 2 * f + 3


def arbitrary_p2otr_length(f: int, n: int, phi: float, delta: float) -> float:
    """Section 4.2.2(c): minimal "pi0-arbitrary" good period for ``P_2otr`` via Algorithm 4.

    ``(2f+5) * [tau_0*phi + delta + n*phi + 2*phi] + tau_0*phi`` -- i.e.
    Theorem 6 instantiated with ``x = 2f+3``.
    """
    if f < 0:
        raise ValueError(f"f must be non-negative, got {f}")
    if 2 * f >= n:
        raise ValueError(f"Algorithm 3/4 require f < n/2, got f={f}, n={n}")
    return theorem6_good_period_length(arbitrary_p2otr_rounds(f), n, phi, delta)


# --------------------------------------------------------------------------- #
# Aggregated views used by benchmark reports
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class BoundSummary:
    """A named analytic bound, convenient for tabulated benchmark output."""

    name: str
    x: int
    n: int
    phi: float
    delta: float
    value: float


def summarize_down_bounds(x: int, n: int, phi: float, delta: float) -> list[BoundSummary]:
    """All Algorithm 2 bounds for one parameter point (Theorems 3, 5, Corollary 4)."""
    return [
        BoundSummary("theorem3", x, n, phi, delta, theorem3_good_period_length(x, n, phi, delta)),
        BoundSummary("theorem5", x, n, phi, delta, theorem5_initial_good_period_length(x, n, phi, delta)),
        BoundSummary("corollary4_p2otr", 2, n, phi, delta, corollary4_p2otr_length(n, phi, delta)),
        BoundSummary("corollary4_p11otr", 1, n, phi, delta, corollary4_p11otr_length(n, phi, delta)),
    ]


def summarize_arbitrary_bounds(x: int, n: int, f: int, phi: float, delta: float) -> list[BoundSummary]:
    """All Algorithm 3/4 bounds for one parameter point (Theorems 6, 7, Section 4.2.2c)."""
    return [
        BoundSummary("theorem6", x, n, phi, delta, theorem6_good_period_length(x, n, phi, delta)),
        BoundSummary("theorem7", x, n, phi, delta, theorem7_initial_good_period_length(x, n, phi, delta)),
        BoundSummary(
            "arbitrary_p2otr",
            arbitrary_p2otr_rounds(f),
            n,
            phi,
            delta,
            arbitrary_p2otr_length(f, n, phi, delta),
        ),
    ]


__all__ = [
    "algorithm2_round_length",
    "theorem3_good_period_length",
    "corollary4_p2otr_length",
    "corollary4_p11otr_length",
    "theorem5_initial_good_period_length",
    "noninitial_to_initial_ratio",
    "algorithm3_timeout",
    "algorithm3_round_length",
    "theorem6_good_period_length",
    "theorem7_initial_good_period_length",
    "arbitrary_p2otr_rounds",
    "arbitrary_p2otr_length",
    "BoundSummary",
    "summarize_down_bounds",
    "summarize_arbitrary_bounds",
]
