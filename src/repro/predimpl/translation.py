"""Algorithm 4 / 7: translating ``P_k(Pi0, -, -)`` into ``P_su(Pi0, -, -)``.

Kernel rounds (every process of Pi0 hears of at least Pi0) are cheaper to
implement in "pi0-arbitrary" good periods than space-uniform rounds (every
process of Pi0 hears of *exactly the same* set).  Algorithm 4 bridges the
gap: it groups ``f+1`` inner rounds (with ``|Pi0| = n - f``) into one
*macro-round* of the upper-layer algorithm.  During the first ``f`` rounds
of a macro-round processes gossip the upper-layer messages they know about;
in the last round each process computes the macro-round heard-of set
``NewHO`` as the processes reported by at least ``n - f`` of the processes
it still listens to, and runs the upper layer's transition.

Theorem 8: for ``n > 2f``, if the ``f+1`` inner rounds of a macro-round all
satisfy ``P_k(Pi0, -, -)`` then every process of Pi0 computes the *same*
``NewHO`` (the set of "good" processes), which contains Pi0 -- a
space-uniform macro-round.  The property-based tests and benchmark E6 check
this empirically.

The translation is itself an HO algorithm: it can be executed directly by
the round-level :class:`~repro.core.machine.HOMachine` (as in the Theorem 8
benchmark) or stacked on top of Algorithm 3 in the step-level simulator (as
in the end-to-end consensus benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Mapping, Optional

from ..core.algorithm import HOAlgorithm
from ..core.types import ProcessId, Round, all_processes


@dataclass(frozen=True)
class TranslationMessage:
    """The gossip message of Algorithm 4: the sender's ``Known`` set.

    ``known`` maps each process to the upper-layer macro-round message the
    sender knows for it.
    """

    known: Mapping[ProcessId, Any]


@dataclass(frozen=True)
class TranslationState:
    """State of Algorithm 4 for one process.

    * ``listen``: processes still listened to in the current macro-round;
    * ``known``: upper-layer messages known so far (process -> payload);
    * ``inner_state``: the upper-layer algorithm's state;
    * ``macro_round``: the upper-layer round number;
    * ``last_new_ho``: the macro heard-of set computed at the last macro-round
      boundary (recorded for analysis / tests of Theorem 8).
    """

    listen: FrozenSet[ProcessId]
    known: Mapping[ProcessId, Any]
    inner_state: Any
    macro_round: Round
    last_new_ho: Optional[FrozenSet[ProcessId]] = None


class KernelToUniformTranslation(HOAlgorithm[TranslationState, TranslationMessage]):
    """Algorithm 4: an ``f+1``-round translation of kernel rounds into space-uniform macro-rounds."""

    name = "pk-to-psu-translation"

    def __init__(self, inner: HOAlgorithm, f: int) -> None:
        super().__init__(inner.n)
        if not 0 <= f:
            raise ValueError(f"f must be non-negative, got {f}")
        if inner.n <= 2 * f:
            raise ValueError(
                f"the translation requires n > 2f, got n={inner.n}, f={f}"
            )
        self.inner = inner
        self.f = f
        self.rounds_per_macro = f + 1

    # ------------------------------------------------------------------ #
    # round structure helpers
    # ------------------------------------------------------------------ #

    def macro_round_of(self, round: Round) -> Round:
        """The macro-round an inner round belongs to (1-based)."""
        return (round - 1) // self.rounds_per_macro + 1

    def is_boundary_round(self, round: Round) -> bool:
        """Whether *round* is the last round of its macro-round (``r = 0 mod f+1``)."""
        return round % self.rounds_per_macro == 0

    # ------------------------------------------------------------------ #
    # HO-algorithm interface
    # ------------------------------------------------------------------ #

    def initial_state(self, process: ProcessId, initial_value: Any) -> TranslationState:
        inner_state = self.inner.initial_state(process, initial_value)
        first_payload = self.inner.send(1, process, inner_state)
        return TranslationState(
            listen=all_processes(self.n),
            known={process: first_payload},
            inner_state=inner_state,
            macro_round=1,
        )

    def send(
        self, round: Round, process: ProcessId, state: TranslationState
    ) -> TranslationMessage:
        return TranslationMessage(known=dict(state.known))

    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: TranslationState,
        received: Mapping[ProcessId, TranslationMessage],
    ) -> TranslationState:
        listen = state.listen & frozenset(received.keys())
        if not self.is_boundary_round(round):
            merged: Dict[ProcessId, Any] = dict(state.known)
            for q in listen:
                merged.update(received[q].known)
            return TranslationState(
                listen=listen,
                known=merged,
                inner_state=state.inner_state,
                macro_round=state.macro_round,
                last_new_ho=state.last_new_ho,
            )
        return self._boundary_transition(process, state, listen, received)

    def _boundary_transition(
        self,
        process: ProcessId,
        state: TranslationState,
        listen: FrozenSet[ProcessId],
        received: Mapping[ProcessId, TranslationMessage],
    ) -> TranslationState:
        # NewHO: processes reported by at least n - f of the listened-to senders.
        report_counts: Dict[ProcessId, int] = {}
        for q in listen:
            for reported in received[q].known:
                report_counts[reported] = report_counts.get(reported, 0) + 1
        new_ho = frozenset(
            reported
            for reported, count in report_counts.items()
            if count >= self.n - self.f
        )

        upper_received: Dict[ProcessId, Any] = {}
        for member in new_ho:
            payload = self._payload_for(member, listen, received, state)
            if payload is not None:
                upper_received[member] = payload

        macro_round = state.macro_round
        inner_state = self.inner.transition(macro_round, process, state.inner_state, upper_received)
        next_macro = macro_round + 1
        next_payload = self.inner.send(next_macro, process, inner_state)
        return TranslationState(
            listen=all_processes(self.n),
            known={process: next_payload},
            inner_state=inner_state,
            macro_round=next_macro,
            last_new_ho=new_ho,
        )

    @staticmethod
    def _payload_for(
        member: ProcessId,
        listen: FrozenSet[ProcessId],
        received: Mapping[ProcessId, TranslationMessage],
        state: TranslationState,
    ) -> Optional[Any]:
        for q in sorted(listen):
            known = received[q].known
            if member in known:
                return known[member]
        return state.known.get(member)

    def decision(self, state: TranslationState) -> Optional[Any]:
        return self.inner.decision(state.inner_state)


__all__ = ["KernelToUniformTranslation", "TranslationMessage", "TranslationState"]
