"""Wire format of the predicate-implementation layer.

Algorithms 2 and 3 exchange two kinds of messages:

* ``ROUND`` messages ``<ROUND, r, msg>`` carrying the upper-layer payload
  ``msg = S_p^r(s_p)`` for round ``r`` (Algorithm 2 only uses these);
* ``INIT`` messages ``<INIT, r+1, msg>`` by which a process announces its
  intention to enter round ``r+1``; they piggy-back the sender's current
  round-``r`` payload so that the evidence they provide about round ``r``
  is not lost (Algorithm 3, lines 12-20).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from ..core.types import Round


class WireKind(enum.Enum):
    """The two message kinds of the predicate-implementation layer."""

    ROUND = "ROUND"
    INIT = "INIT"


@dataclass(frozen=True)
class WireMessage:
    """A message of the predicate-implementation layer.

    For ``ROUND`` messages, *round* is the round the payload belongs to.
    For ``INIT`` messages, *round* is the round the sender intends to enter;
    the payload is the sender's message for round ``round - 1``.
    """

    kind: WireKind
    round: Round
    payload: Any

    def evidence_round(self) -> Round:
        """The round this message is evidence for (Algorithm 3, line 12).

        A ``ROUND`` message for round ``r`` proves the sender reached round
        ``r``; an ``INIT`` message for round ``r+1`` proves the sender
        finished (the receive phase of) round ``r``.
        """
        if self.kind is WireKind.ROUND:
            return self.round
        return self.round - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<{self.kind.value}, {self.round}, {self.payload!r}>"


def round_message(round: Round, payload: Any) -> WireMessage:
    """Build a ``<ROUND, round, payload>`` message."""
    return WireMessage(kind=WireKind.ROUND, round=round, payload=payload)


def init_message(round: Round, payload: Any) -> WireMessage:
    """Build an ``<INIT, round, payload>`` message announcing entry into *round*."""
    return WireMessage(kind=WireKind.INIT, round=round, payload=payload)


__all__ = ["WireKind", "WireMessage", "round_message", "init_message"]
