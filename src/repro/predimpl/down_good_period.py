"""Algorithm 2: ensuring ``P_su(pi0, -, -)`` in a "pi0-down" good period.

The program drives an upper-layer HO algorithm (its ``S_p^r`` / ``T_p^r``
functions) from the step-based system model:

* it sends ``<msg, r>`` to all at the beginning of round ``r`` (one send
  step),
* it then takes receive steps until either it has taken
  ``ceil(2*delta + (n+2)*phi)`` of them (the round timeout) or it receives a
  message with a higher round number ``r' > r``, in which case it jumps to
  round ``r'``,
* it finally runs ``T_p^r`` with the messages received for round ``r`` and
  ``T_p^{r'}`` with the empty set for every skipped round ``r'``.

The reception policy is "highest round number first".  The round number and
the upper-layer state live on stable storage; after a crash the process
recovers at the top of the loop with the message set and the next-round
variable reinitialised, exactly as specified in Section 4.2.1.

Algorithm 2 sends no messages of its own: only the upper layer's messages
travel on the network.

The send -> environment -> transition loop itself belongs to the shared
:class:`repro.rounds.RoundEngine`: this program only decides *when* a round
is over (the step-level timeout/jump policy) and deposits receptions into
the engine's :class:`~repro.rounds.engine.StepTransport`; finishing a round
-- transition, skipped-round handling, unified trace records -- is engine
code shared with the HO machine and Algorithm 3.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

from ..core.algorithm import HOAlgorithm
from ..core.types import ProcessId, Round
from ..rounds.engine import RoundEngine, StepTransport
from ..sysmodel.network import Envelope
from ..sysmodel.params import SynchronyParams
from ..sysmodel.process import ReceiveStep, SendStep, StepProgram, StepProgramGenerator
from ..sysmodel.trace import SystemRunTrace
from .wire import WireKind, WireMessage, round_message

#: Stable-storage keys used by the program (Section 4.2: ``r_p`` and ``s_p``).
ROUND_KEY = "round"
STATE_KEY = "state"


class DownGoodPeriodProgram(StepProgram):
    """One process of Algorithm 2, implementing ``P_su`` in "pi0-down" good periods."""

    def __init__(
        self,
        process_id: ProcessId,
        n: int,
        algorithm: HOAlgorithm,
        initial_value: Any,
        params: SynchronyParams,
        trace: SystemRunTrace,
        engine: Optional[RoundEngine] = None,
    ) -> None:
        super().__init__(process_id, n)
        self.algorithm = algorithm
        self.params = params
        self.trace = trace
        if engine is None:
            engine = RoundEngine(algorithm, StepTransport(n), trace)
        self.engine = engine
        self.transport: StepTransport = engine.transport
        #: receive-step budget per round: ceil(2*delta + (n+2)*phi)
        self.timeout = params.algorithm2_timeout(n)
        self.stable_storage.store(ROUND_KEY, 1)
        self.stable_storage.store(
            STATE_KEY, algorithm.initial_state(process_id, initial_value)
        )

    # ------------------------------------------------------------------ #
    # reception policy: highest round number first
    # ------------------------------------------------------------------ #

    def select_message(self, buffered: Sequence[Envelope]) -> Optional[Envelope]:
        if not buffered:
            return None
        return max(
            buffered,
            key=lambda envelope: (
                self._round_of(envelope),
                -envelope.sequence,
            ),
        )

    @staticmethod
    def _round_of(envelope: Envelope) -> Round:
        payload = envelope.payload
        if isinstance(payload, WireMessage):
            return payload.round
        return 0

    # ------------------------------------------------------------------ #
    # the program (Algorithm 2, lines 6-22)
    # ------------------------------------------------------------------ #

    def program(self) -> StepProgramGenerator:
        round_number: Round = self.stable_storage.load(ROUND_KEY)
        state = self.stable_storage.load(STATE_KEY)
        # The received-message set is volatile (lost on a crash): the mailbox
        # the engine's transport keeps for this process is cleared on (re)boot.
        self.transport.reset(self.process_id)
        next_round = round_number

        while True:
            payload = self.engine.send_payload(round_number, self.process_id, state)
            result = yield SendStep(payload=round_message(round_number, payload))
            self.trace.record_round_start(self.process_id, round_number, result.time)

            receive_steps = 0
            last_time = result.time
            while next_round == round_number:
                receive_steps += 1
                if receive_steps >= self.timeout:
                    next_round = round_number + 1
                result = yield ReceiveStep()
                last_time = result.time
                envelope = result.envelope
                if envelope is not None and isinstance(envelope.payload, WireMessage):
                    message = envelope.payload
                    if message.kind is WireKind.ROUND and message.round >= round_number:
                        self.transport.deposit(
                            self.process_id, message.round, envelope.sender, message.payload
                        )
                        self.trace.record_reception(
                            self.process_id, message.round, envelope.sender, result.time
                        )
                        if message.round > round_number:
                            next_round = message.round

            # The engine finishes the round: T^r on the collected view, T^{r'}
            # on the empty view for skipped rounds, records and mailbox pruning.
            state = self.engine.finish_rounds(
                self.process_id, round_number, next_round, state, last_time
            )
            round_number = next_round
            self.stable_storage.store(ROUND_KEY, round_number)
            self.stable_storage.store(STATE_KEY, state)


def build_down_period_programs(
    algorithm: HOAlgorithm,
    initial_values: Sequence[Any],
    params: SynchronyParams,
    trace: SystemRunTrace,
    observers: Sequence[Any] = (),
) -> list[DownGoodPeriodProgram]:
    """One :class:`DownGoodPeriodProgram` per process, sharing *trace*.

    All processes share one :class:`~repro.rounds.RoundEngine` (and its
    step transport), mirroring the shared trace.  *observers* are
    :class:`~repro.rounds.engine.RoundObserver` hooks fed every record the
    shared engine produces (streaming predicate monitors ride here).
    """
    n = algorithm.n
    if len(initial_values) != n:
        raise ValueError(
            f"expected {n} initial values, got {len(initial_values)}"
        )
    engine = RoundEngine(algorithm, StepTransport(n), trace, observers=observers)
    return [
        DownGoodPeriodProgram(
            process_id=p,
            n=n,
            algorithm=algorithm,
            initial_value=initial_values[p],
            params=params,
            trace=trace,
            engine=engine,
        )
        for p in range(n)
    ]


__all__ = ["DownGoodPeriodProgram", "build_down_period_programs", "ROUND_KEY", "STATE_KEY"]
