"""The step-path execution backends: the crash-recovery stacks behind ReplicaBatch.

The round-level backends (:mod:`repro.rounds.backend`, :mod:`repro.batch`)
execute oracle-driven lockstep runs; the theorems of Sections 4 and 5 are
instead statements about the *step-level* stacks -- Algorithm 2 in pi0-down
good periods, Algorithm 3 (optionally under the Algorithm 4 translation) in
pi0-arbitrary good periods -- running on the discrete-event
:class:`~repro.sysmodel.simulator.SystemSimulator`.  This module puts those
stacks behind the same :class:`~repro.rounds.backend.ReplicaBatch` /
:class:`~repro.rounds.backend.ReplicaOutcome` unit of work, so sweeps,
benchmarks and the CLI choose *how* R seeded replicas execute without
knowing *what* a replica is:

* ``step-scalar`` -- :class:`ScalarStepBackend`, the reference: one full
  :class:`SystemSimulator` run per replica, its
  :class:`~repro.sysmodel.trace.SystemRunTrace` projected onto the
  round-level outcome schema (see below);
* ``step-batch`` -- :class:`BatchStepBackend`: cells whose step-level run
  is provably round-equivalent -- the fault-free, always-good pi0-down
  stack, where every synchronous process steps every ``good_step_gap`` and
  every round's heard-of set is the whole of Pi -- are *lowered* to a
  round-level :class:`ReplicaBatch` over the same upper algorithm and a
  :class:`~repro.adversaries.FaultFreeOracle`, executed by the vectorised
  ``batch`` backend.  Everything else (arbitrary-timing event
  interleavings of faulty cells, the Algorithm 3 init/round wire protocol,
  monitored runs) degrades per cell to the scalar step path, with the
  reason recorded in ``last_fallback_reason`` -- exactly the
  :class:`~repro.batch.super.SuperBatchBackend` degradation discipline.

A replica's "oracle" on the step path is a :class:`StepEnvironment`: the
declarative description of the stack kind, fault model and synchrony
parameters from which both backends rebuild identical simulations (the
step path has no heard-of oracle -- the environment plays its role as the
per-replica source of nondeterminism, seeded by ``ReplicaTask.seed``).

**The round-level projection.**  Outcomes are comparable across the round
and step worlds because the step trace is projected to round granularity:

* ``decisions`` / ``decision_rounds`` come from the trace's first-decision
  records;
* ``rounds_executed`` is the round the scalar round loop would have
  stopped at: the largest scoped decision round when the scope decided
  (and the horizon was not exceeded), otherwise the last round completed
  by every scoped process, clamped to ``max_rounds``;
* ``messages_sent`` is ``n * n * rounds_executed`` (every round-level
  backend accounts a full all-to-all per round -- step-level wire counts,
  retransmissions and INIT traffic live in the full trace, not here);
* ``messages_delivered`` sums the heard-of popcounts of the executed
  rounds' records, exactly like the round engines;
* fingerprints digest the executed rounds' records in process order --
  the scalar round backend's natural record order -- so the lowered
  fault-free cell is pinned bit-identical to ``step-scalar`` round by
  round, not just on final decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..rounds.backend import (
    ReplicaBatch,
    ReplicaFingerprint,
    ReplicaOutcome,
    ReplicaTask,
    finish_fingerprint,
    get_backend,
    register_backend,
)
from ..rounds.bitmask import iter_bits
from ..rounds.fallback import FallbackReason
from ..rounds.record import RoundRecord
from ..sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)
from .stack import build_arbitrary_stack, build_down_stack

#: The two predicate-implementation stacks a step replica can run.
DOWN_GOOD = "down-good"
ARBITRARY_GOOD = "arbitrary-good"
STEP_KINDS = (DOWN_GOOD, ARBITRARY_GOOD)

#: The fault-model axis of the step scenarios (mirrors
#: ``repro.workloads.FAULT_MODELS``; duplicated here because the backend
#: layer sits below the workloads).
STEP_FAULT_MODELS = ("fault-free", "crash-stop", "crash-recovery", "lossy")


@dataclass(frozen=True)
class StepEnvironment:
    """The declarative per-replica description of one step-level run.

    Carried in ``ReplicaTask.oracle``: on the step path the environment is
    the oracle -- it fixes the stack (*kind*), the fault schedule
    (*fault_model*, with the same schedules the ``ho-stack`` scenario
    uses), the synchrony bounds and, for the arbitrary stack, the
    resilience *f* and whether Algorithm 4 sits between the upper
    algorithm and Algorithm 3.  ``ReplicaTask.seed`` seeds the simulator's
    ``steps``/``network`` sub-streams, so two tasks with equal
    environments and equal seeds replay the same run exactly.
    """

    kind: str = DOWN_GOOD
    fault_model: str = "fault-free"
    phi: float = 1.0
    delta: float = 2.0
    f: int = 0
    use_translation: bool = True
    bad_period_length: float = 80.0
    good_period_length: float = 400.0

    def __post_init__(self) -> None:
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step stack kind {self.kind!r}; expected one of {STEP_KINDS}")
        if self.fault_model not in STEP_FAULT_MODELS:
            raise ValueError(
                f"unknown fault model {self.fault_model!r}; expected one of {STEP_FAULT_MODELS}"
            )
        if self.f < 0:
            raise ValueError(f"f must be non-negative, got {self.f}")

    def params(self) -> SynchronyParams:
        return SynchronyParams(phi=self.phi, delta=self.delta)

    def round_timeout(self, n: int) -> int:
        """The receive-step budget of one round of the underlying algorithm."""
        params = self.params()
        if self.kind == DOWN_GOOD:
            return params.algorithm2_timeout(n)
        return params.algorithm3_timeout(n)


def _environment_of(task: ReplicaTask) -> StepEnvironment:
    env = task.oracle
    if not isinstance(env, StepEnvironment):
        raise TypeError(
            "step-path backends expect a StepEnvironment in ReplicaTask.oracle, "
            f"got {type(env).__name__}"
        )
    return env


def _fault_plan(
    env: StepEnvironment, n: int
) -> Tuple[PeriodSchedule, FaultSchedule, bool]:
    """The period schedule, fault schedule and bad-period lossiness of a cell.

    These are exactly the fault models of the ``ho-stack`` scenario
    (:func:`repro.workloads.run_ho_stack`), so the step backends reproduce
    the same runs that scenario has always produced per seed.
    """
    if env.fault_model == "fault-free":
        return PeriodSchedule.always_good(n, GoodPeriodKind.PI_GOOD), FaultSchedule.none(), False
    if env.fault_model == "crash-stop":
        pi0 = frozenset(range(n - 1))
        faults = FaultSchedule.crash_stop([(n - 1, env.bad_period_length / 4)])
        schedule = PeriodSchedule.single_good_period(
            n, start=env.bad_period_length, length=env.good_period_length,
            kind=GoodPeriodKind.PI0_DOWN, pi0=pi0,
        )
        return schedule, faults, True
    if env.fault_model == "crash-recovery":
        incidents = [
            (p, env.bad_period_length * (0.1 + 0.15 * p), env.bad_period_length * (0.3 + 0.15 * p))
            for p in range(n)
        ]
        faults = FaultSchedule.crash_recovery(incidents)
        schedule = PeriodSchedule.single_good_period(
            n, start=env.bad_period_length, length=env.good_period_length,
            kind=GoodPeriodKind.PI0_DOWN,
        )
        return schedule, faults, True
    # "lossy": no crashes, only bad-period message loss before the good period.
    schedule = PeriodSchedule.single_good_period(
        n, start=env.bad_period_length, length=env.good_period_length,
        kind=GoodPeriodKind.PI0_DOWN,
    )
    return schedule, FaultSchedule.none(), True


class ScalarStepBackend:
    """The step-path reference: one SystemSimulator run per replica.

    Every replica builds its predicate stack (Algorithm 2 for
    ``down-good``, Algorithm 3 [+ Algorithm 4] for ``arbitrary-good``),
    runs it under the environment's fault plan with the task's seed, and
    projects the trace to the round-level outcome schema described in the
    module docstring.  ``step-batch`` is specified by bit-identity against
    this backend, per seed, exactly as ``batch`` is against ``scalar``.
    """

    name = "step-scalar"

    def __init__(self, keep_traces: bool = False) -> None:
        #: retain each replica's full :class:`SystemRunTrace` in
        #: ``last_traces``.  Off by default: sweep records must stay slim
        #: and picklable, and the round-level outcome already carries
        #: everything the aggregates need.
        self.keep_traces = keep_traces
        self.last_traces: List[Optional[Any]] = []

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        self.last_traces = []
        return [self._run_replica(batch, task) for task in batch.tasks]

    def _run_replica(self, batch: ReplicaBatch, task: ReplicaTask) -> ReplicaOutcome:
        env = _environment_of(task)
        n = batch.n
        algorithm = task.algorithm
        if algorithm.n != n:
            raise ValueError(f"algorithm is sized for n={algorithm.n}, batch has n={n}")
        scope = tuple(iter_bits(batch.effective_scope_mask))
        if not scope and not batch.run_full_horizon:
            # The scalar round loop runs zero rounds for an empty scope;
            # mirror it without spinning up a simulator.
            if self.keep_traces:
                self.last_traces.append(None)
            return self._empty_outcome(batch, task)
        monitor = batch.monitor_factory() if batch.monitor_factory is not None else None
        observers: Tuple[Any, ...] = (monitor,) if monitor is not None else ()
        params = env.params()
        if env.kind == DOWN_GOOD:
            stack = build_down_stack(
                algorithm, list(task.initial_values), params, observers=observers
            )
        else:
            stack = build_arbitrary_stack(
                algorithm, env.f, list(task.initial_values), params,
                use_translation=env.use_translation, observers=observers,
            )
        schedule, faults, lossy = _fault_plan(env, n)
        trace = stack.trace
        simulator = SystemSimulator(
            stack.programs,
            params,
            schedule,
            fault_schedule=faults,
            bad_network=BadPeriodNetwork(
                loss_probability=0.5 if lossy else 0.0, min_delay=1.0, max_delay=30.0
            ),
            bad_process_behavior=BadPeriodProcessBehavior(
                min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
            ),
            seed=task.seed,
            trace=trace,
        )
        until = self._horizon_time(env, batch, n)
        stop_when = self._stop_predicate(env, batch, trace, monitor, scope)
        simulator.run(until=until, stop_when=stop_when)
        if self.keep_traces:
            self.last_traces.append(trace)
        return self._derive_outcome(batch, task, trace, monitor, scope)

    # ------------------------------------------------------------------ #
    # run-length policy
    # ------------------------------------------------------------------ #

    @staticmethod
    def _horizon_time(env: StepEnvironment, batch: ReplicaBatch, n: int) -> float:
        """Simulated-time budget covering the batch's round horizon.

        Fault-free cells are always-good, so time is sized generously from
        the per-round step budget (one send step plus the receive-step
        timeout, each ``good_step_gap <= phi`` apart) and the *round*
        horizon binds.  Faulted cells keep the ``ho-stack`` scenario
        semantics -- one bad period followed by one good period -- and the
        *time* horizon binds.
        """
        if env.fault_model == "fault-free":
            per_round = (env.round_timeout(n) + 2) * env.phi
            return (batch.max_rounds + 2) * per_round
        return env.bad_period_length + env.good_period_length

    @staticmethod
    def _stop_predicate(
        env: StepEnvironment,
        batch: ReplicaBatch,
        trace: Any,
        monitor: Optional[Any],
        scope: Tuple[int, ...],
    ) -> Optional[Callable[[], bool]]:
        conditions: List[Callable[[], bool]] = []
        if monitor is not None:
            conditions.append(lambda: bool(getattr(monitor, "stop_requested", False)))
        if not batch.run_full_horizon and scope:
            scope_set = frozenset(scope)
            decisions = trace.decisions
            conditions.append(lambda: scope_set.issubset(decisions))
        if env.fault_model == "fault-free":
            # Always-good runs have no meaningful time horizon; cut the
            # simulation once the lockstep front passes the round horizon.
            conditions.append(lambda: trace.max_round() > batch.max_rounds)
        if not conditions:
            return None
        return lambda: any(condition() for condition in conditions)

    # ------------------------------------------------------------------ #
    # the trace -> outcome projection
    # ------------------------------------------------------------------ #

    def _derive_outcome(
        self,
        batch: ReplicaBatch,
        task: ReplicaTask,
        trace: Any,
        monitor: Optional[Any],
        scope: Tuple[int, ...],
    ) -> ReplicaOutcome:
        scope_set = frozenset(scope)
        completed = self._completed_rounds(trace, scope_set)
        scoped_rounds = [
            record.round for p, record in trace.decisions.items() if p in scope_set
        ]
        scope_decided = bool(scope_set) and scope_set.issubset(trace.decisions)
        if (
            scope_decided
            and not batch.run_full_horizon
            and max(scoped_rounds) <= batch.max_rounds
        ):
            # The scalar round loop stops right after the round in which
            # the last scoped process decided.
            rounds_executed = max(scoped_rounds)
        else:
            rounds_executed = min(completed, batch.max_rounds)
        decisions: Dict[int, Any] = {}
        decision_rounds: Dict[int, int] = {}
        for p, record in trace.decisions.items():
            if record.round <= rounds_executed:
                decisions[p] = record.value
                decision_rounds[p] = record.round
        messages_sent = batch.n * batch.n * rounds_executed
        messages_delivered = 0
        by_round: Dict[int, List[RoundRecord]] = {}
        for record in trace.records:
            if 1 <= record.round <= rounds_executed:
                messages_delivered += bin(record.ho_mask).count("1")
                by_round.setdefault(record.round, []).append(record)
        fingerprint = None
        if batch.fingerprints:
            fingerprint = self._fingerprint(
                by_round, rounds_executed, decisions, decision_rounds,
                messages_sent, messages_delivered,
            )
        stopped_early = bool(getattr(monitor, "stop_requested", False))
        reports = monitor.reports_json() if monitor is not None else None
        return ReplicaOutcome(
            seed=task.seed,
            decisions=decisions,
            decision_rounds=decision_rounds,
            rounds_executed=rounds_executed,
            messages_sent=messages_sent,
            messages_delivered=messages_delivered,
            stopped_early=stopped_early,
            predicate_reports=reports,
            fingerprint=fingerprint,
        )

    @staticmethod
    def _completed_rounds(trace: Any, scope_set: frozenset) -> int:
        """The last round every scoped process has executed.

        The shared round engine fills skipped rounds with empty-view
        transitions, so each process's executed rounds are the contiguous
        prefix 1..k_p and the scope-completed round is ``min_p k_p``.
        """
        if not scope_set:
            return 0
        max_done = {p: 0 for p in scope_set}
        for (p, r) in trace.transition_times:
            if p in max_done and r > max_done[p]:
                max_done[p] = r
        return min(max_done.values())

    @staticmethod
    def _fingerprint(
        by_round: Dict[int, List[RoundRecord]],
        rounds_executed: int,
        decisions: Dict[int, Any],
        decision_rounds: Dict[int, int],
        messages_sent: int,
        messages_delivered: int,
    ) -> str:
        fingerprint = ReplicaFingerprint()
        for round in range(1, rounds_executed + 1):
            records = sorted(by_round.get(round, []), key=lambda record: record.process)
            seen: set = set()
            ordered: List[RoundRecord] = []
            for record in records:
                if record.process not in seen:
                    seen.add(record.process)
                    ordered.append(record)
            newly_decided = [
                (record.process, repr(decisions[record.process]))
                for record in ordered
                if decision_rounds.get(record.process) == round
            ]
            fingerprint.observe_round(
                round,
                [record.ho_mask for record in ordered],
                [repr(getattr(record.state_after, "x", None)) for record in ordered],
                newly_decided,
            )
        digest = finish_fingerprint(
            fingerprint, decisions, decision_rounds, rounds_executed,
            messages_sent, messages_delivered,
        )
        assert digest is not None
        return digest

    @staticmethod
    def _empty_outcome(batch: ReplicaBatch, task: ReplicaTask) -> ReplicaOutcome:
        fingerprint = ReplicaFingerprint() if batch.fingerprints else None
        return ReplicaOutcome(
            seed=task.seed,
            decisions={},
            decision_rounds={},
            rounds_executed=0,
            messages_sent=0,
            messages_delivered=0,
            stopped_early=False,
            predicate_reports=None,
            fingerprint=finish_fingerprint(fingerprint, {}, {}, 0, 0, 0),
        )


class BatchStepBackend:
    """Vectorised step-path execution where lockstep holds, scalar elsewhere.

    The only cells whose step-level runs are round-equivalent -- and hence
    lowerable to the vectorised round engine -- are the fault-free,
    always-good ``down-good`` cells: every process is synchronous from
    time 0, steps every ``good_step_gap``, nothing is lost or delayed
    beyond ``delta``, and Algorithm 2's receive loop only ends at its
    timeout, so every process executes round r's transition with
    ``HO = Pi`` in lockstep.  Such a cell *is* the upper algorithm under a
    :class:`FaultFreeOracle`, round for round, and runs as one
    ``(R, n, ceil(n/64))`` batched unit.  Every other cell -- faulty
    schedules (down processes take no steps; bad-period timing is
    event-granular), the ``arbitrary-good`` stack (its INIT/round wire
    protocol and the translation's message timing are not round-shaped
    until the good period stabilises) and monitored runs (monitors attach
    to the step engine's observer hook) -- degrades per cell to
    :class:`ScalarStepBackend`, with the reason in
    ``last_fallback_reason``.
    """

    name = "step-batch"

    def __init__(self, force_fallback: bool = False) -> None:
        self.force_fallback = force_fallback
        self._scalar = ScalarStepBackend()
        #: why the last ``run`` degraded to the scalar step path (None =
        #: it lowered to the vectorised round engine).
        self.last_fallback_reason: Optional[str] = None

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        reason = self._fallback_reason(batch)
        self.last_fallback_reason = reason
        if reason is not None:
            return self._scalar.run(batch)
        return self._run_lowered(batch)

    # ------------------------------------------------------------------ #
    # the lowering decision
    # ------------------------------------------------------------------ #

    def _fallback_reason(self, batch: ReplicaBatch) -> Optional[str]:
        from .._optional import have_numpy

        if self.force_fallback:
            return FallbackReason.FORCED.render()
        if not have_numpy():
            return FallbackReason.NO_NUMPY.render()
        environments = {_environment_of(task) for task in batch.tasks}
        if len(environments) != 1:
            return FallbackReason.MIXED_STEP_ENVIRONMENTS.render()
        env = next(iter(environments))
        if env.kind != DOWN_GOOD:
            return FallbackReason.ARBITRARY_GOOD_STACK.render()
        if env.fault_model != "fault-free":
            return FallbackReason.FAULTED_STEP_CELL.render(fault_model=env.fault_model)
        if batch.monitor_factory is not None or batch.monitor_spec is not None:
            return FallbackReason.MONITORED_STEP_PATH.render()
        return None

    # ------------------------------------------------------------------ #
    # the lowering itself
    # ------------------------------------------------------------------ #

    @staticmethod
    def _run_lowered(batch: ReplicaBatch) -> List[ReplicaOutcome]:
        from ..adversaries import FaultFreeOracle

        lowered = ReplicaBatch(
            n=batch.n,
            tasks=[
                ReplicaTask(
                    seed=task.seed,
                    algorithm=task.algorithm,
                    oracle=FaultFreeOracle(batch.n),
                    initial_values=task.initial_values,
                )
                for task in batch.tasks
            ],
            max_rounds=batch.max_rounds,
            scope_mask=batch.scope_mask,
            run_full_horizon=batch.run_full_horizon,
            fingerprints=batch.fingerprints,
        )
        return get_backend("batch").run(lowered)


def step_horizon_rounds(env: StepEnvironment, n: int, margin: int = 4) -> int:
    """A round horizon safely covering a cell's time budget.

    Faulted cells are bounded by simulated time, not rounds; scenario code
    still needs a ``max_rounds`` for the outcome projection.  One round
    costs at least one send step plus the receive-step timeout at unit
    step gaps, so this bound can never truncate a run's executed rounds.
    """
    budget = env.bad_period_length + env.good_period_length
    return margin + math.ceil(budget / (env.round_timeout(n) + 1))


register_backend(ScalarStepBackend())
register_backend(BatchStepBackend())


__all__ = [
    "ARBITRARY_GOOD",
    "DOWN_GOOD",
    "STEP_FAULT_MODELS",
    "STEP_KINDS",
    "StepEnvironment",
    "ScalarStepBackend",
    "BatchStepBackend",
    "step_horizon_rounds",
]
