"""Convenience constructors for complete predicate-implementation stacks.

The paper's architecture (Figure 1) stacks an HO algorithm on top of a
predicate-implementation layer, which in turn runs on the system model.
This module wires the pieces together:

* :func:`build_down_stack` -- OneThirdRule (or any HO algorithm) over
  Algorithm 2, for "pi0-down" good periods;
* :func:`build_arbitrary_stack` -- an HO algorithm over Algorithm 4 (the
  ``P_k -> P_su`` translation) over Algorithm 3, for "pi0-arbitrary" good
  periods.  The translation can be omitted to study Algorithm 3 and ``P_k``
  in isolation (Theorems 6 and 7).

Each constructor returns the per-process programs plus the shared trace, so
the caller only has to hand the programs to a
:class:`~repro.sysmodel.simulator.SystemSimulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence

from ..core.algorithm import HOAlgorithm
from ..sysmodel.params import SynchronyParams
from ..sysmodel.process import StepProgram
from ..sysmodel.trace import SystemRunTrace
from .arbitrary_good_period import build_arbitrary_period_programs
from .down_good_period import build_down_period_programs
from .translation import KernelToUniformTranslation


@dataclass
class PredicateStack:
    """A ready-to-simulate stack: per-process step programs plus the shared trace."""

    programs: List[StepProgram]
    trace: SystemRunTrace
    upper_algorithm: HOAlgorithm
    round_algorithm: HOAlgorithm
    translation: Optional[KernelToUniformTranslation] = None

    @property
    def n(self) -> int:
        """Number of processes."""
        return len(self.programs)


def build_down_stack(
    upper_algorithm: HOAlgorithm,
    initial_values: Sequence[Any],
    params: SynchronyParams,
    trace: Optional[SystemRunTrace] = None,
    observers: Sequence[Any] = (),
) -> PredicateStack:
    """An HO algorithm over Algorithm 2 (for "pi0-down" good periods).

    *observers* attach to the shared round engine and see every round
    record as the step-level run produces it (streaming predicate
    monitors use this hook).
    """
    shared_trace = trace if trace is not None else SystemRunTrace(n=upper_algorithm.n)
    programs = build_down_period_programs(
        algorithm=upper_algorithm,
        initial_values=initial_values,
        params=params,
        trace=shared_trace,
        observers=observers,
    )
    return PredicateStack(
        programs=list(programs),
        trace=shared_trace,
        upper_algorithm=upper_algorithm,
        round_algorithm=upper_algorithm,
    )


def build_arbitrary_stack(
    upper_algorithm: HOAlgorithm,
    f: int,
    initial_values: Sequence[Any],
    params: SynchronyParams,
    trace: Optional[SystemRunTrace] = None,
    use_translation: bool = True,
    resend_init: bool = True,
    observers: Sequence[Any] = (),
) -> PredicateStack:
    """An HO algorithm over (optionally Algorithm 4 over) Algorithm 3.

    With *use_translation* the inner rounds driven by Algorithm 3 belong to
    the translation; ``f+1`` of them make up one upper-layer macro-round.
    Without it, the upper algorithm's rounds are Algorithm 3's rounds
    directly (useful for measuring ``P_k`` in isolation: Theorems 6 and 7).
    *observers* attach to the shared round engine (streaming predicate
    monitors use this hook).
    """
    shared_trace = trace if trace is not None else SystemRunTrace(n=upper_algorithm.n)
    translation: Optional[KernelToUniformTranslation] = None
    round_algorithm: HOAlgorithm = upper_algorithm
    if use_translation:
        translation = KernelToUniformTranslation(upper_algorithm, f)
        round_algorithm = translation
    programs = build_arbitrary_period_programs(
        algorithm=round_algorithm,
        f=f,
        initial_values=initial_values,
        params=params,
        trace=shared_trace,
        resend_init=resend_init,
        observers=observers,
    )
    return PredicateStack(
        programs=list(programs),
        trace=shared_trace,
        upper_algorithm=upper_algorithm,
        round_algorithm=round_algorithm,
        translation=translation,
    )


__all__ = ["PredicateStack", "build_down_stack", "build_arbitrary_stack"]
