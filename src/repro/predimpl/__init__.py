"""The predicate-implementation layer (Section 4 of the paper).

* :mod:`repro.predimpl.down_good_period` -- Algorithm 2: ``P_su`` in
  "pi0-down" good periods;
* :mod:`repro.predimpl.arbitrary_good_period` -- Algorithm 3: ``P_k`` in
  "pi0-arbitrary" good periods;
* :mod:`repro.predimpl.translation` -- Algorithm 4: the ``P_k -> P_su``
  translation in ``f+1`` rounds (Theorem 8);
* :mod:`repro.predimpl.batched_translation` -- the replica-vectorised dual
  of Algorithm 4 (registered as the translation's batch kernel on import);
* :mod:`repro.predimpl.bounds` -- the closed-form good-period lengths of
  Theorems 3, 5, 6, 7 and Corollary 4;
* :mod:`repro.predimpl.stack` -- glue to assemble complete stacks;
* :mod:`repro.predimpl.step_backend` -- the step-path execution backends
  (``step-scalar``/``step-batch``) wrapping the system simulator behind
  :class:`~repro.rounds.backend.ReplicaBatch`.
"""

from .arbitrary_good_period import ArbitraryGoodPeriodProgram, build_arbitrary_period_programs
from .batched_translation import BatchTranslationKernel
from .bounds import (
    BoundSummary,
    algorithm2_round_length,
    algorithm3_round_length,
    algorithm3_timeout,
    arbitrary_p2otr_length,
    arbitrary_p2otr_rounds,
    corollary4_p11otr_length,
    corollary4_p2otr_length,
    noninitial_to_initial_ratio,
    summarize_arbitrary_bounds,
    summarize_down_bounds,
    theorem3_good_period_length,
    theorem5_initial_good_period_length,
    theorem6_good_period_length,
    theorem7_initial_good_period_length,
)
from .down_good_period import DownGoodPeriodProgram, build_down_period_programs
from .stack import PredicateStack, build_arbitrary_stack, build_down_stack
from .translation import KernelToUniformTranslation, TranslationMessage, TranslationState
from .wire import WireKind, WireMessage, init_message, round_message

__all__ = [
    "WireKind",
    "WireMessage",
    "round_message",
    "init_message",
    "DownGoodPeriodProgram",
    "build_down_period_programs",
    "ArbitraryGoodPeriodProgram",
    "build_arbitrary_period_programs",
    "KernelToUniformTranslation",
    "TranslationMessage",
    "TranslationState",
    "BatchTranslationKernel",
    "PredicateStack",
    "build_down_stack",
    "build_arbitrary_stack",
    "BoundSummary",
    "algorithm2_round_length",
    "algorithm3_round_length",
    "algorithm3_timeout",
    "theorem3_good_period_length",
    "theorem5_initial_good_period_length",
    "theorem6_good_period_length",
    "theorem7_initial_good_period_length",
    "corollary4_p2otr_length",
    "corollary4_p11otr_length",
    "arbitrary_p2otr_length",
    "arbitrary_p2otr_rounds",
    "noninitial_to_initial_ratio",
    "summarize_down_bounds",
    "summarize_arbitrary_bounds",
]
