"""The network of the system model: ``network_p``, ``buffer_p`` and make-ready steps.

Section 4.1 models the network with two message sets per process:

* ``network_p`` -- messages addressed to ``p`` that are still in transit;
* ``buffer_p``  -- messages ready for reception by ``p``.

A *send step* puts the message into ``network_s`` for every destination
``s``; a *make-ready step*, taken by the network, moves messages from
``network_p`` to ``buffer_p``; a *receive step* removes (at most) one message
from ``buffer_p``.

Timing: when sender and receiver both belong to the synchronous core
``pi0`` of a good period, a message sent at time ``t`` must be in the
receiver's buffer by ``t + delta`` (provided ``t + delta`` is still in the
period).  Outside good periods the behaviour is arbitrary; it is governed by
a :class:`BadPeriodNetwork` policy (loss probability and a delay range),
driven by a seeded random generator so that runs are reproducible.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from ..core.types import ProcessId
from ..engine.rng import SeededRng
from .params import SynchronyParams
from .periods import PeriodSchedule

if TYPE_CHECKING:
    import random


@dataclass(frozen=True)
class Envelope:
    """A message in transit or in a reception buffer."""

    sender: ProcessId
    receiver: ProcessId
    payload: Any
    send_time: float
    sequence: int

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Envelope({self.sender}->{self.receiver} @ {self.send_time:.2f}: "
            f"{self.payload!r})"
        )


@dataclass
class BadPeriodNetwork:
    """Network behaviour outside the guarantees of ``pi0-sync``.

    * with probability *loss_probability* the message is dropped;
    * otherwise it becomes ready after a delay drawn uniformly from
      ``[min_delay, max_delay]`` (which may well exceed ``delta``:
      bad-period links are asynchronous).
    """

    loss_probability: float = 0.5
    min_delay: float = 0.5
    max_delay: float = 20.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1], got {self.loss_probability}"
            )
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError(
                f"invalid delay range [{self.min_delay}, {self.max_delay}]"
            )

    def sample_delay(self, rng: random.Random) -> Optional[float]:
        """The delay until make-ready, or ``None`` when the message is lost."""
        if rng.random() < self.loss_probability:
            return None
        return rng.uniform(self.min_delay, self.max_delay)


class Network:
    """The message-transport substrate shared by all simulated processes.

    The network does not schedule events itself; the simulator asks it, at
    send time, when each copy of the message should become ready
    (:meth:`plan_delivery`) and then issues the make-ready at that time
    (:meth:`make_ready`).  This keeps the event loop in one place
    (:class:`repro.sysmodel.simulator.SystemSimulator`) while the network
    owns the two message sets and the delivery policy.
    """

    def __init__(
        self,
        n: int,
        params: SynchronyParams,
        schedule: PeriodSchedule,
        bad_behavior: Optional[BadPeriodNetwork] = None,
        good_delay_factor: float = 1.0,
        seed: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0.0 < good_delay_factor <= 1.0:
            raise ValueError(
                f"good_delay_factor must be in (0, 1], got {good_delay_factor}"
            )
        self.n = n
        self.params = params
        self.schedule = schedule
        self.bad_behavior = bad_behavior if bad_behavior is not None else BadPeriodNetwork()
        self.good_delay_factor = good_delay_factor
        # The simulator injects the engine's "network" sub-stream here, so
        # bad-period link randomness is isolated from step/fault randomness;
        # *seed* remains as a fallback for stand-alone Network construction,
        # drawing from the same named sub-stream a simulator-owned network
        # would (so stand-alone and simulator-embedded networks with equal
        # seeds see identical bad-period link behaviour).
        self._rng = rng if rng is not None else SeededRng(seed).stream("network")
        self._sequence = itertools.count()
        #: messages in transit, per receiver (the paper's ``network_p``)
        self.network: Dict[ProcessId, List[Envelope]] = {p: [] for p in range(n)}
        #: messages ready for reception, per receiver (the paper's ``buffer_p``)
        self.buffer: Dict[ProcessId, List[Envelope]] = {p: [] for p in range(n)}
        #: counters for the benchmark reports
        self.messages_sent = 0
        self.messages_dropped = 0
        self.messages_made_ready = 0

    # ------------------------------------------------------------------ #
    # send / make-ready / receive
    # ------------------------------------------------------------------ #

    def send(
        self, sender: ProcessId, receivers: Sequence[ProcessId], payload: Any, time: float
    ) -> List[Envelope]:
        """Execute the network side of a send step; returns the created envelopes."""
        envelopes = []
        for receiver in receivers:
            envelope = Envelope(
                sender=sender,
                receiver=receiver,
                payload=payload,
                send_time=time,
                sequence=next(self._sequence),
            )
            self.network[receiver].append(envelope)
            envelopes.append(envelope)
            self.messages_sent += 1
        return envelopes

    def plan_delivery(self, envelope: Envelope) -> Optional[float]:
        """Decide when *envelope* becomes ready for reception.

        Returns the make-ready time, or ``None`` when the message is lost.
        The decision follows ``pi0-sync``: if both endpoints are in the
        synchronous core at send time, the message is ready within ``delta``
        (scaled by ``good_delay_factor``; 1.0 reproduces the worst case used
        by the analytic bounds).  Otherwise the bad-period behaviour applies.
        """
        period = self.schedule.period_at(envelope.send_time)
        synchronous = (
            period is not None
            and envelope.sender in period.pi0
            and envelope.receiver in period.pi0
        )
        if synchronous:
            return envelope.send_time + self.params.delta * self.good_delay_factor
        delay = self.bad_behavior.sample_delay(self._rng)
        if delay is None:
            self.messages_dropped += 1
            return None
        return envelope.send_time + delay

    def make_ready(self, envelope: Envelope) -> bool:
        """Move *envelope* from ``network`` to ``buffer`` (the make-ready step).

        Returns ``False`` when the message is no longer in transit (it was
        purged by a crash or by the start of a pi0-down good period).
        """
        in_transit = self.network[envelope.receiver]
        if envelope not in in_transit:
            return False
        in_transit.remove(envelope)
        self.buffer[envelope.receiver].append(envelope)
        self.messages_made_ready += 1
        return True

    def buffered(self, process: ProcessId) -> List[Envelope]:
        """The current contents of ``buffer_p`` (not copied; do not mutate)."""
        return self.buffer[process]

    def take_from_buffer(self, process: ProcessId, envelope: Envelope) -> None:
        """Remove *envelope* from ``buffer_p`` after a receive step consumed it."""
        self.buffer[process].remove(envelope)

    # ------------------------------------------------------------------ #
    # purges (crashes, pi0-down good periods)
    # ------------------------------------------------------------------ #

    def purge_process_state(self, process: ProcessId) -> None:
        """Drop everything addressed to *process* (its volatile buffers are lost in a crash)."""
        self.network[process].clear()
        self.buffer[process].clear()

    def purge_messages_from(self, senders: Sequence[ProcessId]) -> int:
        """Drop all in-transit and buffered messages *from* the given senders.

        Used when a pi0-down good period starts: by definition no message
        from a down process is in transit during the period.  Returns the
        number of purged messages.
        """
        sender_set = set(senders)
        purged = 0
        for store in (self.network, self.buffer):
            for receiver in range(self.n):
                before = len(store[receiver])
                store[receiver] = [
                    envelope
                    for envelope in store[receiver]
                    if envelope.sender not in sender_set
                ]
                purged += before - len(store[receiver])
        return purged


__all__ = ["Envelope", "BadPeriodNetwork", "Network"]
