"""The step-level discrete-event simulator of the system model (Section 4.1).

The simulator is a *policy layer* over the shared engine core
(:mod:`repro.engine`): event scheduling, the simulated clock, seeded random
sub-streams and crash/recovery injection live in the engine, while this
module decides what the events mean:

* process steps -- each up process executes its next send or receive step at
  times governed by the synchrony assumptions (``pi0-sync`` in good periods,
  a configurable arbitrary behaviour in bad periods);
* make-ready steps of the network (``network_p -> buffer_p``), planned by
  :class:`repro.sysmodel.network.Network` with the ``delta`` bound in good
  periods and the bad-period policy otherwise;
* good/bad period boundaries (recovering the pi0 processes, forcing down the
  others for ``pi0-down`` periods, purging their in-transit messages);
* injected crash / recovery fault events, routed through the engine's
  :class:`~repro.engine.faults.CrashRecoveryInjector` (events violating a
  good period are vetoed and show up in :attr:`skipped_fault_events`).

Randomness is split over two named engine sub-streams: ``steps`` drives
bad-period step gaps and stalls, ``network`` drives bad-period link delay
and loss -- so changing the channel noise model never perturbs step or
fault timing.  Everything is deterministic for a fixed seed; no wall-clock
time, threads or asyncio are involved, so worst-case schedules can be
replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from ..core.types import ProcessId
from ..engine import EngineCore, FaultEvent
from .faults import BadPeriodProcessBehavior, FaultSchedule
from .network import BadPeriodNetwork, Envelope, Network
from .params import SynchronyParams
from .periods import GoodPeriod, GoodPeriodKind, PeriodSchedule
from .process import (
    ProcessRuntime,
    ReceiveStep,
    SendStep,
    StepProgram,
    StepResult,
)
from .trace import SystemRunTrace


@dataclass(frozen=True)
class _Event:
    """An entry of the event queue (ordering is imposed by the engine queue)."""

    kind: str
    process: Optional[ProcessId] = None
    generation: int = 0
    envelope: Optional[Envelope] = None
    period: Optional[GoodPeriod] = None


class SystemSimulator:
    """Deterministic discrete-event simulator for step-level process programs.

    Parameters
    ----------
    programs:
        One :class:`~repro.sysmodel.process.StepProgram` per process,
        indexed by process id.
    params:
        The synchrony bounds ``(phi, delta)``.
    schedule:
        The good/bad period schedule.
    fault_schedule:
        Explicit crash/recovery events (applied only outside the synchronous
        scope of good periods; events violating a good period are ignored
        and counted in :attr:`skipped_fault_events`).
    bad_process_behavior / bad_network:
        Behaviour of processes and links not covered by ``pi0-sync``.
    good_step_gap:
        Time between consecutive steps of a synchronous process, in
        ``[1, phi]``.  The default ``phi`` reproduces the worst case assumed
        by the analytic bounds.
    good_delay_factor:
        Fraction of ``delta`` used for synchronous transmissions (1.0 =
        worst case).
    seed:
        Master seed for all randomised choices (bad-period behaviour); the
        engine derives the isolated ``steps`` and ``network`` sub-streams
        from it.
    """

    def __init__(
        self,
        programs: Sequence[StepProgram],
        params: SynchronyParams,
        schedule: PeriodSchedule,
        fault_schedule: Optional[FaultSchedule] = None,
        bad_process_behavior: Optional[BadPeriodProcessBehavior] = None,
        bad_network: Optional[BadPeriodNetwork] = None,
        good_step_gap: Optional[float] = None,
        good_delay_factor: float = 1.0,
        seed: int = 0,
        trace: Optional[SystemRunTrace] = None,
    ) -> None:
        self.n = len(programs)
        if self.n == 0:
            raise ValueError("at least one process program is required")
        if schedule.n != self.n:
            raise ValueError(
                f"period schedule is for {schedule.n} processes, got {self.n} programs"
            )
        self.params = params
        self.schedule = schedule
        self.fault_schedule = fault_schedule if fault_schedule is not None else FaultSchedule.none()
        self.bad_process_behavior = (
            bad_process_behavior if bad_process_behavior is not None else BadPeriodProcessBehavior()
        )
        self.good_step_gap = params.phi if good_step_gap is None else good_step_gap
        if not 1.0 <= self.good_step_gap <= params.phi:
            raise ValueError(
                f"good_step_gap must be in [1, phi={params.phi}], got {self.good_step_gap}"
            )
        self.trace = trace if trace is not None else SystemRunTrace(n=self.n)
        self._engine = EngineCore(seed)
        self._rng = self._engine.rng.stream("steps")
        self._injector = self._engine.attach_faults(
            self.fault_schedule,
            crash=self._apply_crash,
            recover=self._apply_recover,
            veto=self._fault_vetoed,
            recorder=self.trace,
        )
        self.network = Network(
            n=self.n,
            params=params,
            schedule=schedule,
            bad_behavior=bad_network,
            good_delay_factor=good_delay_factor,
            rng=self._engine.rng.stream("network"),
        )
        self.runtimes: List[ProcessRuntime] = [ProcessRuntime(program) for program in programs]
        self._started = False

    @property
    def now(self) -> float:
        """Current simulated time (owned by the engine clock)."""
        return self._engine.now

    @property
    def skipped_fault_events(self) -> List[FaultEvent]:
        """Fault events vetoed because they fell inside a good period's scope."""
        return self._injector.skipped

    # ------------------------------------------------------------------ #
    # event-queue helpers
    # ------------------------------------------------------------------ #

    def _schedule_step(self, process: ProcessId, time: float) -> None:
        runtime = self.runtimes[process]
        self._engine.queue.schedule(
            time,
            _Event(kind="step", process=process, generation=runtime.schedule_generation),
        )

    def _schedule_make_ready(self, envelope: Envelope, time: float) -> None:
        self._engine.queue.schedule(time, _Event(kind="make_ready", envelope=envelope))

    # ------------------------------------------------------------------ #
    # start-up
    # ------------------------------------------------------------------ #

    def _start(self) -> None:
        self._started = True
        for runtime in self.runtimes:
            runtime.boot()
        for process in range(self.n):
            first_gap = self._step_gap(process, 0.0)
            if first_gap is not None:
                self._schedule_step(process, first_gap)
        for period in self.schedule.good_periods:
            self._engine.queue.schedule(period.start, _Event(kind="period_start", period=period))
        self._engine.arm_faults()

    # ------------------------------------------------------------------ #
    # step scheduling policy
    # ------------------------------------------------------------------ #

    def _step_gap(self, process: ProcessId, time: float) -> Optional[float]:
        """The time until the next step of *process*, or ``None`` to not schedule one."""
        if self.schedule.is_down(process, time):
            return None
        if self.schedule.is_synchronous(process, time):
            return self.good_step_gap
        behavior = self.bad_process_behavior
        return self._rng.uniform(behavior.min_step_gap, behavior.max_step_gap)

    def _stalls(self, process: ProcessId, time: float) -> bool:
        """Whether a bad-period process skips the step it was about to take."""
        if self.schedule.is_synchronous(process, time):
            return False
        return self._rng.random() < self.bad_period_stall_probability

    @property
    def bad_period_stall_probability(self) -> float:
        return self.bad_process_behavior.stall_probability

    # ------------------------------------------------------------------ #
    # event handlers
    # ------------------------------------------------------------------ #

    def _handle_step(self, event: _Event) -> None:
        process = event.process
        assert process is not None
        runtime = self.runtimes[process]
        if not runtime.up or event.generation != runtime.schedule_generation:
            return
        if self.schedule.is_down(process, self.now):
            # Down processes take no steps; they will be rescheduled when they recover.
            return

        if not self._stalls(process, self.now):
            self._execute_step(process, runtime)

        gap = self._step_gap(process, self.now)
        if gap is not None and runtime.up:
            self._schedule_step(process, self.now + gap)

    def _execute_step(self, process: ProcessId, runtime: ProcessRuntime) -> None:
        action = runtime.next_action()
        if action is None:
            return
        if isinstance(action, SendStep):
            receivers = list(range(self.n)) if action.to is None else [action.to]
            envelopes = self.network.send(process, receivers, action.payload, self.now)
            self.trace.messages_sent += len(envelopes)
            for envelope in envelopes:
                ready_time = self.network.plan_delivery(envelope)
                if ready_time is None:
                    self.trace.messages_dropped += 1
                else:
                    self._schedule_make_ready(envelope, max(ready_time, self.now))
            self.trace.total_send_steps += 1
            runtime.complete_step(StepResult(time=self.now))
        elif isinstance(action, ReceiveStep):
            buffered = self.network.buffered(process)
            envelope = runtime.program.select_message(buffered) if buffered else None
            if envelope is not None:
                self.network.take_from_buffer(process, envelope)
            self.trace.total_receive_steps += 1
            runtime.complete_step(StepResult(time=self.now, envelope=envelope))
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown step action {action!r}")

    def _handle_make_ready(self, event: _Event) -> None:
        assert event.envelope is not None
        self.network.make_ready(event.envelope)

    def _handle_period_start(self, event: _Event) -> None:
        period = event.period
        assert period is not None
        if period.kind in (GoodPeriodKind.PI0_DOWN, GoodPeriodKind.PI_GOOD):
            outside = [p for p in range(self.n) if p not in period.pi0]
            for process in outside:
                runtime = self.runtimes[process]
                if runtime.up:
                    runtime.crash()
                    self.trace.record_crash(process, self.now)
                    self.network.purge_process_state(process)
            if outside:
                self.network.purge_messages_from(outside)
        for process in sorted(period.pi0):
            runtime = self.runtimes[process]
            if not runtime.up:
                runtime.recover()
                self.trace.record_recovery(process, self.now)
            else:
                runtime.schedule_generation += 1
            self._schedule_step(process, self.now + self.good_step_gap)

    # ------------------------------------------------------------------ #
    # fault-injection hooks (called by the engine's CrashRecoveryInjector)
    # ------------------------------------------------------------------ #

    def _fault_vetoed(self, fault: FaultEvent) -> bool:
        # Good periods forbid faults on processes in their synchronous scope.
        return self.schedule.is_synchronous(fault.process, self.now)

    def _apply_crash(self, process: ProcessId) -> bool:
        runtime = self.runtimes[process]
        if not runtime.up:
            return False
        runtime.crash()
        self.network.purge_process_state(process)
        return True

    def _apply_recover(self, process: ProcessId) -> bool:
        runtime = self.runtimes[process]
        if runtime.up:
            return False
        runtime.recover()
        gap = self._step_gap(process, self.now)
        if gap is not None:
            self._schedule_step(process, self.now + gap)
        return True

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def run(self, until: float, stop_when: Optional[Callable[[], bool]] = None) -> SystemRunTrace:
        """Run the simulation until simulated time *until*; returns the trace.

        *stop_when* is an optional early-stop predicate polled between
        events (e.g. a streaming predicate monitor bank's
        ``stop_requested``); when it fires, the run ends before *until*.
        """
        if until < self.now:
            raise ValueError(f"cannot run backwards: now={self.now}, until={until}")
        if not self._started:
            self._start()
        self._engine.run(until, self._dispatch, stop_when=stop_when)
        self._finalise_trace()
        return self.trace

    def _dispatch(self, event: Any) -> None:
        if isinstance(event, FaultEvent):
            self._injector.apply(event)
        elif event.kind == "step":
            self._handle_step(event)
        elif event.kind == "make_ready":
            self._handle_make_ready(event)
        elif event.kind == "period_start":
            self._handle_period_start(event)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {event.kind!r}")

    def _finalise_trace(self) -> None:
        self.trace.messages_dropped = self.network.messages_dropped
        # messages_sent is incremented live (per envelope); step totals likewise.


__all__ = ["SystemSimulator"]
