"""Good and bad periods of the system model (Section 4.1).

The system alternates between *good* and *bad* periods.  In a good period
the synchrony and fault assumptions hold for a subset ``pi0`` of the
processes (property ``pi0-sync``); in a bad period the behaviour is
arbitrary (crashes, recoveries, omissions, loss, asynchrony), only malice is
excluded.

The paper defines three kinds of good periods:

* ``PI_GOOD``      -- ``pi0 = Pi``: all processes are up and synchronous;
* ``PI0_DOWN``     -- processes in pi0 are up and synchronous, the other
  processes are *down*, do not recover, and none of their messages are in
  transit during the period;
* ``PI0_ARBITRARY`` -- processes in pi0 are up and synchronous, there is no
  restriction whatsoever on the other processes and on the links to and from
  them.

Case ``PI_GOOD`` is the special case of ``PI0_DOWN`` with an empty
complement; the simulator treats it that way.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence

from ..core.types import ProcessId, all_processes, validate_process_subset


class GoodPeriodKind(enum.Enum):
    """The three kinds of good periods of Section 4.1."""

    PI_GOOD = "pi-good"
    PI0_DOWN = "pi0-down"
    PI0_ARBITRARY = "pi0-arbitrary"


@dataclass(frozen=True)
class GoodPeriod:
    """A good period: a time interval, its kind and its synchronous core pi0."""

    start: float
    end: float
    kind: GoodPeriodKind
    pi0: FrozenSet[ProcessId]

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"good period cannot start before time 0, got {self.start}")
        if self.end <= self.start and not math.isinf(self.end):
            raise ValueError(
                f"good period must have positive length, got [{self.start}, {self.end}]"
            )

    @property
    def length(self) -> float:
        """The (normalised) length of the period."""
        return self.end - self.start

    @property
    def is_initial(self) -> bool:
        """Whether this is an *initial* good period (starts at time 0)."""
        return self.start == 0.0

    def contains(self, time: float) -> bool:
        """Whether *time* falls inside the period (half-open ``[start, end)``)."""
        return self.start <= time < self.end


@dataclass
class PeriodSchedule:
    """The alternation of good and bad periods over the run.

    Any instant not covered by a good period is part of a bad period.  Good
    periods must not overlap.
    """

    n: int
    good_periods: List[GoodPeriod] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.good_periods = sorted(self.good_periods, key=lambda p: p.start)
        for earlier, later in zip(self.good_periods, self.good_periods[1:]):
            if later.start < earlier.end:
                raise ValueError(
                    f"good periods overlap: [{earlier.start}, {earlier.end}) and "
                    f"[{later.start}, {later.end})"
                )
        for period in self.good_periods:
            if not period.pi0.issubset(all_processes(self.n)):
                raise ValueError("pi0 contains unknown processes")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def always_good(cls, n: int, kind: GoodPeriodKind = GoodPeriodKind.PI_GOOD,
                    pi0: Optional[Iterable[ProcessId]] = None) -> "PeriodSchedule":
        """A single initial good period lasting forever (the "nice run" scenario)."""
        pi0_set = all_processes(n) if pi0 is None else validate_process_subset(pi0, n)
        return cls(n=n, good_periods=[GoodPeriod(0.0, math.inf, kind, pi0_set)])

    @classmethod
    def single_good_period(
        cls,
        n: int,
        start: float,
        length: float,
        kind: GoodPeriodKind,
        pi0: Optional[Iterable[ProcessId]] = None,
    ) -> "PeriodSchedule":
        """A bad period from 0 to *start*, then one good period of *length*."""
        pi0_set = all_processes(n) if pi0 is None else validate_process_subset(pi0, n)
        return cls(n=n, good_periods=[GoodPeriod(start, start + length, kind, pi0_set)])

    @classmethod
    def alternating(
        cls,
        n: int,
        good_length: float,
        bad_length: float,
        count: int,
        kind: GoodPeriodKind = GoodPeriodKind.PI_GOOD,
        pi0: Optional[Iterable[ProcessId]] = None,
        first_bad: bool = True,
    ) -> "PeriodSchedule":
        """*count* good periods of *good_length* separated by bad periods of *bad_length*."""
        pi0_set = all_processes(n) if pi0 is None else validate_process_subset(pi0, n)
        periods = []
        time = bad_length if first_bad else 0.0
        for _ in range(count):
            periods.append(GoodPeriod(time, time + good_length, kind, pi0_set))
            time += good_length + bad_length
        return cls(n=n, good_periods=periods)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def period_at(self, time: float) -> Optional[GoodPeriod]:
        """The good period containing *time*, or ``None`` when in a bad period."""
        for period in self.good_periods:
            if period.contains(time):
                return period
            if period.start > time:
                break
        return None

    def is_good(self, time: float) -> bool:
        """Whether *time* falls inside some good period."""
        return self.period_at(time) is not None

    def is_synchronous(self, process: ProcessId, time: float) -> bool:
        """Whether *process* is bound by ``pi0-sync`` at *time*."""
        period = self.period_at(time)
        return period is not None and process in period.pi0

    def is_down(self, process: ProcessId, time: float) -> bool:
        """Whether *process* is forced down at *time* (pi0-down good period, outside pi0)."""
        period = self.period_at(time)
        if period is None or period.kind != GoodPeriodKind.PI0_DOWN:
            return False
        return process not in period.pi0

    def next_boundary_after(self, time: float) -> Optional[float]:
        """The next period start or end strictly after *time* (``None`` if none)."""
        boundaries: List[float] = []
        for period in self.good_periods:
            for value in (period.start, period.end):
                if value > time and not math.isinf(value):
                    boundaries.append(value)
        return min(boundaries) if boundaries else None

    def boundaries(self) -> Sequence[float]:
        """All finite period boundaries in increasing order."""
        values = set()
        for period in self.good_periods:
            values.add(period.start)
            if not math.isinf(period.end):
                values.add(period.end)
        return sorted(values)


__all__ = ["GoodPeriodKind", "GoodPeriod", "PeriodSchedule"]
