"""Synchrony parameters of the system model (Section 4.1).

The paper normalises all timing quantities by the lower bound on process
speed ``Phi-``:

* ``phi = Phi+ / Phi-`` -- the normalised upper bound on the time between two
  consecutive steps of a synchronous process (a synchronous process takes at
  least one step in any interval of length ``phi`` and at most one step in
  any open interval of length ``1``);
* ``delta = Delta / Phi-`` -- the normalised upper bound on the transmission
  delay between two synchronous processes;
* time ``tau = t / Phi-`` -- normalised real-valued time.

All simulator times in this package are normalised times; to obtain
real-time values multiply by ``Phi-``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SynchronyParams:
    """The known synchrony bounds ``(phi, delta)``, normalised by ``Phi-``.

    Both values are "known" to the algorithms of Section 4.2, which use them
    to compute their receive-step timeouts.
    """

    phi: float
    delta: float

    def __post_init__(self) -> None:
        if self.phi < 1.0:
            raise ValueError(f"phi = Phi+/Phi- must be >= 1, got {self.phi}")
        if self.delta <= 0.0:
            raise ValueError(f"delta must be positive, got {self.delta}")

    def algorithm2_timeout(self, n: int) -> int:
        """Receive-step budget of Algorithm 2: ``ceil(2*delta + (n+2)*phi)`` steps."""
        return math.ceil(2 * self.delta + (n + 2) * self.phi)

    def algorithm3_timeout(self, n: int) -> int:
        """Receive-step budget of Algorithm 3: ``ceil(2*delta + (2n+1)*phi)`` steps (``tau_0``)."""
        return math.ceil(2 * self.delta + (2 * n + 1) * self.phi)


DEFAULT_PARAMS = SynchronyParams(phi=1.0, delta=2.0)

__all__ = ["SynchronyParams", "DEFAULT_PARAMS"]
