"""Processes of the step-based system model.

A process executes a sequence of *atomic steps* (Section 4.1): in a send
step it broadcasts (or unicasts) one message and performs local computation;
in a receive step it receives at most one message from its buffer -- or the
empty message ``lambda`` when the buffer is empty -- and performs local
computation.  Steps take no time; time elapses between steps.

Programs are written as Python generators: the body yields
:class:`SendStep` / :class:`ReceiveStep` actions and gets back a
:class:`StepResult` for each of them.  This keeps the published pseudo-code
(Algorithms 2 and 3) readable as straight-line loops while the simulator
retains full control over when each step happens and what it returns.  A
crash simply discards the running generator (volatile state is lost); a
recovery asks the program for a fresh generator, which re-reads the
variables it keeps on *stable storage*.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Sequence, Union

from ..core.types import ProcessId
from .network import Envelope


@dataclass(frozen=True)
class SendStep:
    """A send step: broadcast *payload* (``to=None``) or unicast it to one process."""

    payload: Any
    to: Optional[ProcessId] = None


@dataclass(frozen=True)
class ReceiveStep:
    """A receive step: receive one message selected by the program's reception policy."""


StepAction = Union[SendStep, ReceiveStep]


@dataclass(frozen=True)
class StepResult:
    """What the simulator hands back after executing a step.

    For a receive step, *envelope* is the received message or ``None`` for
    the empty message ``lambda``.  For a send step it is always ``None``.
    *time* is the (normalised) time at which the step occurred.
    """

    time: float
    envelope: Optional[Envelope] = None


StepProgramGenerator = Generator[StepAction, StepResult, None]


class StableStorage:
    """Per-process stable storage surviving crashes.

    The predicate-implementation algorithms keep their round number and the
    consensus state on stable storage (Section 4.2); everything else is
    volatile and lost on a crash.
    """

    def __init__(self) -> None:
        self._data: Dict[str, Any] = {}
        self.write_count = 0
        self.read_count = 0

    def store(self, key: str, value: Any) -> None:
        """Write *value* under *key* (survives crashes)."""
        self._data[key] = value
        self.write_count += 1

    def load(self, key: str, default: Any = None) -> Any:
        """Read the value stored under *key*, or *default*."""
        self.read_count += 1
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def snapshot(self) -> Dict[str, Any]:
        """A copy of the stored data (for assertions in tests)."""
        return dict(self._data)


class StepProgram(abc.ABC):
    """A process program in the step-based system model.

    Subclasses implement:

    * :meth:`program` -- the main body, a generator of step actions;
    * :meth:`select_message` -- the reception policy, picking which buffered
      message a receive step returns;
    * optionally :meth:`on_recovery` -- reinitialise volatile state after a
      crash (the default restarts :meth:`program`, which must then read its
      persistent variables back from :attr:`stable_storage`).
    """

    def __init__(self, process_id: ProcessId, n: int) -> None:
        self.process_id = process_id
        self.n = n
        self.stable_storage = StableStorage()
        #: number of receive steps taken since the last send step; exposed for
        #: reception policies that rotate over senders (Algorithm 3).
        self.receive_step_index = 0

    @abc.abstractmethod
    def program(self) -> StepProgramGenerator:
        """The program body, started when the process first boots."""

    def on_recovery(self) -> StepProgramGenerator:
        """The program body started after a crash-recovery (default: same as boot)."""
        return self.program()

    @abc.abstractmethod
    def select_message(self, buffered: Sequence[Envelope]) -> Optional[Envelope]:
        """The reception policy: choose which buffered message to receive.

        Returns ``None`` when *buffered* is empty (the empty message).  The
        returned envelope must be an element of *buffered*.
        """

    def describe(self) -> str:
        """One-line description used in logs and benchmark reports."""
        return f"{type(self).__name__}(p{self.process_id})"


@dataclass
class ProcessStats:
    """Per-process step accounting, filled in by the runtime."""

    send_steps: int = 0
    receive_steps: int = 0
    empty_receives: int = 0
    crashes: int = 0
    recoveries: int = 0


class ProcessRuntime:
    """The simulator-side handle of one process.

    Tracks whether the process is up, drives its program generator one step
    at a time, and implements crash / recovery.  The heavy lifting (event
    scheduling, the network) stays in the simulator.
    """

    def __init__(self, program: StepProgram) -> None:
        self.program = program
        self.process_id = program.process_id
        self.up = True
        self.stats = ProcessStats()
        self._generator: Optional[StepProgramGenerator] = None
        self._pending_action: Optional[StepAction] = None
        #: bumped on crash/recovery and period boundaries so that stale step
        #: events in the event queue can be recognised and ignored.
        self.schedule_generation = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def boot(self) -> None:
        """Start the program for the first time."""
        self._generator = self.program.program()
        self._pending_action = self._advance_to_first_action()

    def crash(self) -> None:
        """Crash the process: discard volatile state (the running generator)."""
        if not self.up:
            return
        self.up = False
        self.stats.crashes += 1
        self._generator = None
        self._pending_action = None
        self.schedule_generation += 1

    def recover(self) -> None:
        """Recover the process: restart the program from its recovery entry point."""
        if self.up:
            return
        self.up = True
        self.stats.recoveries += 1
        self.program.receive_step_index = 0
        self._generator = self.program.on_recovery()
        self._pending_action = self._advance_to_first_action()
        self.schedule_generation += 1

    def _advance_to_first_action(self) -> Optional[StepAction]:
        assert self._generator is not None
        try:
            return next(self._generator)
        except StopIteration:
            self._generator = None
            return None

    # ------------------------------------------------------------------ #
    # step execution
    # ------------------------------------------------------------------ #

    @property
    def has_work(self) -> bool:
        """Whether the process has a next step to execute."""
        return self.up and self._pending_action is not None

    def next_action(self) -> Optional[StepAction]:
        """The action the process will perform at its next step (``None`` when terminated)."""
        return self._pending_action if self.up else None

    def complete_step(self, result: StepResult) -> None:
        """Feed the result of the executed step back into the program.

        The program's local computation runs now (it takes no simulated
        time) and produces the next pending action.
        """
        if not self.up or self._generator is None:
            return
        action = self._pending_action
        if isinstance(action, SendStep):
            self.stats.send_steps += 1
            self.program.receive_step_index = 0
        elif isinstance(action, ReceiveStep):
            self.stats.receive_steps += 1
            self.program.receive_step_index += 1
            if result.envelope is None:
                self.stats.empty_receives += 1
        try:
            self._pending_action = self._generator.send(result)
        except StopIteration:
            self._generator = None
            self._pending_action = None


__all__ = [
    "SendStep",
    "ReceiveStep",
    "StepAction",
    "StepResult",
    "StepProgram",
    "StepProgramGenerator",
    "StableStorage",
    "ProcessRuntime",
    "ProcessStats",
]
