"""The step-based system model of Section 4.1.

A deterministic discrete-event simulator of the paper's system model:
processes execute atomic send / receive steps, the network takes make-ready
steps, time is a real-valued global clock not accessible to processes, and
the system alternates between good periods (where the ``pi0-sync`` synchrony
property holds for a subset ``pi0``) and bad periods (arbitrary benign
behaviour: crash/recovery, omissions, loss, asynchrony).
"""

from .faults import BadPeriodProcessBehavior, FaultEvent, FaultKind, FaultSchedule
from .network import BadPeriodNetwork, Envelope, Network
from .params import DEFAULT_PARAMS, SynchronyParams
from .periods import GoodPeriod, GoodPeriodKind, PeriodSchedule
from .process import (
    ProcessRuntime,
    ProcessStats,
    ReceiveStep,
    SendStep,
    StableStorage,
    StepAction,
    StepProgram,
    StepResult,
)
from .simulator import SystemSimulator
from .trace import DecisionRecord, SystemRunTrace

__all__ = [
    "SynchronyParams",
    "DEFAULT_PARAMS",
    "GoodPeriodKind",
    "GoodPeriod",
    "PeriodSchedule",
    "Envelope",
    "BadPeriodNetwork",
    "Network",
    "SendStep",
    "ReceiveStep",
    "StepAction",
    "StepResult",
    "StepProgram",
    "StableStorage",
    "ProcessRuntime",
    "ProcessStats",
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "BadPeriodProcessBehavior",
    "SystemSimulator",
    "SystemRunTrace",
    "DecisionRecord",
]
