"""Fault injection for the step-based system model.

Bad periods allow every benign fault: process crashes and recoveries, send
and receive omissions, message loss, arbitrary process speeds.  They are
described in two complementary ways:

* an explicit :class:`~repro.engine.faults.FaultSchedule` of timed crash /
  recovery events (deterministic, used by the worst-case benchmarks) --
  this now lives in the shared engine core and is re-exported here, and
* a probabilistic :class:`BadPeriodProcessBehavior` describing how
  unsynchronised processes behave between good periods (step gaps, the
  chance of being crashed), driven by the engine's seeded ``steps``
  sub-stream.

Link loss and delay in bad periods is configured separately on the network
(:class:`repro.sysmodel.network.BadPeriodNetwork`) because, per the paper's
transmission-fault viewpoint, it is irrelevant whether the sender, the link
or the receiver dropped a message.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.faults import FaultEvent, FaultKind, FaultSchedule


@dataclass
class BadPeriodProcessBehavior:
    """How a process behaves while *not* covered by ``pi0-sync``.

    * the gap between consecutive steps is drawn uniformly from
      ``[min_step_gap, max_step_gap]`` (may exceed ``phi``: bad-period
      processes can be arbitrarily slow);
    * with probability *stall_probability*, a scheduled step simply does not
      happen and the process re-schedules (modelling long stalls or being
      effectively down without an explicit crash event).
    """

    min_step_gap: float = 1.0
    max_step_gap: float = 5.0
    stall_probability: float = 0.2

    def __post_init__(self) -> None:
        if self.min_step_gap <= 0 or self.max_step_gap < self.min_step_gap:
            raise ValueError(
                f"invalid step gap range [{self.min_step_gap}, {self.max_step_gap}]"
            )
        if not 0.0 <= self.stall_probability < 1.0:
            raise ValueError(
                f"stall probability must be in [0, 1), got {self.stall_probability}"
            )


__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "BadPeriodProcessBehavior",
]
