"""Fault injection for the step-based system model.

Bad periods allow every benign fault: process crashes and recoveries, send
and receive omissions, message loss, arbitrary process speeds.  This module
describes them in two complementary ways:

* an explicit :class:`FaultSchedule` of timed crash / recovery events
  (deterministic, used by the worst-case benchmarks), and
* a probabilistic :class:`BadPeriodProcessBehavior` describing how
  unsynchronised processes behave between good periods (step gaps, the
  chance of being crashed), driven by the simulator's seeded RNG.

Link loss and delay in bad periods is configured separately on the network
(:class:`repro.sysmodel.network.BadPeriodNetwork`) because, per the paper's
transmission-fault viewpoint, it is irrelevant whether the sender, the link
or the receiver dropped a message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence

from ..core.types import ProcessId


class FaultKind(enum.Enum):
    """Kinds of timed fault events."""

    CRASH = "crash"
    RECOVER = "recover"


@dataclass(frozen=True)
class FaultEvent:
    """A timed fault event applied to one process."""

    time: float
    kind: FaultKind
    process: ProcessId

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault events cannot happen before time 0, got {self.time}")


@dataclass
class FaultSchedule:
    """An explicit, deterministic schedule of crash and recovery events."""

    events: List[FaultEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = sorted(self.events, key=lambda event: (event.time, event.process))

    @classmethod
    def none(cls) -> "FaultSchedule":
        """No injected faults."""
        return cls(events=[])

    @classmethod
    def crash_stop(cls, crashes: Iterable[tuple[ProcessId, float]]) -> "FaultSchedule":
        """Permanent crashes: each ``(process, time)`` crashes and never recovers."""
        return cls(
            events=[FaultEvent(time, FaultKind.CRASH, process) for process, time in crashes]
        )

    @classmethod
    def crash_recovery(
        cls, incidents: Iterable[tuple[ProcessId, float, float]]
    ) -> "FaultSchedule":
        """Transient crashes: each ``(process, crash_time, recover_time)`` triple."""
        events: List[FaultEvent] = []
        for process, crash_time, recover_time in incidents:
            if recover_time <= crash_time:
                raise ValueError(
                    f"recovery at {recover_time} must come after crash at {crash_time}"
                )
            events.append(FaultEvent(crash_time, FaultKind.CRASH, process))
            events.append(FaultEvent(recover_time, FaultKind.RECOVER, process))
        return cls(events=events)

    def affected_processes(self) -> frozenset[ProcessId]:
        """Processes hit by at least one event."""
        return frozenset(event.process for event in self.events)

    def merged_with(self, other: "FaultSchedule") -> "FaultSchedule":
        """A schedule containing the events of both schedules."""
        return FaultSchedule(events=self.events + other.events)


@dataclass
class BadPeriodProcessBehavior:
    """How a process behaves while *not* covered by ``pi0-sync``.

    * the gap between consecutive steps is drawn uniformly from
      ``[min_step_gap, max_step_gap]`` (may exceed ``phi``: bad-period
      processes can be arbitrarily slow);
    * with probability *stall_probability*, a scheduled step simply does not
      happen and the process re-schedules (modelling long stalls or being
      effectively down without an explicit crash event).
    """

    min_step_gap: float = 1.0
    max_step_gap: float = 5.0
    stall_probability: float = 0.2

    def __post_init__(self) -> None:
        if self.min_step_gap <= 0 or self.max_step_gap < self.min_step_gap:
            raise ValueError(
                f"invalid step gap range [{self.min_step_gap}, {self.max_step_gap}]"
            )
        if not 0.0 <= self.stall_probability < 1.0:
            raise ValueError(
                f"stall probability must be in [0, 1), got {self.stall_probability}"
            )


__all__ = [
    "FaultKind",
    "FaultEvent",
    "FaultSchedule",
    "BadPeriodProcessBehavior",
]
