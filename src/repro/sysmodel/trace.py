"""Traces of step-level runs: what the predicate layer actually delivered, and when.

A :class:`SystemRunTrace` records, for every process and every round executed
by a predicate-implementation algorithm (:mod:`repro.predimpl`):

* the heard-of set the transition function was invoked with,
* the (normalised) time at which that transition ran,
* decisions of the upper-layer consensus algorithm, and
* message / step accounting.

The benchmark harness measures "the minimal length of a good period to
achieve P" by locating, in the trace, the earliest window of rounds
satisfying the predicate whose last transition completed after the start of
the good period, and comparing that completion time against the analytic
bounds of Theorems 3, 5, 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.predicates import pk_holds, psu_holds
from ..core.types import HOCollection, ProcessId, Round, validate_process_subset
from ..rounds.bitmask import mask_of
from ..rounds.record import DecisionRecord, RoundRecord


@dataclass
class SystemRunTrace:
    """Everything recorded during a step-level simulation run.

    Per-round outcomes are stored under the unified
    :class:`~repro.rounds.record.RoundRecord` schema (shared with the
    round-level :class:`~repro.core.types.RunTrace`), plus step-level extras
    -- send/reception timestamps, step and crash accounting -- that only
    exist below the round abstraction.  ``SystemRunTrace`` implements the
    :class:`repro.rounds.engine.RoundTraceSink` protocol, so the shared
    :class:`~repro.rounds.RoundEngine` writes into it directly.
    """

    n: int
    ho_collection: HOCollection = None  # type: ignore[assignment]
    records: List[RoundRecord] = field(default_factory=list)
    transition_times: Dict[Tuple[ProcessId, Round], float] = field(default_factory=dict)
    round_send_times: Dict[Tuple[ProcessId, Round], float] = field(default_factory=dict)
    #: (receiver, round, sender) -> first time the receiver obtained round evidence
    #: from that sender.  Used for the "last round by reception" accounting of
    #: Theorems 6 and 7 (the INIT exchange of the last round can be ignored).
    reception_times: Dict[Tuple[ProcessId, Round, ProcessId], float] = field(default_factory=dict)
    decisions: Dict[ProcessId, DecisionRecord] = field(default_factory=dict)
    messages_sent: int = 0
    messages_dropped: int = 0
    total_send_steps: int = 0
    total_receive_steps: int = 0
    crashes: int = 0
    recoveries: int = 0

    def __post_init__(self) -> None:
        if self.ho_collection is None:
            self.ho_collection = HOCollection(self.n)

    # ------------------------------------------------------------------ #
    # recording (called by the predicate-implementation programs)
    # ------------------------------------------------------------------ #

    def record_round_start(self, process: ProcessId, round: Round, time: float) -> None:
        """Record that *process* sent its round-*round* message at *time*."""
        key = (process, round)
        if key not in self.round_send_times:
            self.round_send_times[key] = time

    def record_round(
        self, process: ProcessId, round: Round, ho_set: Iterable[ProcessId], time: float
    ) -> None:
        """Record the heard-of set and transition time of one executed round."""
        self.record_round_result(
            RoundRecord(process=process, round=round, ho_mask=mask_of(ho_set), time=time)
        )

    def record_round_result(self, record: RoundRecord) -> None:
        """Record one executed round under the unified record schema."""
        self.records.append(record)
        self.ho_collection.record_mask(record.process, record.round, record.ho_mask)
        self.transition_times[(record.process, record.round)] = record.time

    def record_reception(
        self, process: ProcessId, round: Round, sender: ProcessId, time: float
    ) -> None:
        """Record when *process* first obtained round-*round* evidence from *sender*."""
        key = (process, round, sender)
        if key not in self.reception_times:
            self.reception_times[key] = time

    def record_decision(
        self, process: ProcessId, value: Any, round: Round, time: float
    ) -> None:
        """Record the first decision of *process* (later decisions are ignored)."""
        if process not in self.decisions:
            self.decisions[process] = DecisionRecord(process, value, round, time)

    def record_crash(self, process: ProcessId, time: float) -> None:
        """Account one applied crash (the engine's TraceRecorder hook)."""
        self.crashes += 1

    def record_recovery(self, process: ProcessId, time: float) -> None:
        """Account one applied recovery (the engine's TraceRecorder hook)."""
        self.recoveries += 1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def max_round(self) -> Round:
        """The largest round executed by any process."""
        return self.ho_collection.max_round

    def rounds_executed_by(self, process: ProcessId) -> List[Round]:
        """Rounds for which *process* executed its transition, in order."""
        return sorted(r for (p, r) in self.transition_times if p == process)

    def decision_values(self) -> Dict[ProcessId, Any]:
        """Map process -> decided value."""
        return {p: record.value for p, record in self.decisions.items()}

    def decision_records(self) -> Dict[ProcessId, DecisionRecord]:
        """Map process -> unified first-decision record (the unified-trace protocol)."""
        return dict(self.decisions)

    def decision_times(self) -> Dict[ProcessId, float]:
        """Map process -> time of first decision."""
        return {p: record.time for p, record in self.decisions.items()}

    def all_decided(self, scope: Iterable[ProcessId]) -> bool:
        """Whether every process in *scope* decided."""
        return set(scope).issubset(self.decisions)

    def last_decision_time(self, scope: Optional[Iterable[ProcessId]] = None) -> Optional[float]:
        """Time at which the last process of *scope* decided, or ``None`` if some did not."""
        scope_set = set(range(self.n)) if scope is None else set(scope)
        if not scope_set.issubset(self.decisions):
            return None
        return max(self.decisions[p].time for p in scope_set)

    def window_completion_time(
        self,
        pi0: Iterable[ProcessId],
        first_round: Round,
        last_round: Round,
        last_round_by_reception: bool = False,
    ) -> Optional[float]:
        """Time at which every process of *pi0* finished every round of the window.

        With *last_round_by_reception* the last round of the window is
        accounted as completed as soon as every process of *pi0* has
        *received* the round messages of all of *pi0*, instead of waiting for
        its transition to run.  This is the accounting used by Theorems 6
        and 7, whose proofs note that "the INIT messages can be ignored for
        the last round".
        """
        pi0_set = validate_process_subset(pi0, self.n)
        times = []
        full_transition_up_to = last_round - 1 if last_round_by_reception else last_round
        for p in pi0_set:
            for r in range(first_round, full_transition_up_to + 1):
                key = (p, r)
                if key not in self.transition_times:
                    return None
                times.append(self.transition_times[key])
            if last_round_by_reception:
                for q in pi0_set:
                    reception = self.reception_times.get((p, last_round, q))
                    if reception is None:
                        # Fall back to the transition time (e.g. the process
                        # heard of itself without an explicit reception).
                        reception = self.transition_times.get((p, last_round))
                        if reception is None or q not in self.ho_collection.ho(p, last_round):
                            return None
                    times.append(reception)
        return max(times) if times else None

    # ------------------------------------------------------------------ #
    # predicate-achievement measurements (the paper's theorems)
    # ------------------------------------------------------------------ #

    def earliest_psu_window(
        self,
        pi0: Iterable[ProcessId],
        length: int,
        not_before: float = 0.0,
        last_round_by_reception: bool = False,
    ) -> Optional[Tuple[Round, float]]:
        """Earliest window of *length* rounds satisfying ``P_su(pi0, ., .)``.

        Returns ``(first_round, completion_time)`` for the window with the
        smallest completion time strictly greater than *not_before*, or
        ``None``.  Used for Theorems 3 and 5.
        """
        return self._earliest_window(
            pi0, length, not_before, psu_holds, last_round_by_reception
        )

    def earliest_pk_window(
        self,
        pi0: Iterable[ProcessId],
        length: int,
        not_before: float = 0.0,
        last_round_by_reception: bool = False,
    ) -> Optional[Tuple[Round, float]]:
        """Earliest window of *length* rounds satisfying ``P_k(pi0, ., .)`` (Theorems 6 and 7)."""
        return self._earliest_window(
            pi0, length, not_before, pk_holds, last_round_by_reception
        )

    def earliest_p2otr(
        self, pi0: Iterable[ProcessId], not_before: float = 0.0
    ) -> Optional[Tuple[Round, float]]:
        """Earliest pair of consecutive rounds forming ``P_2otr(pi0)`` (Corollary 4).

        Returns ``(r0, completion_time_of_r0_plus_1)``.
        """
        pi0_set = validate_process_subset(pi0, self.n)
        best: Optional[Tuple[Round, float]] = None
        for r0 in range(1, self.max_round()):
            if not psu_holds(self.ho_collection, pi0_set, r0, r0):
                continue
            if not pk_holds(self.ho_collection, pi0_set, r0 + 1, r0 + 1):
                continue
            completion = self.window_completion_time(pi0_set, r0, r0 + 1)
            if completion is None or completion <= not_before:
                continue
            if best is None or completion < best[1]:
                best = (r0, completion)
        return best

    def _earliest_window(
        self,
        pi0: Iterable[ProcessId],
        length: int,
        not_before: float,
        predicate,
        last_round_by_reception: bool = False,
    ) -> Optional[Tuple[Round, float]]:
        pi0_set = validate_process_subset(pi0, self.n)
        best: Optional[Tuple[Round, float]] = None
        for first in range(1, self.max_round() - length + 2):
            last = first + length - 1
            if not predicate(self.ho_collection, pi0_set, first, last):
                continue
            completion = self.window_completion_time(
                pi0_set, first, last, last_round_by_reception=last_round_by_reception
            )
            if completion is None or completion <= not_before:
                continue
            if best is None or completion < best[1]:
                best = (first, completion)
        return best


__all__ = ["SystemRunTrace", "DecisionRecord"]
