"""Event types of the asynchronous discrete-event simulator.

The DES substrate (:mod:`repro.des`) models the classical asynchronous
message-passing system assumed by the failure-detector literature that the
paper compares against (Section 2 and Appendix A): processes react to
message deliveries and timer expirations, channels have arbitrary (but
bounded-for-the-experiment) delays and may lose messages, and processes may
crash and recover.  It is intentionally separate from the step-level model
of Section 4.1 (:mod:`repro.sysmodel`): the step model is what the paper's
timing theorems are stated in, whereas this substrate is only needed to run
the Chandra-Toueg and Aguilera et al. baselines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional

from ..core.types import ProcessId


class EventKind(enum.Enum):
    """Kinds of simulator events.

    ``CRASH`` and ``RECOVER`` are kept for API compatibility, but fault
    events now flow through the shared engine layer as
    :class:`repro.engine.faults.FaultEvent` entries rather than DES events.
    """

    DELIVER = "deliver"
    TIMER = "timer"
    CRASH = "crash"
    RECOVER = "recover"
    START = "start"


@dataclass(frozen=True)
class Event:
    """One entry of the DES event queue, ordered by (time, sequence)."""

    time: float
    sequence: int
    kind: EventKind
    process: ProcessId
    sender: Optional[ProcessId] = None
    payload: Any = None
    timer_name: Optional[str] = None
    timer_id: int = 0

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.sequence) < (other.time, other.sequence)


@dataclass
class DecisionEvent:
    """A decision reported by a process, with the time it occurred."""

    process: ProcessId
    value: Any
    time: float


__all__ = ["EventKind", "Event", "DecisionEvent"]
