"""Event-driven asynchronous simulator used by the failure-detector baselines."""

from .events import DecisionEvent, Event, EventKind
from .simulator import ChannelConfig, DESProcess, EventSimulator, ProcessContext

__all__ = [
    "Event",
    "EventKind",
    "DecisionEvent",
    "ChannelConfig",
    "DESProcess",
    "ProcessContext",
    "EventSimulator",
]
