"""An event-driven simulator of asynchronous message-passing systems.

This is the substrate on which the failure-detector baselines run
(Chandra-Toueg in the crash-stop model, Aguilera et al. in the
crash-recovery model).  Processes are written in the classical
"upon receive / upon timer" style:

* :class:`DESProcess` subclasses implement ``on_start``, ``on_message``,
  ``on_timer`` and (for crash-recovery algorithms) ``on_recover``;
* the :class:`EventSimulator` is a *policy layer* over the shared engine
  core (:mod:`repro.engine`): the event queue, the clock, the seeded
  random sub-streams and the crash/recovery injection live in the engine,
  while this module defines what the events mean -- message delivery over
  (possibly lossy) channels, timers, per-process stable storage and the
  registered failure-detector oracles.

Channel randomness is drawn from two named engine sub-streams
(``channel.loss`` and ``channel.delay``), so loss decisions never perturb
the delay sequence.  Everything is deterministic for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.types import ProcessId
from ..engine import EngineCore, FaultEvent, FaultSchedule
from .events import DecisionEvent, Event, EventKind


@dataclass
class ChannelConfig:
    """Link behaviour: delivery delay range and loss probability.

    The failure-detector algorithms of Appendix A assume quasi-reliable
    channels; the defaults reflect that (no loss).  Crash-recovery
    experiments typically use ``loss_probability > 0`` together with the
    retransmission built into the Aguilera et al. algorithm.
    """

    min_delay: float = 0.5
    max_delay: float = 2.0
    loss_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError(f"invalid delay range [{self.min_delay}, {self.max_delay}]")
        if not 0.0 <= self.loss_probability < 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1), got {self.loss_probability}"
            )


class ProcessContext:
    """The API a :class:`DESProcess` uses to interact with the simulator."""

    def __init__(self, simulator: "EventSimulator", process: ProcessId) -> None:
        self._simulator = simulator
        self._process = process

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._simulator.now

    @property
    def process_id(self) -> ProcessId:
        return self._process

    @property
    def n(self) -> int:
        return self._simulator.n

    def send(self, destination: ProcessId, payload: Any) -> None:
        """Send *payload* to *destination* over the (possibly lossy) channel."""
        self._simulator.post_message(self._process, destination, payload)

    def broadcast(self, payload: Any, include_self: bool = True) -> None:
        """Send *payload* to every process (optionally excluding the sender)."""
        for destination in range(self._simulator.n):
            if destination == self._process and not include_self:
                continue
            self.send(destination, payload)

    def set_timer(self, delay: float, name: str) -> int:
        """Arm a timer; ``on_timer(name)`` fires after *delay* unless the process crashes."""
        return self._simulator.post_timer(self._process, delay, name)

    def stable_store(self, key: str, value: Any) -> None:
        """Write to stable storage (survives crashes)."""
        self._simulator.stable_storage[self._process][key] = value

    def stable_load(self, key: str, default: Any = None) -> Any:
        """Read from stable storage."""
        return self._simulator.stable_storage[self._process].get(key, default)

    def decide(self, value: Any) -> None:
        """Report a consensus decision (only the first one per process is recorded)."""
        self._simulator.record_decision(self._process, value)

    def query_failure_detector(self, name: str = "default") -> Any:
        """Query a registered failure-detector oracle."""
        return self._simulator.query_failure_detector(name, self._process)


class DESProcess:
    """Base class for processes of the event-driven simulator."""

    def __init__(self, process_id: ProcessId, n: int) -> None:
        self.process_id = process_id
        self.n = n

    def on_start(self, ctx: ProcessContext) -> None:
        """Called once at time 0 (if the process is initially up)."""

    def on_message(self, ctx: ProcessContext, sender: ProcessId, payload: Any) -> None:
        """Called on every delivered message."""

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        """Called when a timer armed with :meth:`ProcessContext.set_timer` fires."""

    def on_crash(self, ctx: ProcessContext) -> None:
        """Called right before the process goes down (rarely needed)."""

    def on_recover(self, ctx: ProcessContext) -> None:
        """Called when the process comes back up; volatile state must be rebuilt here."""


FailureDetectorOracle = Callable[["EventSimulator", ProcessId], Any]


class EventSimulator:
    """Deterministic event-driven simulator for asynchronous message passing.

    Event scheduling, simulated time, seeded randomness and crash/recovery
    injection are delegated to :class:`repro.engine.EngineCore`; this class
    only implements the message/timer policy on top of it.
    """

    def __init__(
        self,
        processes: Sequence[DESProcess],
        channel: Optional[ChannelConfig] = None,
        crash_times: Optional[Dict[ProcessId, float]] = None,
        recovery_times: Optional[Dict[ProcessId, float]] = None,
        seed: int = 0,
    ) -> None:
        self.n = len(processes)
        if self.n == 0:
            raise ValueError("at least one process is required")
        self.processes = list(processes)
        self.channel = channel if channel is not None else ChannelConfig()
        self.crash_times = dict(crash_times or {})
        self.recovery_times = dict(recovery_times or {})
        self._engine = EngineCore(seed)
        self._loss_rng = self._engine.rng.stream("channel.loss")
        self._delay_rng = self._engine.rng.stream("channel.delay")
        self._engine.attach_faults(
            FaultSchedule.from_maps(self.crash_times, self.recovery_times),
            crash=self._apply_crash,
            recover=self._apply_recover,
            recorder=self,
        )
        self.up = [True] * self.n
        self.stable_storage: List[Dict[str, Any]] = [{} for _ in range(self.n)]
        self.decisions: Dict[ProcessId, DecisionEvent] = {}
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_lost = 0
        self.crash_count = [0] * self.n
        self._contexts = [ProcessContext(self, p) for p in range(self.n)]
        self._cancelled_timers: set[Tuple[ProcessId, int]] = set()
        self._next_timer_id = 1
        self._failure_detectors: Dict[str, FailureDetectorOracle] = {}
        self._started = False

    @property
    def now(self) -> float:
        """Current simulated time (owned by the engine clock)."""
        return self._engine.now

    # ------------------------------------------------------------------ #
    # registration / posting
    # ------------------------------------------------------------------ #

    def register_failure_detector(self, name: str, oracle: FailureDetectorOracle) -> None:
        """Register a failure-detector oracle queried via ``ctx.query_failure_detector``."""
        self._failure_detectors[name] = oracle

    def query_failure_detector(self, name: str, process: ProcessId) -> Any:
        if name not in self._failure_detectors:
            raise KeyError(f"no failure detector registered under {name!r}")
        return self._failure_detectors[name](self, process)

    def post_message(self, sender: ProcessId, destination: ProcessId, payload: Any) -> None:
        """Queue a message delivery, applying channel loss and delay."""
        self.messages_sent += 1
        if self._loss_rng.random() < self.channel.loss_probability:
            self.messages_lost += 1
            return
        delay = self._delay_rng.uniform(self.channel.min_delay, self.channel.max_delay)
        self._post(
            self.now + delay,
            EventKind.DELIVER,
            destination,
            sender=sender,
            payload=payload,
        )

    def post_timer(self, process: ProcessId, delay: float, name: str) -> int:
        """Queue a timer event; returns an id usable with :meth:`cancel_timer`."""
        if delay < 0:
            raise ValueError(f"timer delay must be non-negative, got {delay}")
        timer_id = self._next_timer_id
        self._next_timer_id += 1
        self._post(
            self.now + delay,
            EventKind.TIMER,
            process,
            timer_name=name,
            timer_id=timer_id,
        )
        return timer_id

    def cancel_timer(self, process: ProcessId, timer_id: int) -> None:
        """Cancel a pending timer (it will be silently dropped when it fires)."""
        self._cancelled_timers.add((process, timer_id))

    def record_decision(self, process: ProcessId, value: Any) -> None:
        if process not in self.decisions:
            self.decisions[process] = DecisionEvent(process, value, self.now)

    # ------------------------------------------------------------------ #
    # queries used by failure detectors and tests
    # ------------------------------------------------------------------ #

    def is_up(self, process: ProcessId) -> bool:
        """Whether *process* is currently up."""
        return self.up[process]

    def eventually_up_processes(self) -> frozenset[ProcessId]:
        """Processes that are up at the end of the configured fault schedule.

        A process is "eventually up" when it never crashes, or when it
        recovers after its last crash (used by the ◇Su ground-truth oracle).
        """
        good = set()
        for process in range(self.n):
            crash_at = self.crash_times.get(process)
            if crash_at is None:
                good.add(process)
            elif process in self.recovery_times:
                good.add(process)
        return frozenset(good)

    def decision_values(self) -> Dict[ProcessId, Any]:
        """Map process -> decided value."""
        return {p: event.value for p, event in self.decisions.items()}

    def decision_times(self) -> Dict[ProcessId, float]:
        """Map process -> decision time."""
        return {p: event.time for p, event in self.decisions.items()}

    def all_decided(self, scope: Optional[Iterable[ProcessId]] = None) -> bool:
        scope_set = set(range(self.n)) if scope is None else set(scope)
        return scope_set.issubset(self.decisions)

    # ------------------------------------------------------------------ #
    # engine hooks: event posting, fault application, trace accounting
    # ------------------------------------------------------------------ #

    def _post(self, time: float, kind: EventKind, process: ProcessId, **fields: Any) -> None:
        """Create the public event record and schedule it on the engine queue."""
        sequence = self._engine.queue.next_sequence()
        event = Event(time=time, sequence=sequence, kind=kind, process=process, **fields)
        self._engine.queue.schedule(time, event, sequence=sequence)

    def _apply_crash(self, process: ProcessId) -> bool:
        if not self.up[process]:
            return False
        self.processes[process].on_crash(self._contexts[process])
        self.up[process] = False
        return True

    def _apply_recover(self, process: ProcessId) -> bool:
        if self.up[process]:
            return False
        self.up[process] = True
        self.processes[process].on_recover(self._contexts[process])
        return True

    def record_crash(self, process: ProcessId, time: float) -> None:
        """Trace-recorder hook: account one applied crash."""
        self.crash_count[process] += 1

    def record_recovery(self, process: ProcessId, time: float) -> None:
        """Trace-recorder hook: recoveries are visible via ``is_up``; nothing to count."""

    # ------------------------------------------------------------------ #
    # main loop
    # ------------------------------------------------------------------ #

    def _start(self) -> None:
        self._started = True
        for process in range(self.n):
            self._post(0.0, EventKind.START, process)
        self._engine.arm_faults()

    def run(
        self,
        until: float,
        stop_when: Optional[Callable[["EventSimulator"], bool]] = None,
    ) -> Dict[ProcessId, Any]:
        """Run until simulated time *until* (or *stop_when* returns True).

        Returns the decision values recorded so far.
        """
        if not self._started:
            self._start()
        self._engine.run(
            until,
            self._dispatch,
            stop_when=None if stop_when is None else (lambda: stop_when(self)),
        )
        return self.decision_values()

    def run_until_all_decided(self, until: float, scope: Optional[Iterable[ProcessId]] = None):
        """Run until every process in *scope* decided or time *until* is reached."""
        scope_set = set(range(self.n)) if scope is None else set(scope)
        return self.run(until, stop_when=lambda sim: sim.all_decided(scope_set))

    def _dispatch(self, event: Any) -> None:
        if isinstance(event, FaultEvent):
            assert self._engine.injector is not None
            self._engine.injector.apply(event)
            return
        process = event.process
        ctx = self._contexts[process]
        if event.kind is EventKind.START:
            if self.up[process]:
                self.processes[process].on_start(ctx)
        elif event.kind is EventKind.DELIVER:
            if self.up[process]:
                self.messages_delivered += 1
                self.processes[process].on_message(ctx, event.sender, event.payload)
        elif event.kind is EventKind.TIMER:
            if (process, event.timer_id) in self._cancelled_timers:
                self._cancelled_timers.discard((process, event.timer_id))
                return
            if self.up[process]:
                self.processes[process].on_timer(ctx, event.timer_name)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown event kind {event.kind!r}")


__all__ = ["ChannelConfig", "ProcessContext", "DESProcess", "EventSimulator"]
