"""``python -m repro.lint`` -- the determinism & backend-parity linter.

Exit codes: 0 clean, 1 findings, 2 usage error (argparse convention).

Typical invocations::

    python -m repro.lint src tests              # lint the repo (CI gate)
    python -m repro.lint --list-rules           # what the REP0xx codes mean
    python -m repro.lint src --format json      # machine-readable report
    python -m repro.lint src --select REP001    # one rule only
    python -m repro.lint src --update-baseline  # grandfather current findings
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from .baseline import Baseline
from .engine import lint_paths
from .report import render_json, render_rule_list, render_text

#: picked up automatically when present in the working directory, so the
#: acceptance invocation ``python -m repro.lint src tests`` honours the
#: checked-in baseline without extra flags.
DEFAULT_BASELINE = "lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static analysis for the reproduction's determinism and "
            "backend-parity contracts (REP0xx determinism rules, REP1xx "
            "registry parity audits)."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every registered rule with its code and rationale, then exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=(
            "baseline file of grandfathered findings "
            f"(default: {DEFAULT_BASELINE} if it exists)"
        ),
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--select", nargs="+", default=None, metavar="CODE",
        help="run only these rule codes (e.g. REP001 REP104)",
    )
    parser.add_argument(
        "--no-audit", action="store_true",
        help="skip the registry-introspection audit rules (REP1xx)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(render_rule_list())
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE
    baseline = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load baseline {baseline_path!r}: {exc}")

    try:
        result = lint_paths(
            args.paths,
            select=args.select,
            baseline=baseline,
            audit=not args.no_audit,
            root=Path.cwd(),
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))
    except KeyError as exc:  # unknown --select code
        parser.error(str(exc))

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(result.findings).write(target)
        print(
            f"wrote {len(result.findings)} finding"
            f"{'s' if len(result.findings) != 1 else ''} to {target}"
        )
        return 0

    if args.format == "json":
        print(json.dumps(render_json(result), indent=2, sort_keys=True))
    else:
        print(render_text(result))
    return 0 if result.clean else 1


__all__ = ["main", "build_parser", "DEFAULT_BASELINE"]
