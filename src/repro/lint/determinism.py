"""Determinism rules (REP001-REP007): the bit-reproducibility contracts.

Every execution backend promises per-seed bit-identical outcomes, which
holds only if *all* randomness flows through seeded, named streams and no
hot path consults an ambient source of entropy, wall-clock time, or
interpreter-dependent ordering.  These rules turn those unwritten rules
into lint findings:

* REP001 -- no bare ``random`` module; draw through
  :class:`~repro.engine.rng.SeededRng` named sub-streams or
  :class:`~repro.engine.counter.CounterStream`.
* REP002 -- numpy and numba are imported exactly once, in
  :mod:`repro._optional`; everywhere else uses ``NUMPY`` / ``NUMBA`` and
  the ``have_*`` / ``require_*`` guards so the dependency-free fallbacks
  stay honest.
* REP003 -- no wall-clock or entropy reads (``time.time``, ``uuid4``,
  ``os.urandom``, ...) in package code; monotonic *duration* timers
  (``perf_counter``) are allowed for diagnostics.
* REP004 -- no ``id()``-based ordering: ``sorted(xs, key=id)`` depends on
  allocation addresses and differs across processes and hosts.
* REP005 -- no direct iteration over set displays/constructors: string
  hash randomisation makes the order vary per process; sort first.
* REP006 -- the import-layering DAG: ``repro.core`` / ``repro.engine`` /
  ``repro.rounds`` sit below the execution and orchestration layers and
  must never import ``repro.batch`` / ``repro.compiled`` /
  ``repro.runner`` / ``repro.workloads`` at module level (function-local
  lazy imports are the sanctioned pattern); nothing outside
  :mod:`repro.lint` imports the linter.
* REP007 -- suppression hygiene (unknown codes, missing justifications,
  unused suppressions); emitted by the suppression parser and the engine,
  registered here so it lists and selects like any other rule.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from .findings import Finding
from .rules import FileContext, SourceRule, dotted_name, register_rule


class BareRandomRule(SourceRule):
    code = "REP001"
    name = "bare-random"
    summary = (
        "no bare 'random' module in package code; randomness flows through "
        "SeededRng named sub-streams or CounterStream (repro.engine.rng)"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        guarded = ctx.type_checking_lines()
        for node in ast.walk(ctx.tree):
            if node_lineno(node) in guarded:
                continue
            if isinstance(node, ast.Import):
                if any(alias.name == "random" or alias.name.startswith("random.")
                       for alias in node.names):
                    findings.append(ctx.finding(
                        self.code, node,
                        "bare 'import random': draw through SeededRng named "
                        "sub-streams or CounterStream instead",
                    ))
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module == "random":
                    findings.append(ctx.finding(
                        self.code, node,
                        "bare 'from random import ...': draw through SeededRng "
                        "named sub-streams or CounterStream instead",
                    ))
        return findings


#: accelerator packages whose import is confined to repro._optional.
_OPTIONAL_PACKAGES = ("numpy", "numba")


class NumpyOutsideOptionalRule(SourceRule):
    code = "REP002"
    name = "numpy-via-optional"
    summary = (
        "numpy and numba are imported exactly once, in repro._optional; use "
        "NUMPY/NUMBA and the have_*/require_* guards so the dependency-free "
        "fallbacks stay honest"
    )

    def applies_to(self, module: Optional[str]) -> bool:
        return super().applies_to(module) and module != "repro._optional"

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        guarded = ctx.type_checking_lines()
        for node in ast.walk(ctx.tree):
            if node_lineno(node) in guarded:
                continue
            offender = None
            if isinstance(node, ast.Import):
                for package in _OPTIONAL_PACKAGES:
                    if any(alias.name == package
                           or alias.name.startswith(package + ".")
                           for alias in node.names):
                        offender = f"'import {package}'"
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and node.module is not None:
                    for package in _OPTIONAL_PACKAGES:
                        if node.module == package or \
                                node.module.startswith(package + "."):
                            offender = f"'from {package} import ...'"
            if offender is not None:
                findings.append(ctx.finding(
                    self.code, node,
                    f"direct {offender} outside repro._optional: use "
                    "repro._optional.NUMPY/NUMBA and the have_*/require_* "
                    "guards",
                ))
        return findings


#: fully-dotted calls that read wall clocks or ambient entropy.
_NONDETERMINISTIC_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "os.urandom": "ambient entropy",
    "uuid.uuid1": "host/time-dependent identifier",
    "uuid.uuid4": "ambient entropy",
}
#: names whose *from-import* alone is flagged (call sites lose the module).
_NONDETERMINISTIC_IMPORTS = {
    ("time", "time"), ("time", "time_ns"),
    ("os", "urandom"),
    ("uuid", "uuid1"), ("uuid", "uuid4"),
}


class WallClockEntropyRule(SourceRule):
    code = "REP003"
    name = "wall-clock-entropy"
    summary = (
        "no wall-clock or entropy reads (time.time, uuid4, os.urandom, "
        "secrets) in package code; perf_counter duration timing is allowed"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                chain = dotted_name(node.func)
                if chain is None:
                    continue
                kind = _NONDETERMINISTIC_CALLS.get(chain)
                if kind is None and chain.startswith("secrets."):
                    kind = "ambient entropy"
                if kind is not None:
                    findings.append(ctx.finding(
                        self.code, node,
                        f"{chain}() is a {kind}: outcomes must be a pure "
                        "function of the run seed (use seeded streams, or "
                        "perf_counter for diagnostics-only durations)",
                    ))
            elif isinstance(node, ast.Import):
                if any(alias.name == "secrets" for alias in node.names):
                    findings.append(ctx.finding(
                        self.code, node,
                        "'import secrets' is ambient entropy: outcomes must "
                        "be a pure function of the run seed",
                    ))
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    continue
                for alias in node.names:
                    if (node.module, alias.name) in _NONDETERMINISTIC_IMPORTS or (
                        node.module == "secrets"
                    ):
                        findings.append(ctx.finding(
                            self.code, node,
                            f"'from {node.module} import {alias.name}' pulls a "
                            "wall-clock/entropy source into a deterministic path",
                        ))
        return findings


class IdOrderingRule(SourceRule):
    code = "REP004"
    name = "id-ordering"
    summary = (
        "no id()-based ordering (sorted(key=id) etc.): allocation addresses "
        "differ across processes and hosts"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = None
            if isinstance(node.func, ast.Name) and node.func.id in ("sorted", "min", "max"):
                callee = node.func.id
            elif isinstance(node.func, ast.Attribute) and node.func.attr == "sort":
                callee = "sort"
            if callee is None:
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                if _is_id_key(keyword.value):
                    findings.append(ctx.finding(
                        self.code, node,
                        f"{callee}(..., key=id) orders by allocation address, "
                        "which is not stable across processes; order by a "
                        "deterministic attribute instead",
                    ))
        return findings


def _is_id_key(value: ast.expr) -> bool:
    if isinstance(value, ast.Name) and value.id == "id":
        return True
    if isinstance(value, ast.Lambda):
        body = value.body
        return (isinstance(body, ast.Call)
                and isinstance(body.func, ast.Name) and body.func.id == "id")
    return False


class SetIterationRule(SourceRule):
    code = "REP005"
    name = "unordered-set-iteration"
    summary = (
        "no direct iteration over set displays/constructors: hash "
        "randomisation varies the order per process; sort first"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                label = _set_expression_label(it)
                if label is not None:
                    findings.append(ctx.finding(
                        self.code, it,
                        f"iterating a {label} directly: the order depends on "
                        "hashing; wrap it in sorted(...) (or iterate a list)",
                    ))
        return findings


def _set_expression_label(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) and \
            node.func.id in ("set", "frozenset"):
        return f"{node.func.id}(...) result"
    return None


#: source layer prefix -> the layers it must never import at module level.
FORBIDDEN_EDGES = {
    "repro.core": (
        "repro.batch", "repro.compiled", "repro.runner", "repro.workloads",
    ),
    "repro.engine": (
        "repro.batch", "repro.compiled", "repro.runner", "repro.workloads",
    ),
    "repro.rounds": (
        "repro.batch", "repro.compiled", "repro.runner", "repro.workloads",
    ),
}


class ImportLayeringRule(SourceRule):
    code = "REP006"
    name = "import-layering"
    summary = (
        "the layering DAG: core/engine/rounds never import batch/compiled/"
        "runner/workloads at module level, and only repro.lint imports "
        "repro.lint"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        module = ctx.module or ""
        findings: List[Finding] = []
        guarded = ctx.type_checking_lines()
        layer = _layer_of(module)
        forbidden = FORBIDDEN_EDGES.get(layer, ())
        # Relative imports in a package __init__ resolve against the package
        # itself; appending a pseudo-leaf makes the shared arithmetic right.
        resolution_module = f"{module}.__init__" if ctx.is_package else module
        for node in _module_level_statements(ctx.tree):
            if node_lineno(node) in guarded:
                continue
            for target in _import_targets(node, resolution_module):
                target_layer = _layer_of(target)
                if target_layer in forbidden:
                    findings.append(ctx.finding(
                        self.code, node,
                        f"{layer} must not import {target_layer} at module "
                        "level (the layering DAG flows the other way; use a "
                        "function-local lazy import if the edge is optional)",
                    ))
                elif target_layer == "repro.lint" and layer != "repro.lint":
                    findings.append(ctx.finding(
                        self.code, node,
                        "repro.lint is a leaf tool: package code must not "
                        "import it",
                    ))
        return findings


def _layer_of(module: str) -> str:
    parts = module.split(".")
    return ".".join(parts[:2]) if len(parts) >= 2 else module


def _module_level_statements(tree: ast.Module):
    """Top-level statements, descending through module-level If/Try only."""
    stack = list(tree.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.If):
            stack.extend(node.body)
            stack.extend(node.orelse)
        elif isinstance(node, ast.Try):
            stack.extend(node.body)
            for handler in node.handlers:
                stack.extend(handler.body)
            stack.extend(node.orelse)
            stack.extend(node.finalbody)
        else:
            yield node


def _import_targets(node: ast.stmt, module: str) -> List[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level == 0:
            return [node.module] if node.module else []
        # resolve the relative import against the importing module
        parts = module.split(".")
        # a module's package is its parent; each extra level strips one more
        base = parts[: len(parts) - node.level]
        if not base:
            return []
        prefix = ".".join(base)
        return [f"{prefix}.{node.module}" if node.module else prefix]
    return []


def node_lineno(node: ast.AST) -> int:
    return getattr(node, "lineno", -1)


class SuppressionHygieneRule(SourceRule):
    """REP007 findings are emitted by the suppression parser and the engine
    (unknown codes, missing reasons, unused suppressions); this class only
    gives the code a listing entry and a selection handle."""

    code = "REP007"
    name = "suppression-hygiene"
    summary = (
        "suppressions must name a known rule and carry a justification, and "
        "must actually suppress something"
    )

    def applies_to(self, module: Optional[str]) -> bool:
        return True  # hygiene holds everywhere, tests included

    def check(self, ctx: FileContext) -> List[Finding]:
        return []  # the engine owns the logic; see repro.lint.engine


for _rule in (
    BareRandomRule(),
    NumpyOutsideOptionalRule(),
    WallClockEntropyRule(),
    IdOrderingRule(),
    SetIterationRule(),
    ImportLayeringRule(),
    SuppressionHygieneRule(),
):
    register_rule(_rule)


__all__ = [
    "BareRandomRule",
    "NumpyOutsideOptionalRule",
    "WallClockEntropyRule",
    "IdOrderingRule",
    "SetIterationRule",
    "ImportLayeringRule",
    "SuppressionHygieneRule",
    "FORBIDDEN_EDGES",
]
