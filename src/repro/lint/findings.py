"""The finding record every lint rule emits.

A finding is one violation of one rule at one source location.  Its
identity for baseline matching is deliberately *not* the line number --
unrelated edits shift lines constantly -- but the triple ``(code, path,
stripped source line text)``, which survives drift as long as the offending
line itself is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    #: the stripped text of the offending source line; filled in by the
    #: engine (rules may leave it empty) and used for baseline matching.
    line_text: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """The drift-tolerant identity used by baseline files."""
        return (self.code, self.path, self.line_text)

    def with_line_text(self, text: str) -> "Finding":
        return replace(self, line_text=text.strip())

    def render(self) -> str:
        """The one-line human form, ``path:line:col CODE message``."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


def sort_findings(findings) -> list:
    """Stable display order: by path, then line, then code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))


__all__ = ["Finding", "sort_findings"]
