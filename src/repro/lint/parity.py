"""Parity-audit rules (REP101-REP105): the scalar/batch dual registries.

The backends' bit-identity contract rests on *registration coherence*: a
scalar oracle family and its array dual, a scalar algorithm and its batched
kernel, a scenario and its batch runner must all be wired so that the
vectorised path is a faithful stand-in for the scalar reference.  A
mis-registration does not crash -- it silently drops a cell to the scalar
loop, or worse, runs the wrong dual.  These rules load the *live*
registries (static analysis cannot see a dict built at import time) and
cross-check them; REP104 is the static half, keeping the fallback-reason
vocabulary closed over :class:`~repro.rounds.fallback.FallbackReason`.

* REP101 -- every scalar family registered with a counter-batch dual
  defines ``counter_batch_signature`` (the eligibility handshake the dual
  dispatcher compares) and the dual is constructible.
* REP102 -- every batched kernel registration is coherent: the kernel
  subclasses ``BatchKernel``, names the algorithm class it is the dual of,
  and is registered *under* that class.
* REP103 -- every scenario with a batch runner resolves each generic sweep
  backend choice (auto/batch/compiled/super/scalar) to a registered
  execution backend, and every super-batchable scenario (batch builder)
  also has the per-cell batch runner the fallback path needs.
* REP104 -- fallback reasons in the backends' decision functions are
  rendered from the shared ``FallbackReason`` enum, never inline literals.
* REP105 -- ``RunRecord`` stays a slim picklable wire record: every field
  (except the explicitly non-wire ``result``) has a JSON-able annotation,
  and a synthesised instance pickles small.
* REP106 -- every registered compiled kernel is coherent with the chain it
  shadows: it is keyed by a registered ``BatchKernel`` subclass, declares
  that kernel's ``algorithm_class`` as its own dual, and names an existing
  parity-test marker -- a compiled dual cannot be registered without its
  bit-identity evidence.
"""

from __future__ import annotations

import ast
import inspect
import pickle
from dataclasses import MISSING, fields, is_dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .findings import Finding
from .rules import AuditRule, FileContext, SourceRule, register_rule


class ProjectContext:
    """The live registries the audit rules introspect.

    Every provider is injectable so tests can audit deliberately broken
    registrations without touching the real modules; the defaults load the
    real thing lazily (one import per invocation, shared by all rules).
    """

    def __init__(
        self,
        root: Optional[Path] = None,
        duals: Optional[Dict[type, type]] = None,
        kernels: Optional[Dict[type, type]] = None,
        registry: Optional[Any] = None,
        run_record: Optional[type] = None,
        get_backend: Optional[Callable[[str], Any]] = None,
        compiled_kernels: Optional[Dict[type, Any]] = None,
    ) -> None:
        self.root = root or Path.cwd()
        self._duals = duals
        self._kernels = kernels
        self._registry = registry
        self._run_record = run_record
        self._get_backend = get_backend
        self._compiled_kernels = compiled_kernels

    # -- providers (lazy imports of the real registries) ---------------- #

    def duals(self) -> Dict[type, type]:
        if self._duals is None:
            from repro.adversaries.counter_batch import _DUALS

            self._duals = dict(_DUALS)
        return self._duals

    def kernels(self) -> Dict[type, type]:
        if self._kernels is None:
            # Kernel registration is an import side-effect; pull in the
            # modules that register beyond repro.algorithms.batched before
            # snapshotting, or the audit depends on import order.
            import repro.predimpl.batched_translation  # noqa: F401
            from repro.algorithms.batched import _KERNELS

            self._kernels = dict(_KERNELS)
        return self._kernels

    def registry(self) -> Any:
        if self._registry is None:
            from repro.runner.registry import REGISTRY

            self._registry = REGISTRY
        return self._registry

    def run_record(self) -> type:
        if self._run_record is None:
            from repro.runner.sweep import RunRecord

            self._run_record = RunRecord
        return self._run_record

    def get_backend(self, name: str) -> Any:
        if self._get_backend is None:
            from repro.rounds.backend import get_backend

            self._get_backend = get_backend
        return self._get_backend(name)

    def compiled_kernels(self) -> Dict[type, Any]:
        if self._compiled_kernels is None:
            from repro.compiled.kernels import _COMPILED

            self._compiled_kernels = dict(_COMPILED)
        return self._compiled_kernels

    # -- anchoring ------------------------------------------------------ #

    def anchor(self, obj: Any) -> "tuple[str, int]":
        """A (path, line) anchor for findings about a class/registry object."""
        try:
            source = inspect.getsourcefile(obj)
            line = inspect.getsourcelines(obj)[1]
        except (TypeError, OSError):
            return "<registry>", 1
        path = Path(source or "<registry>")
        try:
            path = path.relative_to(self.root)
        except ValueError:
            pass
        return path.as_posix(), line


def _finding(code: str, project: ProjectContext, obj: Any, message: str) -> Finding:
    path, line = project.anchor(obj)
    return Finding(code=code, path=path, line=line, col=1, message=message)


class CounterDualSignatureRule(AuditRule):
    code = "REP101"
    name = "counter-dual-signature"
    summary = (
        "every scalar family with a counter-batch dual defines the "
        "counter_batch_signature eligibility handshake"
    )

    def audit(self, project: ProjectContext) -> List[Finding]:
        findings: List[Finding] = []
        for scalar_cls, dual_cls in project.duals().items():
            signature = getattr(scalar_cls, "counter_batch_signature", None)
            if not callable(signature):
                findings.append(_finding(
                    self.code, project, scalar_cls,
                    f"{scalar_cls.__name__} is registered with counter-batch "
                    f"dual {dual_cls.__name__} but defines no callable "
                    "counter_batch_signature(); the dual dispatcher cannot "
                    "check replica eligibility without it",
                ))
            if not (inspect.isclass(dual_cls) and callable(dual_cls)):
                findings.append(_finding(
                    self.code, project, scalar_cls,
                    f"the counter-batch dual registered for "
                    f"{scalar_cls.__name__} is not a constructible class: "
                    f"{dual_cls!r}",
                ))
        return findings


class BatchKernelRegistrationRule(AuditRule):
    code = "REP102"
    name = "batch-kernel-registration"
    summary = (
        "every batched kernel subclasses BatchKernel and is registered "
        "under the algorithm class it declares itself the dual of"
    )

    def audit(self, project: ProjectContext) -> List[Finding]:
        from repro.algorithms.batched import BatchKernel

        findings: List[Finding] = []
        for algorithm_cls, kernel_cls in project.kernels().items():
            if not (inspect.isclass(kernel_cls) and issubclass(kernel_cls, BatchKernel)):
                findings.append(_finding(
                    self.code, project, algorithm_cls,
                    f"the batched kernel registered for "
                    f"{algorithm_cls.__name__} is not a BatchKernel subclass: "
                    f"{kernel_cls!r}",
                ))
                continue
            declared = getattr(kernel_cls, "algorithm_class", None)
            if declared is None:
                findings.append(_finding(
                    self.code, project, kernel_cls,
                    f"{kernel_cls.__name__} declares no algorithm_class; the "
                    "kernel must name the scalar algorithm it is the dual of",
                ))
            elif declared is not algorithm_cls:
                findings.append(_finding(
                    self.code, project, kernel_cls,
                    f"{kernel_cls.__name__} is registered under "
                    f"{algorithm_cls.__name__} but declares itself the dual "
                    f"of {declared.__name__}; one of the two is wrong",
                ))
            if not isinstance(getattr(kernel_cls, "super_batchable", None), bool):
                findings.append(_finding(
                    self.code, project, kernel_cls,
                    f"{kernel_cls.__name__} has no boolean super_batchable "
                    "flag; the super-batch eligibility check needs it",
                ))
        return findings


#: the generic sweep backend choices every batchable scenario must resolve.
SWEEP_BACKEND_CHOICES = ("auto", "batch", "compiled", "super", "scalar")


class ScenarioBackendResolutionRule(AuditRule):
    code = "REP103"
    name = "scenario-backend-resolution"
    summary = (
        "every batchable scenario resolves auto/batch/compiled/super/scalar "
        "to a registered execution backend; builders imply runners"
    )

    def audit(self, project: ProjectContext) -> List[Finding]:
        registry = project.registry()
        findings: List[Finding] = []
        for name in registry.batchable_scenario_names():
            for choice in SWEEP_BACKEND_CHOICES:
                resolved = registry.resolve_backend(name, choice)
                try:
                    project.get_backend(resolved)
                except Exception as exc:  # noqa: BLE001 - any failure is the finding
                    findings.append(_finding(
                        self.code, project, type(registry),
                        f"scenario {name!r} resolves sweep backend "
                        f"{choice!r} to {resolved!r}, which is not a "
                        f"registered execution backend ({exc})",
                    ))
        for name in registry.scenario_names():
            if registry.batch_builder(name) is not None and \
                    registry.batch_runner(name) is None:
                findings.append(_finding(
                    self.code, project, type(registry),
                    f"scenario {name!r} registers a batch_builder (super-"
                    "batchable) but no batch_runner; the per-cell fallback "
                    "path would have nothing to execute",
                ))
        return findings


#: the functions whose string returns REP104 polices.
FALLBACK_DECISION_FUNCTIONS = ("_fallback_reason", "_eligibility")


class FallbackReasonLiteralRule(SourceRule):
    """The static half of the parity audit: a closed reason vocabulary."""

    code = "REP104"
    name = "fallback-reason-enum"
    summary = (
        "fallback decisions return FallbackReason.render() values, never "
        "inline string literals (the vocabulary must stay closed)"
    )

    def check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name not in FALLBACK_DECISION_FUNCTIONS:
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.Return) or stmt.value is None:
                    continue
                for literal in _string_literals(stmt.value):
                    findings.append(ctx.finding(
                        self.code, literal,
                        f"inline fallback reason in {node.name}(): render it "
                        "from repro.rounds.fallback.FallbackReason so the "
                        "vocabulary stays closed and auditable",
                    ))
        return findings


def _string_literals(node: ast.expr) -> List[ast.expr]:
    """String literals in *node*; an f-string counts once, not per part."""
    found: List[ast.expr] = []

    def visit(n: ast.AST) -> None:
        if isinstance(n, ast.JoinedStr):
            found.append(n)
            return  # don't also report the Constant parts inside it
        if isinstance(n, ast.Constant) and isinstance(n.value, str):
            found.append(n)
            return
        for child in ast.iter_child_nodes(n):
            visit(child)

    visit(node)
    return found


#: annotation strings a wire-record field may carry (RunRecord is written
#: with ``from __future__ import annotations``, so field types are strings).
_WIRE_ANNOTATIONS = {
    "str", "int", "bool", "float",
    "Optional[str]", "Optional[int]", "Optional[bool]", "Optional[float]",
    "Optional[Dict[str, Any]]",
    "Tuple[Tuple[str, Any], ...]",
}


class RunRecordWireRule(AuditRule):
    code = "REP105"
    name = "runrecord-slim-picklable"
    summary = (
        "RunRecord stays a slim picklable wire record: JSON-able fields "
        "only, and the non-wire result field never compares or pickles fat"
    )

    #: a synthesised record must pickle below this (the slim-record contract
    #: is ~100s of bytes; the old full-result records were ~1500x larger).
    MAX_PICKLE_BYTES = 4096

    def audit(self, project: ProjectContext) -> List[Finding]:
        record_cls = project.run_record()
        findings: List[Finding] = []
        if not is_dataclass(record_cls):
            return [_finding(
                self.code, project, record_cls,
                f"{record_cls.__name__} is not a dataclass; the wire-record "
                "contract is field-introspectable",
            )]
        sample_kwargs: Dict[str, Any] = {}
        for f in fields(record_cls):
            annotation = f.type if isinstance(f.type, str) else getattr(
                f.type, "__name__", str(f.type)
            )
            if f.name == "result":
                if f.compare:
                    findings.append(_finding(
                        self.code, project, record_cls,
                        "RunRecord.result must be compare=False: the full "
                        "ScenarioResult is not part of the record's identity",
                    ))
                if not (f.default is None or f.default is MISSING):
                    findings.append(_finding(
                        self.code, project, record_cls,
                        "RunRecord.result must default to None so wire "
                        "records are slim unless a caller opts in",
                    ))
                continue
            if annotation not in _WIRE_ANNOTATIONS:
                findings.append(_finding(
                    self.code, project, record_cls,
                    f"RunRecord.{f.name} is annotated {annotation!r}, which "
                    "is not in the JSON-able wire vocabulary "
                    f"({sorted(_WIRE_ANNOTATIONS)})",
                ))
            if f.default is MISSING and f.default_factory is MISSING:  # type: ignore[misc]
                sample_kwargs[f.name] = _sample_value(annotation)
        try:
            record = record_cls(**sample_kwargs)
            blob = pickle.dumps(record)
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            findings.append(_finding(
                self.code, project, record_cls,
                f"a synthesised {record_cls.__name__} failed to pickle: {exc}",
            ))
        else:
            if len(blob) > self.MAX_PICKLE_BYTES:
                findings.append(_finding(
                    self.code, project, record_cls,
                    f"a minimal {record_cls.__name__} pickles to {len(blob)} "
                    f"bytes (> {self.MAX_PICKLE_BYTES}); the wire record has "
                    "stopped being slim",
                ))
        return findings


def _sample_value(annotation: str) -> Any:
    if annotation.startswith("Optional["):
        return None
    return {"str": "x", "int": 0, "bool": False, "float": 0.0}.get(annotation)


class CompiledKernelRegistrationRule(AuditRule):
    code = "REP106"
    name = "compiled-kernel-registration"
    summary = (
        "every compiled kernel is keyed by a registered BatchKernel, "
        "declares that kernel's algorithm_class, and names an existing "
        "parity-test marker"
    )

    def audit(self, project: ProjectContext) -> List[Finding]:
        from repro.algorithms.batched import BatchKernel

        registered_kernels = set(project.kernels().values())
        findings: List[Finding] = []
        for kernel_cls, spec in project.compiled_kernels().items():
            anchor = kernel_cls if inspect.isclass(kernel_cls) else type(spec)
            if not (inspect.isclass(kernel_cls)
                    and issubclass(kernel_cls, BatchKernel)):
                findings.append(_finding(
                    self.code, project, anchor,
                    f"the compiled registry is keyed by {kernel_cls!r}, which "
                    "is not a BatchKernel subclass",
                ))
                continue
            if getattr(spec, "batch_kernel_class", None) is not kernel_cls:
                findings.append(_finding(
                    self.code, project, anchor,
                    f"the compiled dual registered under {kernel_cls.__name__} "
                    f"declares batch_kernel_class="
                    f"{getattr(spec, 'batch_kernel_class', None)!r}; "
                    "one of the two is wrong",
                ))
            if kernel_cls not in registered_kernels:
                findings.append(_finding(
                    self.code, project, anchor,
                    f"{kernel_cls.__name__} has a compiled dual but is not "
                    "itself a registered batch kernel; the compiled tier "
                    "would shadow a kernel the batch tier never runs",
                ))
            declared = getattr(spec, "algorithm_class", None)
            expected = getattr(kernel_cls, "algorithm_class", None)
            if declared is None or declared is not expected:
                findings.append(_finding(
                    self.code, project, anchor,
                    f"the compiled dual of {kernel_cls.__name__} declares "
                    f"algorithm_class={getattr(declared, '__name__', declared)!r} "
                    f"but the kernel's dual is "
                    f"{getattr(expected, '__name__', expected)!r}",
                ))
            if not callable(getattr(spec, "runner", None)):
                findings.append(_finding(
                    self.code, project, anchor,
                    f"the compiled dual of {kernel_cls.__name__} has no "
                    "callable runner",
                ))
            parity_test = getattr(spec, "parity_test", None)
            if not (isinstance(parity_test, str) and "::" in parity_test
                    and parity_test.split("::", 1)[1]):
                findings.append(_finding(
                    self.code, project, anchor,
                    f"the compiled dual of {kernel_cls.__name__} names no "
                    f"parity-test marker (got {parity_test!r}); the contract "
                    "is 'path/to/test_file.py::test_node'",
                ))
            else:
                test_path = project.root / parity_test.split("::", 1)[0]
                if not test_path.is_file():
                    findings.append(_finding(
                        self.code, project, anchor,
                        f"the parity test of {kernel_cls.__name__}'s compiled "
                        f"dual points at a missing file: {parity_test!r}",
                    ))
        return findings


for _rule in (
    CounterDualSignatureRule(),
    BatchKernelRegistrationRule(),
    ScenarioBackendResolutionRule(),
    FallbackReasonLiteralRule(),
    RunRecordWireRule(),
    CompiledKernelRegistrationRule(),
):
    register_rule(_rule)


__all__ = [
    "ProjectContext",
    "CounterDualSignatureRule",
    "BatchKernelRegistrationRule",
    "ScenarioBackendResolutionRule",
    "FallbackReasonLiteralRule",
    "RunRecordWireRule",
    "CompiledKernelRegistrationRule",
    "SWEEP_BACKEND_CHOICES",
    "FALLBACK_DECISION_FUNCTIONS",
]
