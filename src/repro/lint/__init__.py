"""Static analysis for the reproduction's determinism contracts.

The whole reproduction rests on one promise: every execution backend
(scalar, batch, super, step-batch) is per-seed bit-identical.  That holds
only under rules no test can conveniently state -- all randomness flows
through :class:`~repro.engine.rng.SeededRng` named sub-streams or counter
streams, numpy enters exactly once via :mod:`repro._optional`, low layers
never import high layers, scalar/batch dual registrations stay coherent,
fallback reasons stay a closed vocabulary.  ``repro.lint`` enforces those
rules mechanically, before a nondeterminism bug ever reaches the parity
suites:

* determinism rules ``REP001``-``REP007`` -- per-file AST passes
  (:mod:`repro.lint.determinism`);
* parity-audit rules ``REP101``-``REP105`` -- hybrid static +
  live-registry introspection (:mod:`repro.lint.parity`).

Run it with ``python -m repro.lint [paths]``; see
:mod:`repro.lint.cli` for the flags (``--list-rules``, ``--format json``,
``--baseline``, ``--select``) and :mod:`repro.lint.suppressions` for the
``# repro: noqa[REP0xx] -- reason`` per-line suppression form.

The package is a *leaf*: nothing in ``repro`` imports it (enforced by its
own REP006), so shipping the linter can never perturb the hot paths it
audits.
"""

from .baseline import Baseline, BaselineEntry
from .engine import LintResult, lint_paths, module_name_of
from .findings import Finding
from .rules import (
    AuditRule,
    FileContext,
    Rule,
    SourceRule,
    all_rules,
    get_rule,
    register_rule,
    rule_codes,
)

__all__ = [
    "AuditRule",
    "Baseline",
    "BaselineEntry",
    "FileContext",
    "Finding",
    "LintResult",
    "Rule",
    "SourceRule",
    "all_rules",
    "get_rule",
    "lint_paths",
    "module_name_of",
    "register_rule",
    "rule_codes",
]
