"""The rule framework: base classes, the ``REP0xx`` registry, file context.

Two rule shapes exist:

* :class:`SourceRule` -- a per-file AST pass.  The engine parses each
  scanned file once into a :class:`FileContext` and hands it to every
  source rule whose :meth:`SourceRule.applies_to` accepts the file's
  *module name* (``repro.batch.backends`` for
  ``src/repro/batch/backends.py``; ``None`` for files outside the
  package, e.g. tests).  Determinism rules scope themselves to
  ``repro.*`` -- the hot paths whose bit-reproducibility the backends
  promise -- so test code may keep its ad-hoc randomness.

* :class:`AuditRule` -- a once-per-invocation introspection pass over the
  *live* registries (:class:`~repro.lint.parity.ProjectContext`): it
  imports the real code and cross-checks registrations the AST cannot see
  (counter-dual signatures, kernel registrations, backend aliases).

Rules are singletons registered by stable code (``REP001`` ...); the code
is the suppression/baseline currency, so codes are never reused.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from .findings import Finding


@dataclass
class FileContext:
    """Everything a source rule may look at for one file."""

    path: str
    module: Optional[str]
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: whether this file is a package ``__init__`` (relative imports then
    #: resolve against the module itself, not its parent).
    is_package: bool = False

    @classmethod
    def parse(
        cls, path: str, module: Optional[str], source: str, is_package: bool = False
    ) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(path=path, module=module, source=source, tree=tree,
                   lines=source.splitlines(), is_package=is_package)

    def finding(self, code: str, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0) + 1
        text = self.lines[line - 1].strip() if 0 < line <= len(self.lines) else ""
        return Finding(code=code, path=self.path, line=line, col=col,
                       message=message, line_text=text)

    def type_checking_lines(self) -> Set[int]:
        """The line numbers inside ``if TYPE_CHECKING:`` blocks.

        Imports under the guard exist only for annotations -- they never
        execute, so they cannot introduce runtime nondeterminism; the
        determinism rules skip them (it is the sanctioned way to keep a
        ``random.Random`` *type* without a runtime ``random`` dependency).
        """
        guarded: Set[int] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.If) and _is_type_checking_test(node.test):
                for stmt in node.body:
                    guarded.update(range(stmt.lineno, _end_line(stmt) + 1))
        return guarded


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _end_line(node: ast.AST) -> int:
    return getattr(node, "end_lineno", getattr(node, "lineno", 1))


def dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Rule(abc.ABC):
    """A registered check with a stable ``REP0xx`` code."""

    #: stable code, the suppression/baseline currency (never reuse one).
    code: str = ""
    #: short kebab-case name for listings.
    name: str = ""
    #: one-line rationale shown by ``--list-rules``.
    summary: str = ""


class SourceRule(Rule):
    """A per-file AST pass."""

    def applies_to(self, module: Optional[str]) -> bool:
        """Default scope: the ``repro`` package (the deterministic hot paths)."""
        return module is not None and (module == "repro" or module.startswith("repro."))

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> List[Finding]:
        """The findings of this rule for one parsed file."""


class AuditRule(Rule):
    """A once-per-invocation introspection pass over the live registries."""

    @abc.abstractmethod
    def audit(self, project) -> List[Finding]:
        """The findings of this rule for the project's registries."""


_RULES: Dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    """Register *rule* under its code; codes are unique forever."""
    if not rule.code:
        raise ValueError(f"rule {type(rule).__name__} has no code")
    if rule.code in _RULES:
        raise ValueError(f"duplicate rule code {rule.code}")
    _RULES[rule.code] = rule
    return rule


def all_rules() -> List[Rule]:
    """Every registered rule, in code order."""
    _ensure_populated()
    return [_RULES[code] for code in sorted(_RULES)]


def rule_codes() -> List[str]:
    _ensure_populated()
    return sorted(_RULES)


def get_rule(code: str) -> Rule:
    _ensure_populated()
    try:
        return _RULES[code]
    except KeyError:
        raise KeyError(f"unknown rule {code!r}; known: {sorted(_RULES)}") from None


def source_rules(select: Optional[Sequence[str]] = None) -> List[SourceRule]:
    return [r for r in _selected(select) if isinstance(r, SourceRule)]


def audit_rules(select: Optional[Sequence[str]] = None) -> List[AuditRule]:
    return [r for r in _selected(select) if isinstance(r, AuditRule)]


def _selected(select: Optional[Sequence[str]]) -> List[Rule]:
    rules = all_rules()
    if select is None:
        return rules
    wanted = set(select)
    unknown = wanted - set(_RULES)
    if unknown:
        raise KeyError(f"unknown rule codes {sorted(unknown)}; known: {sorted(_RULES)}")
    return [r for r in rules if r.code in wanted]


def _ensure_populated() -> None:
    """Import the rule modules whose import side-effect registers rules."""
    from . import determinism, parity  # noqa: F401


__all__ = [
    "AuditRule",
    "FileContext",
    "Rule",
    "SourceRule",
    "all_rules",
    "audit_rules",
    "dotted_name",
    "get_rule",
    "register_rule",
    "rule_codes",
    "source_rules",
]
