"""The checked-in baseline of grandfathered findings.

A baseline lets the linter gate *new* violations at zero while known,
deliberately-accepted ones stay on the books with a visible inventory.
Entries match findings by ``(code, path, stripped line text)`` -- never by
line number, so unrelated edits do not invalidate the file -- and carry an
optional human ``reason``.  Each entry has a ``count`` (the same line text
can legitimately appear several times, e.g. two identical imports in two
branches of one file).

Stale entries -- baselined findings that no longer occur -- are reported so
the file shrinks as debt is paid down; they are a warning, not an error.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from .findings import Finding

BASELINE_VERSION = 1

Key = Tuple[str, str, str]


@dataclass
class BaselineEntry:
    code: str
    path: str
    line_text: str
    count: int = 1
    reason: str = ""

    @property
    def key(self) -> Key:
        return (self.code, self.path, self.line_text)

    def to_json(self) -> Dict[str, object]:
        entry: Dict[str, object] = {
            "code": self.code,
            "path": self.path,
            "line_text": self.line_text,
            "count": self.count,
        }
        if self.reason:
            entry["reason"] = self.reason
        return entry


class Baseline:
    """A loaded baseline file, consumed finding by finding."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)
        self._remaining: Counter = Counter()
        for entry in self.entries:
            self._remaining[entry.key] += entry.count

    @classmethod
    def load(cls, path: str) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: not a repro.lint baseline (expected version {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                code=e["code"],
                path=e["path"],
                line_text=e["line_text"],
                count=int(e.get("count", 1)),
                reason=e.get("reason", ""),
            )
            for e in data.get("entries", [])
        ]
        return cls(entries)

    def absorbs(self, finding: Finding) -> bool:
        """Whether *finding* is grandfathered; consumes one count if so."""
        if self._remaining.get(finding.baseline_key, 0) > 0:
            self._remaining[finding.baseline_key] -= 1
            return True
        return False

    def stale(self) -> List[BaselineEntry]:
        """Entries with unconsumed counts: debt that has been paid down."""
        return [
            BaselineEntry(code=k[0], path=k[1], line_text=k[2], count=count)
            for k, count in sorted(self._remaining.items())
            if count > 0
        ]

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Counter = Counter(f.baseline_key for f in findings)
        return cls(
            BaselineEntry(code=code, path=path, line_text=text, count=count)
            for (code, path, text), count in sorted(counts.items())
        )

    def write(self, path: str) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "entries": [e.to_json() for e in self.entries],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


__all__ = ["Baseline", "BaselineEntry", "BASELINE_VERSION"]
