"""The lint engine: collect files, run rules, apply suppressions + baseline.

One :func:`lint_paths` call is one lint invocation: every ``*.py`` file
under the given paths is parsed once and handed to each applicable
:class:`~repro.lint.rules.SourceRule`; the
:class:`~repro.lint.rules.AuditRule` passes run once against the live
registries.  Findings are then filtered through per-line suppressions
(unused suppressions become REP007 findings) and the baseline; what
remains is actionable and fails the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .baseline import Baseline, BaselineEntry
from .findings import Finding, sort_findings
from .rules import FileContext, audit_rules, rule_codes, source_rules
from .suppressions import HYGIENE_CODE, parse_suppressions


@dataclass
class LintResult:
    """Everything one lint invocation produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    files: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def module_name_of(path: Path) -> Optional[str]:
    """The dotted ``repro.*`` module a file belongs to, or None.

    Works from the path shape alone (the last ``repro`` directory starts
    the package), so it holds for ``src/repro/...`` in the repo, installed
    trees, and test fixtures that mirror the layout.
    """
    parts = list(path.parts)
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro":
            rel = parts[i:]
            if not rel[-1].endswith(".py"):
                return None
            rel[-1] = rel[-1][: -len(".py")]
            if rel[-1] == "__init__":
                rel = rel[:-1]
            return ".".join(rel)
    return None


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Every ``*.py`` file under *paths* (files pass through), sorted."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    seen = set()
    unique = []
    for f in files:
        if f not in seen:
            seen.add(f)
            unique.append(f)
    return unique


def display_path(path: Path, root: Optional[Path]) -> str:
    """The path findings/baselines are keyed by: root-relative, posix."""
    if root is not None:
        try:
            return path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    baseline: Optional[Baseline] = None,
    audit: bool = True,
    root: Optional[Path] = None,
    project=None,
) -> LintResult:
    """Lint every python file under *paths*; returns the full result.

    *select* restricts to specific rule codes (unused-suppression hygiene
    is then skipped: a suppression for an unselected rule is not unused).
    *audit* gates the registry introspection pass (REP1xx audit rules);
    *project* injects a :class:`~repro.lint.parity.ProjectContext` (tests
    use this to audit deliberately broken registries).
    """
    result = LintResult()
    known = set(rule_codes())
    active_source = source_rules(select)
    check_unused = select is None

    kept: List[Finding] = []
    for file_path in iter_python_files(paths):
        result.files += 1
        shown = display_path(file_path, root)
        module = module_name_of(file_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            ctx = FileContext.parse(
                shown, module, source, is_package=file_path.name == "__init__.py"
            )
        except (SyntaxError, UnicodeDecodeError) as exc:
            kept.append(Finding(
                code="REP000", path=shown, line=getattr(exc, "lineno", 1) or 1,
                col=1, message=f"file does not parse: {exc}",
            ))
            continue
        suppressions, hygiene = parse_suppressions(shown, ctx.lines, known)
        file_findings: List[Finding] = []
        for rule in active_source:
            if rule.applies_to(module):
                file_findings.extend(rule.check(ctx))
        for finding in file_findings:
            if suppressions.covers(finding.line, finding.code):
                result.suppressed += 1
            else:
                kept.append(finding)
        if select is None or HYGIENE_CODE in select:
            kept.extend(hygiene)
        if check_unused:
            for line, code in suppressions.unused():
                text = ctx.lines[line - 1].strip() if 0 < line <= len(ctx.lines) else ""
                kept.append(Finding(
                    code=HYGIENE_CODE, path=shown, line=line, col=1,
                    message=f"unused suppression of {code} (nothing to suppress here)",
                    line_text=text,
                ))

    if audit:
        if project is None:
            from .parity import ProjectContext

            project = ProjectContext(root=root)
        for rule in audit_rules(select):
            kept.extend(_with_line_text(rule.audit(project), root))

    if baseline is not None:
        remaining = []
        for finding in kept:
            if baseline.absorbs(finding):
                result.baselined += 1
            else:
                remaining.append(finding)
        kept = remaining
        result.stale_baseline = baseline.stale()

    result.findings = sort_findings(kept)
    return result


def _with_line_text(findings: Iterable[Finding], root: Optional[Path]) -> List[Finding]:
    """Fill in line text for audit findings (their rules only know paths)."""
    out = []
    cache = {}
    for finding in findings:
        if finding.line_text:
            out.append(finding)
            continue
        if finding.path not in cache:
            candidate = Path(finding.path)
            if root is not None and not candidate.is_absolute():
                candidate = root / candidate
            try:
                cache[finding.path] = candidate.read_text(encoding="utf-8").splitlines()
            except OSError:
                cache[finding.path] = []
        lines = cache[finding.path]
        text = lines[finding.line - 1] if 0 < finding.line <= len(lines) else ""
        out.append(finding.with_line_text(text))
    return out


__all__ = ["LintResult", "iter_python_files", "lint_paths", "module_name_of"]
