"""Per-line suppression comments and their hygiene.

Two forms suppress a ``REP0xx`` finding on the line that carries them:

* the house form -- ``# repro: noqa[REP001] -- reason`` (several codes:
  ``noqa[REP001,REP005]``).  The ``-- reason`` clause is *mandatory*: a
  suppression is a standing exception to a determinism contract, and the
  justification must live next to it, not in a PR description.
* the ruff-shared form -- ``# noqa: REP001`` -- accepted so one comment
  can silence ruff and ``repro.lint`` together (the ruff config declares
  the ``REP`` namespace via ``lint.external``).  Non-``REP`` codes in such
  comments belong to ruff and are ignored here.

A *bare* ``# noqa`` never suppresses a ``REP`` code: blanket waivers are
exactly the reviewability hole the linter exists to close.

Hygiene violations -- an unknown code, a house-form suppression without a
reason, a suppression that matches no finding -- are themselves findings
(REP007, emitted by :mod:`repro.lint.determinism` / the engine), so the
suppression inventory can never rot silently.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from .findings import Finding

#: the house form (the whole comment, nothing before it)
REPRO_FORM = re.compile(
    r"\A#\s*repro:\s*noqa\[(?P<codes>[^\]]*)\](?:\s*--\s*(?P<reason>\S.*?))?\s*$"
)
#: the ruff-shared form (likewise anchored at the comment start)
RUFF_FORM = re.compile(
    r"\A#\s*noqa:\s*(?P<codes>[A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)"
)
_CODE_SHAPE = re.compile(r"^REP\d{3}$")

HYGIENE_CODE = "REP007"


@dataclass
class Suppressions:
    """The parsed suppression comments of one file."""

    path: str
    #: line -> suppressed codes on that line.
    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    #: (line, code) pairs that actually matched a finding.
    used: Set[Tuple[int, str]] = field(default_factory=set)

    def covers(self, line: int, code: str) -> bool:
        """Whether *code* is suppressed on *line*; marks the suppression used."""
        if code in self.by_line.get(line, ()):
            self.used.add((line, code))
            return True
        return False

    def unused(self) -> List[Tuple[int, str]]:
        """The (line, code) suppressions that matched nothing."""
        return sorted(
            (line, code)
            for line, codes in self.by_line.items()
            for code in codes
            if (line, code) not in self.used
        )


def parse_suppressions(
    path: str, lines: List[str], known_codes: Set[str]
) -> Tuple[Suppressions, List[Finding]]:
    """Parse *lines*; returns the suppressions plus REP007 hygiene findings."""
    suppressions = Suppressions(path=path)
    hygiene: List[Finding] = []

    def flag(line_no: int, message: str) -> None:
        text = lines[line_no - 1].strip() if 0 < line_no <= len(lines) else ""
        hygiene.append(
            Finding(code=HYGIENE_CODE, path=path, line=line_no, col=1,
                    message=message, line_text=text)
        )

    for line_no, text in _comments(lines):
        if "noqa" not in text:
            continue
        house = REPRO_FORM.match(text)
        if house is not None:
            raw = [c.strip() for c in house.group("codes").split(",") if c.strip()]
            if not raw:
                flag(line_no, "empty 'repro: noqa[...]' suppression (no rule codes)")
            if house.group("reason") is None:
                flag(
                    line_no,
                    "suppression without a justification: write "
                    "'# repro: noqa[CODE] -- reason'",
                )
            for code in raw:
                if not _CODE_SHAPE.match(code):
                    flag(line_no, f"malformed rule code {code!r} in suppression")
                elif code not in known_codes:
                    flag(line_no, f"unknown rule code {code!r} in suppression")
                else:
                    suppressions.by_line.setdefault(line_no, set()).add(code)
            continue
        shared = RUFF_FORM.match(text)
        if shared is not None:
            for code in (c.strip() for c in shared.group("codes").split(",")):
                if not code.upper().startswith("REP"):
                    continue  # ruff's business, not ours
                if code not in known_codes:
                    flag(line_no, f"unknown rule code {code!r} in suppression")
                else:
                    suppressions.by_line.setdefault(line_no, set()).add(code)
    return suppressions, hygiene


def _comments(lines: List[str]) -> List[Tuple[int, str]]:
    """The real ``#`` comments of a file, as (line, comment text) pairs.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    syntax *inside string literals* -- docstrings documenting the form,
    test fixtures embedding snippets -- from being parsed as suppressions.
    """
    source = "".join(line + "\n" for line in lines)
    out: List[Tuple[int, str]] = []
    try:
        for tok in tokenize.generate_tokens(io.StringIO(source).readline):
            if tok.type == tokenize.COMMENT:
                out.append((tok.start[0], tok.string))
    except (tokenize.TokenError, IndentationError):
        # The engine only calls us after ast.parse succeeded, so this is
        # unreachable in practice; degrade to no suppressions if it isn't.
        pass
    return out


__all__ = ["HYGIENE_CODE", "Suppressions", "parse_suppressions"]
