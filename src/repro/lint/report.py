"""Reporters: the human text form and the machine JSON form."""

from __future__ import annotations

from typing import Any, Dict

from .engine import LintResult
from .rules import all_rules

JSON_SCHEMA = "repro-lint/1"


def render_text(result: LintResult) -> str:
    """The terminal report: one line per finding plus a summary."""
    lines = [finding.render() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding{'s' if len(result.findings) != 1 else ''} "
        f"({result.suppressed} suppressed, {result.baselined} baselined) "
        f"across {result.files} file{'s' if result.files != 1 else ''}"
    )
    if result.stale_baseline:
        lines.append(
            f"note: {len(result.stale_baseline)} stale baseline "
            f"entr{'ies' if len(result.stale_baseline) != 1 else 'y'} "
            "(fixed findings still grandfathered; shrink the baseline):"
        )
        for entry in result.stale_baseline:
            lines.append(f"  {entry.code} {entry.path}: {entry.line_text!r}")
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> Dict[str, Any]:
    """The machine report (stable schema, consumed by CI and tests)."""
    return {
        "schema": JSON_SCHEMA,
        "findings": [
            {
                "code": f.code,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "line_text": f.line_text,
            }
            for f in result.findings
        ],
        "summary": {
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "stale_baseline": len(result.stale_baseline),
            "files": result.files,
            "clean": result.clean,
        },
    }


def render_rule_list() -> str:
    """The ``--list-rules`` table."""
    rules = all_rules()
    width = max(len(r.name) for r in rules)
    lines = []
    for rule in rules:
        kind = "audit" if not hasattr(rule, "check") else "source"
        lines.append(f"{rule.code}  {rule.name:<{width}}  [{kind}]  {rule.summary}")
    return "\n".join(lines)


__all__ = ["JSON_SCHEMA", "render_json", "render_rule_list", "render_text"]
