"""repro: a reproduction of "Communication Predicates: A High-Level Abstraction
for Coping with Transient and Dynamic Faults" (Hutle & Schiper, DSN 2007).

The package implements the full stack described by the paper:

* :mod:`repro.engine` -- the shared discrete-event engine core: the
  (time, sequence)-ordered event queue, the simulated clock, named seeded
  random sub-streams and the crash/recovery fault-injection layer that both
  simulators delegate to;
* :mod:`repro.core` -- the Heard-Of (HO) model: rounds, algorithms,
  communication predicates, heard-of oracles;
* :mod:`repro.algorithms` -- consensus algorithms in the HO model
  (OneThirdRule, LastVoting, UniformVoting);
* :mod:`repro.sysmodel` -- the step-level partially synchronous system model
  with good/bad periods, crash-recovery and message loss;
* :mod:`repro.predimpl` -- the predicate-implementation layer
  (Algorithms 2, 3, 4) and the analytic good-period bounds
  (Theorems 3, 5, 6, 7, Corollary 4);
* :mod:`repro.des` -- an event-driven asynchronous simulator used by the
  failure-detector baselines;
* :mod:`repro.failure_detectors` -- the Chandra-Toueg and Aguilera et al.
  baseline consensus algorithms with their failure detectors;
* :mod:`repro.analysis` -- fault taxonomy, predicate checking and consensus
  property checking over traces;
* :mod:`repro.workloads` -- scenario generators and the measurement harness
  used by the benchmarks;
* :mod:`repro.runner` -- the scenario/measurement registry and the parallel
  (scenario × seed × fault-model) sweep executor behind the benchmarks and
  ``python -m repro.runner``.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
