"""Optional third-party dependencies, resolved once per process.

The only optional dependency today is numpy, shipped as the ``fast`` extra
(``pip install repro-hutle-schiper-2007[fast]``): the batch execution
backend (:mod:`repro.batch`) vectorises replica batches with it, and every
consumer degrades to a pure-Python path when it is absent.  All numpy users
go through :data:`NUMPY` / :func:`have_numpy` so there is exactly one
import-guard in the code base.

Set ``REPRO_DISABLE_NUMPY=1`` in the environment to pretend numpy is not
installed -- CI uses this (and a genuinely numpy-free matrix leg) to keep
the fallback path honest.
"""

from __future__ import annotations

import os
from typing import Any, Optional


def _load_numpy() -> Optional[Any]:
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


#: The numpy module, or None when unavailable (not installed, or disabled
#: via ``REPRO_DISABLE_NUMPY``).  Resolved at import time: flipping the
#: environment variable mid-process does not re-resolve it.
NUMPY = _load_numpy()


def have_numpy() -> bool:
    """Whether the vectorised (numpy) paths are available in this process."""
    return NUMPY is not None


def require_numpy() -> Any:
    """Return numpy or raise a pointed error naming the ``fast`` extra."""
    if NUMPY is None:
        raise RuntimeError(
            "this code path needs numpy; install the 'fast' extra "
            "(pip install 'repro-hutle-schiper-2007[fast]') or use the "
            "pure-Python scalar backend"
        )
    return NUMPY


__all__ = ["NUMPY", "have_numpy", "require_numpy"]
