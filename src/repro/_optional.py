"""Optional third-party dependencies, resolved once per process.

Two optional dependencies exist today, both shipped via extras:

* **numpy** (the ``fast`` extra): the batch execution backend
  (:mod:`repro.batch`) vectorises replica batches with it, and every
  consumer degrades to a pure-Python path when it is absent.
* **numba** (the ``compiled`` extra, also pulled in by ``fast``): the
  compiled kernel tier (:mod:`repro.compiled`) JITs the batched transition
  kernels and the splitmix64 counter path; without it every compiled cell
  degrades to the numpy batch path (and further to scalar) with identical
  results.

All users go through :data:`NUMPY` / :func:`have_numpy` and
:data:`NUMBA` / :func:`have_numba` so there is exactly one import-guard
per dependency in the code base.

Set ``REPRO_DISABLE_NUMPY=1`` or ``REPRO_DISABLE_NUMBA=1`` in the
environment to pretend the dependency is not installed -- CI uses these
(and genuinely dependency-free matrix legs) to keep the fallback paths
honest.
"""

from __future__ import annotations

import os
from typing import Any, Optional


def _load_numpy() -> Optional[Any]:
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return None
    try:
        import numpy
    except ImportError:
        return None
    return numpy


#: The numpy module, or None when unavailable (not installed, or disabled
#: via ``REPRO_DISABLE_NUMPY``).  Resolved at import time: flipping the
#: environment variable mid-process does not re-resolve it.
NUMPY = _load_numpy()


def _load_numba() -> Optional[Any]:
    # The compiled tier operates on numpy arrays; numba without numpy is
    # not a configuration the kernels can run under.
    if os.environ.get("REPRO_DISABLE_NUMBA") or NUMPY is None:
        return None
    try:
        import numba
    except ImportError:
        return None
    return numba


#: The numba module, or None when unavailable (not installed, disabled via
#: ``REPRO_DISABLE_NUMBA``, or numpy itself is unavailable).  Resolved at
#: import time, like :data:`NUMPY`.
NUMBA = _load_numba()


def have_numpy() -> bool:
    """Whether the vectorised (numpy) paths are available in this process."""
    return NUMPY is not None


def require_numpy() -> Any:
    """Return numpy or raise a pointed error naming the ``fast`` extra."""
    if NUMPY is None:
        raise RuntimeError(
            "this code path needs numpy; install the 'fast' extra "
            "(pip install 'repro-hutle-schiper-2007[fast]') or use the "
            "pure-Python scalar backend"
        )
    return NUMPY


def have_numba() -> bool:
    """Whether the compiled (numba) kernel tier is available in this process."""
    return NUMBA is not None


def require_numba() -> Any:
    """Return numba or raise a pointed error naming the ``compiled`` extra."""
    if NUMBA is None:
        raise RuntimeError(
            "this code path needs numba; install the 'compiled' extra "
            "(pip install 'repro-hutle-schiper-2007[compiled]') or use the "
            "numpy batch / pure-Python scalar backends"
        )
    return NUMBA


__all__ = [
    "NUMBA",
    "NUMPY",
    "have_numba",
    "have_numpy",
    "require_numba",
    "require_numpy",
]
