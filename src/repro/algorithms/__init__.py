"""Consensus algorithms expressed in the HO model (the paper's algorithmic layer).

* :class:`~repro.algorithms.one_third_rule.OneThirdRule` -- Algorithm 1 of
  the paper, paired with ``P_otr`` / ``P_restr_otr``;
* :class:`~repro.algorithms.last_voting.LastVoting` -- the Paxos-like
  coordinator-based algorithm the paper refers to (reference [6]);
* :class:`~repro.algorithms.uniform_voting.UniformVoting` -- a
  two-rounds-per-phase algorithm for non-empty-kernel predicates.

:mod:`repro.algorithms.batched` holds the replica-vectorised batch kernels
of all three (the ``(R, n)``-array duals behind the batch execution
backend); importable without numpy, runnable only with it.
"""

from .batched import (
    BatchKernel,
    BatchLastVoting,
    BatchOneThirdRule,
    BatchUniformVoting,
    BatchUnsupported,
    batch_kernel_for,
    register_batch_kernel,
)
from .last_voting import LastVoting, LastVotingMessage, LastVotingState
from .one_third_rule import OneThirdRule, OneThirdRuleMessage, OneThirdRuleState
from .uniform_voting import UniformVoting, UniformVotingMessage, UniformVotingState

__all__ = [
    "OneThirdRule",
    "OneThirdRuleState",
    "OneThirdRuleMessage",
    "LastVoting",
    "LastVotingState",
    "LastVotingMessage",
    "UniformVoting",
    "UniformVotingState",
    "UniformVotingMessage",
    # batched kernels
    "BatchKernel",
    "BatchOneThirdRule",
    "BatchUniformVoting",
    "BatchLastVoting",
    "BatchUnsupported",
    "batch_kernel_for",
    "register_batch_kernel",
]
