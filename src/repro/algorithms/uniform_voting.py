"""UniformVoting: a two-rounds-per-phase consensus algorithm for non-empty kernels.

UniformVoting comes from the Heard-Of literature (reference [6] of the
paper).  It solves consensus under the communication predicate "every round
has a non-empty kernel, and eventually there is a space-uniform round":

* safety relies on the non-empty kernel of voting rounds -- two processes can
  never lock conflicting votes in the same phase because their heard-of sets
  intersect;
* liveness relies on one space-uniform round in which everybody sees the same
  votes.

It is included (a) as a second coordinator-free algorithm for the E1
benchmark, and (b) because it exercises a *different* class of predicates
than OneThirdRule, demonstrating the expressiveness claim of Section 3.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from ..core.algorithm import ConsensusAlgorithm
from ..core.types import ProcessId, Round


@dataclass(frozen=True)
class UniformVotingState:
    """Process state of UniformVoting: estimate, current-phase vote and decision."""

    x: Any
    vote: Optional[Any] = None
    decision: Optional[Any] = None


@dataclass(frozen=True)
class UniformVotingMessage:
    """Round message of UniformVoting: the estimate, plus the vote in even rounds."""

    x: Any
    vote: Optional[Any] = None


class UniformVoting(ConsensusAlgorithm[UniformVotingState, UniformVotingMessage]):
    """The UniformVoting consensus algorithm, two rounds per phase."""

    name = "uniform-voting"

    ROUNDS_PER_PHASE = 2

    def initial_state(self, process: ProcessId, initial_value: Any) -> UniformVotingState:
        return UniformVotingState(x=initial_value)

    def phase_of(self, round: Round) -> int:
        """The phase a round belongs to (phases are 1-based)."""
        return (round - 1) // self.ROUNDS_PER_PHASE + 1

    def is_voting_round(self, round: Round) -> bool:
        """Whether *round* is the first (voting) round of its phase."""
        return round % 2 == 1

    def send(
        self, round: Round, process: ProcessId, state: UniformVotingState
    ) -> UniformVotingMessage:
        if self.is_voting_round(round):
            return UniformVotingMessage(x=state.x)
        return UniformVotingMessage(x=state.x, vote=state.vote)

    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: UniformVotingState,
        received: Mapping[ProcessId, UniformVotingMessage],
    ) -> UniformVotingState:
        if self.is_voting_round(round):
            return self._transition_vote(state, received)
        return self._transition_resolve(state, received)

    def _transition_vote(
        self,
        state: UniformVotingState,
        received: Mapping[ProcessId, UniformVotingMessage],
    ) -> UniformVotingState:
        values = [message.x for message in received.values()]
        if values and all(value == values[0] for value in values):
            return replace(state, vote=values[0])
        return replace(state, vote=None)

    def _transition_resolve(
        self,
        state: UniformVotingState,
        received: Mapping[ProcessId, UniformVotingMessage],
    ) -> UniformVotingState:
        if not received:
            return replace(state, vote=None)
        votes = [message.vote for message in received.values() if message.vote is not None]
        estimates = [message.x for message in received.values()]
        if votes:
            new_x = votes[0]
        else:
            new_x = min(estimates)
        decision = state.decision
        if decision is None and len(votes) == len(received):
            decision = votes[0]
        return replace(state, x=new_x, vote=None, decision=decision)

    def decision(self, state: UniformVotingState) -> Optional[Any]:
        return state.decision


__all__ = ["UniformVoting", "UniformVotingState", "UniformVotingMessage"]
