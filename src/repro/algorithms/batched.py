"""Batched (replica-vectorised) transition kernels for the consensus algorithms.

A *batch kernel* is the ``(R, n)``-array dual of a scalar algorithm's
``send``/``transition``/``decision`` triple: it advances R independent
replicas of the same algorithm through one lockstep round at a time, given
the round's boolean heard-matrix ``H[r, p, q]`` ("replica r's process p
heard sender q").  Kernels are the compute core of the batch execution
backend (:mod:`repro.batch`); the contract -- checked by the equivalence
tests -- is that replica ``r`` evolves *bit-identically* to a scalar run of
the same algorithm under the same heard-of sets, including tie-breaking.

Values are encoded per replica as integer *codes* into a sorted table of
that replica's distinct initial values.  The encoding is order-isomorphic
(codes sort exactly like values), so ``min``/equality/counting on codes
reproduce the scalar semantics; every shipped algorithm only ever adopts
received values, so the table never grows.  Replicas whose initial values
are not totally ordered (or not hashable) cannot be encoded --
:func:`encode_values` raises :class:`BatchUnsupported` and the backend
falls back to the scalar loop.

The scalar tie-breaks faithfully reproduced here:

* OneThirdRule adopts, among the values tied for the highest multiplicity,
  the one whose *first occurrence* (in ascending heard-sender order) comes
  first -- the ``Counter.most_common`` insertion-order tie-break;
* UniformVoting's ``votes[0]`` is the vote of the lowest-id heard sender
  carrying one;
* LastVoting's coordinator picks, among highest-timestamp estimates, the
  value that is smallest *by* ``repr`` (the scalar ``sorted(..., key=repr)``),
  which the kernel precomputes as a per-replica repr-rank permutation.

This module imports numpy lazily through :mod:`repro._optional`; it is
importable without numpy, and only constructing a kernel requires it.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from .._optional import require_numpy
from ..rounds.fallback import FallbackReason
from .last_voting import LastVoting
from .one_third_rule import OneThirdRule
from .uniform_voting import UniformVoting


class BatchUnsupported(Exception):
    """Raised when a batch kernel cannot represent the requested replicas.

    The batch backend treats this as "vectorisation cannot engage" and runs
    the per-replica scalar fallback loop instead; it is never a user error.
    """


def encode_values(initial_values: Sequence[Any]) -> Tuple[List[Any], List[int]]:
    """Encode one replica's initial values as codes into a sorted value table.

    Returns ``(table, codes)`` with ``table`` sorted ascending and
    ``codes[p]`` the index of process p's value.  Raises
    :class:`BatchUnsupported` when the values are not mutually comparable
    or not hashable (the scalar algorithms need total order anyway, but the
    kernel must refuse rather than guess), or when two values compare equal
    yet differ in ``repr`` (e.g. ``1`` and ``1.0``): the encoding keeps one
    representative per equality class, which would silently change the
    estimates the scalar path reports -- and LastVoting's repr tie-break --
    so such batches take the scalar loop instead.
    """
    try:
        table = sorted(set(initial_values))
    except TypeError as exc:
        raise BatchUnsupported(
            FallbackReason.UNENCODABLE_VALUES.render(error=exc)
        ) from None
    index = {value: code for code, value in enumerate(table)}
    codes = []
    for value in initial_values:
        code = index[value]
        if repr(table[code]) != repr(value):
            raise BatchUnsupported(
                FallbackReason.VALUE_REPR_COLLISION.render(kept=table[code], value=value)
            )
        codes.append(code)
    return table, codes


class BatchKernel(abc.ABC):
    """R replicas of one algorithm, advanced one lockstep round at a time.

    Subclasses own the per-field state arrays; the shared base holds the
    value encoding, the decision bookkeeping (``decision_code`` with ``-1``
    for undecided, ``decision_round``) and the decode helpers the engine
    uses for outcomes and fingerprints.
    """

    #: the scalar algorithm class this kernel is the dual of.
    algorithm_class: Type[Any]

    #: whether the super-batch engine may pack this kernel's rows into a
    #: mixed-cell row space (it constructs kernels directly with ``row_n``
    #: padding); kernels whose construction needs the full task context --
    #: e.g. the translation kernel, which embeds an inner kernel -- opt out
    #: and keep the per-cell batch path.
    super_batchable = True

    @classmethod
    def from_batch(cls, batch: Any) -> "BatchKernel":
        """Construct the kernel for a :class:`~repro.rounds.backend.ReplicaBatch`.

        The default reads only ``(n, initial_values)``; kernels that depend
        on the tasks' algorithm instances (translation parameters, inner
        algorithms) override this and raise :class:`BatchUnsupported` for
        task shapes they cannot represent.
        """
        return cls(batch.n, [list(task.initial_values) for task in batch.tasks])

    def __init__(
        self,
        n: int,
        initial_values: Sequence[Sequence[Any]],
        row_n: Optional[Sequence[int]] = None,
    ) -> None:
        np = require_numpy()
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self.np = np
        self.n = n
        self.replicas = len(initial_values)
        if self.replicas == 0:
            raise ValueError("at least one replica is required")
        if row_n is None:
            self.row_n = None
        else:
            # Mixed-n super-batches: row r simulates row_n[r] <= n real
            # processes; columns above row_n[r] are padding.  Padded
            # receivers must be fed empty heard-rows (they then never pass
            # an update gate), and n-relative thresholds use the row's n.
            if len(row_n) != self.replicas:
                raise ValueError(
                    f"expected {self.replicas} row sizes, got {len(row_n)}"
                )
            for size in row_n:
                if not 1 <= size <= n:
                    raise ValueError(f"row size {size} outside 1..{n}")
            self.row_n = np.array(row_n, dtype=np.int32)
        tables: List[List[Any]] = []
        codes: List[List[int]] = []
        for values in initial_values:
            if len(values) != n:
                raise ValueError(f"expected {n} initial values, got {len(values)}")
            table, row = encode_values(values)
            tables.append(table)
            codes.append(row)
        self.tables = tables
        #: (R, n) int32 -- the current estimate of every process, as a code.
        self.x = np.array(codes, dtype=np.int32)
        #: (R, n) int32 -- decision codes, -1 while undecided.
        self.decision_code = np.full((self.replicas, n), -1, dtype=np.int32)
        #: (R, n) int32 -- round of first decision, 0 while undecided.
        self.decision_round = np.zeros((self.replicas, n), dtype=np.int32)

    # ------------------------------------------------------------------ #
    # the lockstep step
    # ------------------------------------------------------------------ #

    @abc.abstractmethod
    def step(self, round: int, heard: Any, active: Any) -> None:
        """Advance every replica where ``active[r]`` through *round*.

        *heard* is the round's boolean heard-matrix ``(R, n, n)``
        (receiver-major); inactive replicas' state must not change.
        """

    def _scratch(self, name: str, shape: Tuple[int, ...], dtype: Any) -> Any:
        """A reusable uninitialised buffer keyed by *name*.

        ``step`` runs every round over the same ``(R, n)`` shapes, so its
        large temporaries (one-hot tables, float matmul operands) are
        allocated once here and rewritten in place each round instead of
        churning fresh arrays.  A buffer is reallocated when the requested
        shape or dtype changes -- row compaction shrinks R mid-run.  The
        store is created on first use (``self.__dict__``) because not every
        kernel routes through :meth:`BatchKernel.__init__`.
        """
        buffers = self.__dict__.setdefault("_scratch_buffers", {})
        buffer = buffers.get(name)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = self.np.empty(shape, dtype=dtype)
            buffers[name] = buffer
        return buffer

    def _record_decisions(self, round: int, fire: Any, value_codes: Any) -> None:
        """Latch first decisions: where *fire*, decide *value_codes* at *round*."""
        np = self.np
        fresh = fire & (self.decision_code < 0)
        self.decision_code = np.where(fresh, value_codes, self.decision_code)
        self.decision_round = np.where(fresh, round, self.decision_round)

    def _row_sizes(self) -> Any:
        """Per-row process count as an ``(R, 1)`` column (scalar when uniform)."""
        if self.row_n is None:
            return self.np.int32(self.n)
        return self.row_n[:, None]

    # ------------------------------------------------------------------ #
    # row compaction (the super-batch engine retires decided rows)
    # ------------------------------------------------------------------ #

    def _state_array_names(self) -> List[str]:
        """The per-row state arrays a :meth:`compact` must gather."""
        return ["x", "decision_code", "decision_round"]

    def compact(self, keep: Any) -> None:
        """Keep only the rows indexed by *keep* (ascending), in that order.

        The super-batch engine retires rows as their replicas decide;
        compaction gathers every per-row state array so the lockstep step
        touches only live rows.  Callers own the old-index -> new-index
        mapping.
        """
        keep = self.np.asarray(keep, dtype=self.np.int64)
        for name in self._state_array_names():
            setattr(self, name, getattr(self, name)[keep])
        self.tables = [self.tables[int(i)] for i in keep]
        if self.row_n is not None:
            self.row_n = self.row_n[keep]
        self.replicas = len(self.tables)

    # ------------------------------------------------------------------ #
    # engine-facing queries
    # ------------------------------------------------------------------ #

    def decided(self) -> Any:
        """(R, n) bool -- which processes have decided."""
        return self.decision_code >= 0

    def scope_all_decided(self, scope_processes: Sequence[int]) -> Any:
        """(R,) bool -- replicas in which every scope process decided."""
        if not scope_processes:
            return self.np.ones(self.replicas, dtype=bool)
        return (self.decision_code[:, list(scope_processes)] >= 0).all(axis=1)

    def decode(self, replica: int, code: int) -> Any:
        return self.tables[replica][code]

    def decisions_of(self, replica: int) -> Tuple[Dict[int, Any], Dict[int, int]]:
        """The (decisions, decision_rounds) dicts of one replica, decoded."""
        decisions: Dict[int, Any] = {}
        rounds: Dict[int, int] = {}
        row = self.decision_code[replica]
        for p in range(self.n):
            code = int(row[p])
            if code >= 0:
                decisions[p] = self.tables[replica][code]
                rounds[p] = int(self.decision_round[replica, p])
        return decisions, rounds

    def estimate_reprs(self, replica: int) -> List[str]:
        """``repr`` of every process's current estimate (fingerprint food)."""
        table = self.tables[replica]
        return [repr(table[int(code)]) for code in self.x[replica]]

    def newly_decided(self, replica: int, decided_before: Any) -> List[Tuple[int, str]]:
        """Decisions that fired this round in *replica* (fingerprint food)."""
        out: List[Tuple[int, str]] = []
        row = self.decision_code[replica]
        for p in range(self.n):
            if row[p] >= 0 and not decided_before[replica, p]:
                out.append((p, repr(self.tables[replica][int(row[p])])))
        return out

    # shared helpers ---------------------------------------------------- #

    def _min_heard_code(self, heard: Any) -> Any:
        """(R, n) -- min estimate code among heard senders (garbage when none)."""
        np = self.np
        big = np.int32(self.n + 1)
        return np.where(heard, self.x[:, None, :], big).min(axis=2)

    def _first_heard_code(self, eligible: Any) -> Any:
        """(R, n) -- code of the lowest-id sender with ``eligible[r, p, q]``.

        Garbage where no sender is eligible; callers mask with the
        eligibility count.
        """
        np = self.np
        qstar = eligible.argmax(axis=2)
        return np.take_along_axis(self.x, qstar, axis=1)


class BatchOneThirdRule(BatchKernel):
    """The ``(R, n)`` dual of :class:`~repro.algorithms.OneThirdRule`."""

    algorithm_class = OneThirdRule

    def step(self, round: int, heard: Any, active: Any) -> None:
        np = self.np
        n = self.n
        x = self.x
        n_col = self._row_sizes()                                   # row's n
        hc = heard.sum(axis=2, dtype=np.int32)                      # (R, n)
        act = active[:, None] & (3 * hc > 2 * n_col)                # update gate

        # Multiplicity of every value code among heard senders, via one
        # batched matmul: counts[r, p, v] = |{q in HO(p) : x_q = v}|.
        shape = (self.replicas, n, n)
        onehot = self._scratch("otr_onehot", shape, np.float32)
        np.equal(x[:, :, None], np.arange(n, dtype=np.int32), out=onehot)
        heard_f = self._scratch("otr_heard_f32", shape, np.float32)
        np.copyto(heard_f, heard)
        counts = self._scratch("otr_counts", shape, np.float32)
        np.matmul(heard_f, onehot, out=counts)                      # (R, n, n)
        top = counts.max(axis=2)                                    # (R, n) float
        top_i = top.astype(np.int32)

        # Counter.most_common tie-break: the winning value is the one carried
        # by the first heard sender whose value attains the top count.
        counts_by_sender = np.take_along_axis(
            counts, np.broadcast_to(x[:, None, :], heard.shape), axis=2
        )
        winner = self._first_heard_code(heard & (counts_by_sender == top[:, :, None]))

        adopt_top = (hc - top_i) <= n_col // 3
        new_x = np.where(adopt_top, winner, self._min_heard_code(heard))
        self.x = np.where(act, new_x, x)

        # A value with multiplicity > 2n/3 is unique, and is the top value.
        self._record_decisions(round, act & (3 * top_i > 2 * n_col), winner)


class BatchUniformVoting(BatchKernel):
    """The ``(R, n)`` dual of :class:`~repro.algorithms.UniformVoting`."""

    algorithm_class = UniformVoting

    def __init__(
        self,
        n: int,
        initial_values: Sequence[Sequence[Any]],
        row_n: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(n, initial_values, row_n)
        #: (R, n) int32 -- current-phase vote codes, -1 for None.
        self.vote = self.np.full((self.replicas, n), -1, dtype=self.np.int32)

    def _state_array_names(self) -> List[str]:
        return super()._state_array_names() + ["vote"]

    def step(self, round: int, heard: Any, active: Any) -> None:
        np = self.np
        n = self.n
        hc = heard.sum(axis=2, dtype=np.int32)
        act = np.broadcast_to(active[:, None], (self.replicas, n))
        if round % 2 == 1:
            # Voting round: vote for the common estimate iff every heard
            # estimate is equal (and something was heard); else vote None.
            big = np.int32(n + 1)
            lo = np.where(heard, self.x[:, None, :], big).min(axis=2)
            hi = np.where(heard, self.x[:, None, :], np.int32(-1)).max(axis=2)
            unanimous = (hc > 0) & (lo == hi)
            self.vote = np.where(act, np.where(unanimous, lo, np.int32(-1)), self.vote)
            return

        # Resolve round: adopt the first heard vote (or the min estimate),
        # decide iff every heard sender voted; votes always reset.
        has_any = hc > 0
        votes_heard = heard & (self.vote[:, None, :] >= 0)
        nv = votes_heard.sum(axis=2, dtype=np.int32)
        qstar = votes_heard.argmax(axis=2)
        first_vote = np.take_along_axis(self.vote, qstar, axis=1)
        new_x = np.where(nv > 0, first_vote, self._min_heard_code(heard))
        upd = act & has_any
        self.x = np.where(upd, new_x, self.x)
        self._record_decisions(round, upd & (nv == hc), first_vote)
        self.vote = np.where(act, np.int32(-1), self.vote)


class BatchLastVoting(BatchKernel):
    """The ``(R, n)`` dual of :class:`~repro.algorithms.LastVoting`."""

    algorithm_class = LastVoting

    ROUNDS_PER_PHASE = LastVoting.ROUNDS_PER_PHASE

    def __init__(
        self,
        n: int,
        initial_values: Sequence[Sequence[Any]],
        row_n: Optional[Sequence[int]] = None,
    ) -> None:
        super().__init__(n, initial_values, row_n)
        np = self.np
        shape = (self.replicas, n)
        self.timestamp = np.zeros(shape, dtype=np.int32)
        self.vote = np.full(shape, -1, dtype=np.int32)
        self.commit = np.zeros(shape, dtype=bool)
        self.ready = np.zeros(shape, dtype=bool)
        # The coordinator breaks value ties by repr order (the scalar
        # ``sorted(..., key=repr)``): per replica, rank codes by the repr of
        # their value and keep the inverse permutation, padded to width n.
        rank_of_code = np.zeros(shape, dtype=np.int32)
        code_at_rank = np.zeros(shape, dtype=np.int32)
        for r, table in enumerate(self.tables):
            order = sorted(range(len(table)), key=lambda code: repr(table[code]))
            for rank, code in enumerate(order):
                rank_of_code[r, code] = rank
                code_at_rank[r, rank] = code
        self.rank_of_code = rank_of_code
        self.code_at_rank = code_at_rank

    def _state_array_names(self) -> List[str]:
        return super()._state_array_names() + [
            "timestamp",
            "vote",
            "commit",
            "ready",
            "rank_of_code",
            "code_at_rank",
        ]

    def _gather(self, array: Any, coord: Any) -> Any:
        """``array[r, coord[r]]`` as an ``(R,)`` vector."""
        return self.np.take_along_axis(array, coord[:, None], axis=1)[:, 0]

    def _scatter(self, array: Any, coord: Any, values: Any) -> None:
        """``array[r, coord[r]] = values[r]`` in place."""
        self.np.put_along_axis(array, coord[:, None], values[:, None], axis=1)

    def step(self, round: int, heard: Any, active: Any) -> None:
        np = self.np
        n = self.n
        phase = (round - 1) // self.ROUNDS_PER_PHASE + 1
        step = (round - 1) % self.ROUNDS_PER_PHASE + 1
        # The phase coordinator is n-relative, hence per row in a mixed-n
        # batch: row r's coordinator is (phase - 1) % row_n[r].
        if self.row_n is None:
            coord = np.full(self.replicas, (phase - 1) % n, dtype=np.int32)
            n_row = np.int32(n)
        else:
            coord = ((phase - 1) % self.row_n).astype(np.int32)
            n_row = self.row_n
        idx = coord[:, None, None]
        heard_by_coord = np.take_along_axis(heard, idx, axis=1)[:, 0, :]  # (R, n)
        hears_coord = np.take_along_axis(heard, idx, axis=2)[:, :, 0]     # (R, n)

        if step == 1:
            # Coordinator selects the best-timestamped estimate from a
            # majority, smallest by repr among ties.
            hc = heard_by_coord.sum(axis=1, dtype=np.int32)
            upd = active & (2 * hc > n_row)
            best_ts = np.where(heard_by_coord, self.timestamp, np.int32(-1)).max(axis=1)
            eligible = heard_by_coord & (self.timestamp == best_ts[:, None])
            rank_x = np.take_along_axis(self.rank_of_code, self.x, axis=1)
            best_rank = np.where(eligible, rank_x, np.int32(n)).min(axis=1)
            best_rank = np.minimum(best_rank, np.int32(n - 1))
            selected = np.take_along_axis(
                self.code_at_rank, best_rank[:, None], axis=1
            )[:, 0]
            vote_coord = self._gather(self.vote, coord)
            self._scatter(self.vote, coord, np.where(upd, selected, vote_coord))
            self._scatter(self.commit, coord, self._gather(self.commit, coord) | upd)
            return

        if step == 2:
            # Everyone who hears a committed coordinator adopts its vote.
            commit_coord = self._gather(self.commit, coord)
            vote_coord = self._gather(self.vote, coord)
            upd = active[:, None] & hears_coord & commit_coord[:, None]
            self.x = np.where(upd, vote_coord[:, None], self.x)
            self.timestamp = np.where(upd, np.int32(phase), self.timestamp)
            return

        if step == 3:
            # Coordinator counts acks (current-phase timestamps) for a majority.
            acks = (heard_by_coord & (self.timestamp == phase)).sum(axis=1, dtype=np.int32)
            ready = active & (2 * acks > n_row)
            self._scatter(self.ready, coord, self._gather(self.ready, coord) | ready)
            return

        # Step 4: decide on a heard "decide"; the phase flags always reset.
        ready_coord = self._gather(self.ready, coord)
        vote_coord = self._gather(self.vote, coord)
        fire = active[:, None] & hears_coord & ready_coord[:, None]
        self._record_decisions(round, fire, vote_coord[:, None])
        act = active[:, None]
        self.commit &= ~act
        self.ready &= ~act


#: Kernel lookup by scalar algorithm class (subclasses resolve to their base
#: kernel unless they register their own).
_KERNELS: Dict[Type[Any], Type[BatchKernel]] = {
    OneThirdRule: BatchOneThirdRule,
    UniformVoting: BatchUniformVoting,
    LastVoting: BatchLastVoting,
}


def register_batch_kernel(algorithm_class: Type[Any], kernel: Type[BatchKernel]) -> None:
    """Register *kernel* as the batched dual of *algorithm_class*."""
    _KERNELS[algorithm_class] = kernel


def batch_kernel_for(algorithm: Any) -> Optional[Type[BatchKernel]]:
    """The kernel class for a scalar algorithm instance, or None.

    Exact class match only: a subclass may have overridden ``transition``,
    and silently running the base kernel would break bit-identity.
    """
    return _KERNELS.get(type(algorithm))


__all__ = [
    "BatchUnsupported",
    "encode_values",
    "BatchKernel",
    "BatchOneThirdRule",
    "BatchUniformVoting",
    "BatchLastVoting",
    "register_batch_kernel",
    "batch_kernel_for",
]
