"""LastVoting: a Paxos-like, coordinator-based consensus algorithm in the HO model.

The paper (Sections 1 and 5) stresses that the HO model can express the
Paxos approach -- tolerating message loss without ever compromising safety --
"naturally", which the failure-detector model cannot.  LastVoting is the HO
rendition of Paxos from the Heard-Of literature (Charron-Bost & Schiper,
reference [6] of the paper): phases of four rounds with a rotating
coordinator, where only phases in which the coordinator hears of a majority
make progress.

Safety (integrity and agreement) holds under *any* heard-of collection.
Liveness needs a phase ``phi`` whose coordinator ``c`` satisfies, round by
round: ``|HO(c, 4*phi-3)| > n/2``, ``c in HO(p, 4*phi-2)`` for all p,
``|HO(c, 4*phi-1)| > n/2`` and ``c in HO(p, 4*phi)`` for all p -- i.e. a
"good phase".  This is weaker than a space-uniform round; the benchmark E1
exercises both algorithms under the same collections.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from ..core.algorithm import ConsensusAlgorithm
from ..core.types import ProcessId, Round


@dataclass(frozen=True)
class LastVotingState:
    """Process state of LastVoting."""

    x: Any
    timestamp: int = 0
    vote: Optional[Any] = None
    commit: bool = False
    ready: bool = False
    decision: Optional[Any] = None


@dataclass(frozen=True)
class LastVotingMessage:
    """Round message of LastVoting.

    The ``kind`` discriminates the four per-phase rounds; unused fields are
    ``None``.  Every message is broadcast (HO-model style); receivers that
    the message does not concern simply ignore it.
    """

    kind: str
    x: Any = None
    timestamp: int = 0
    vote: Optional[Any] = None
    ack: bool = False


class LastVoting(ConsensusAlgorithm[LastVotingState, LastVotingMessage]):
    """The LastVoting (Paxos-like) consensus algorithm, four rounds per phase."""

    name = "last-voting"

    ROUNDS_PER_PHASE = 4

    def initial_state(self, process: ProcessId, initial_value: Any) -> LastVotingState:
        return LastVotingState(x=initial_value)

    # ------------------------------------------------------------------ #
    # phase structure helpers
    # ------------------------------------------------------------------ #

    def phase_of(self, round: Round) -> int:
        """The phase a round belongs to (phases are 1-based)."""
        return (round - 1) // self.ROUNDS_PER_PHASE + 1

    def step_of(self, round: Round) -> int:
        """The position of a round within its phase: 1..4."""
        return (round - 1) % self.ROUNDS_PER_PHASE + 1

    def coordinator(self, phase: int) -> ProcessId:
        """The rotating coordinator of a phase."""
        return (phase - 1) % self.n

    # ------------------------------------------------------------------ #
    # sending function
    # ------------------------------------------------------------------ #

    def send(
        self, round: Round, process: ProcessId, state: LastVotingState
    ) -> LastVotingMessage:
        phase = self.phase_of(round)
        step = self.step_of(round)
        coord = self.coordinator(phase)
        if step == 1:
            return LastVotingMessage(kind="estimate", x=state.x, timestamp=state.timestamp)
        if step == 2:
            if process == coord and state.commit:
                return LastVotingMessage(kind="vote", vote=state.vote)
            return LastVotingMessage(kind="noop")
        if step == 3:
            if state.timestamp == phase:
                return LastVotingMessage(kind="ack", ack=True)
            return LastVotingMessage(kind="noop")
        # step == 4
        if process == coord and state.ready:
            return LastVotingMessage(kind="decide", vote=state.vote)
        return LastVotingMessage(kind="noop")

    # ------------------------------------------------------------------ #
    # transition function
    # ------------------------------------------------------------------ #

    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: LastVotingState,
        received: Mapping[ProcessId, LastVotingMessage],
    ) -> LastVotingState:
        phase = self.phase_of(round)
        step = self.step_of(round)
        coord = self.coordinator(phase)

        if step == 1:
            return self._transition_select(state, process, coord, received)
        if step == 2:
            return self._transition_adopt(state, phase, coord, received)
        if step == 3:
            return self._transition_collect_acks(state, process, coord, received)
        return self._transition_decide(state, coord, received)

    def _transition_select(
        self,
        state: LastVotingState,
        process: ProcessId,
        coord: ProcessId,
        received: Mapping[ProcessId, LastVotingMessage],
    ) -> LastVotingState:
        if process != coord:
            return state
        estimates = [
            (message.timestamp, message.x)
            for message in received.values()
            if message.kind == "estimate"
        ]
        if 2 * len(estimates) <= self.n:
            return state
        best_timestamp = max(timestamp for timestamp, _ in estimates)
        candidates = sorted(
            (x for timestamp, x in estimates if timestamp == best_timestamp),
            key=repr,
        )
        return replace(state, vote=candidates[0], commit=True)

    def _transition_adopt(
        self,
        state: LastVotingState,
        phase: int,
        coord: ProcessId,
        received: Mapping[ProcessId, LastVotingMessage],
    ) -> LastVotingState:
        message = received.get(coord)
        if message is not None and message.kind == "vote":
            return replace(state, x=message.vote, timestamp=phase)
        return state

    def _transition_collect_acks(
        self,
        state: LastVotingState,
        process: ProcessId,
        coord: ProcessId,
        received: Mapping[ProcessId, LastVotingMessage],
    ) -> LastVotingState:
        if process != coord:
            return state
        acks = sum(1 for message in received.values() if message.kind == "ack" and message.ack)
        if 2 * acks > self.n:
            return replace(state, ready=True)
        return state

    def _transition_decide(
        self,
        state: LastVotingState,
        coord: ProcessId,
        received: Mapping[ProcessId, LastVotingMessage],
    ) -> LastVotingState:
        decision = state.decision
        message = received.get(coord)
        if message is not None and message.kind == "decide" and decision is None:
            decision = message.vote
        # End of phase: the coordinator flags are reset.
        return replace(state, decision=decision, commit=False, ready=False)

    def decision(self, state: LastVotingState) -> Optional[Any]:
        return state.decision


__all__ = ["LastVoting", "LastVotingState", "LastVotingMessage"]
