"""The OneThirdRule consensus algorithm (Algorithm 1 of the paper).

OneThirdRule is a coordinator-free, one-message-per-round consensus
algorithm.  In every round each process broadcasts its current estimate
``x_p``; on reception it applies the transition function:

* if more than ``2n/3`` values were received, then

  - if all received values, except at most ``floor(n/3)`` of them, are equal
    to some value ``x``, adopt ``x``;
  - otherwise adopt the smallest received value;

  and, independently,

  - if more than ``2n/3`` of the received values are equal to some value
    ``x``, decide ``x``.

The algorithm never violates integrity or agreement under *any* heard-of
collection (Theorem 1 and the property-based tests); paired with ``P_otr``
it solves consensus for all of Pi, and paired with ``P_restr_otr`` it solves
consensus for the processes of Pi0 (Theorem 2).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, replace
from typing import Any, Mapping, Optional

from ..core.algorithm import ConsensusAlgorithm
from ..core.types import ProcessId, Round


@dataclass(frozen=True)
class OneThirdRuleState:
    """Process state of OneThirdRule: the current estimate and the decision."""

    x: Any
    decision: Optional[Any] = None


@dataclass(frozen=True)
class OneThirdRuleMessage:
    """Round message of OneThirdRule: just the sender's current estimate."""

    x: Any


class OneThirdRule(ConsensusAlgorithm[OneThirdRuleState, OneThirdRuleMessage]):
    """Algorithm 1: the OneThirdRule consensus algorithm.

    Initial values must be totally ordered (line 11 of the algorithm adopts
    the *smallest* received value); integers and strings both work.
    """

    name = "one-third-rule"

    def initial_state(self, process: ProcessId, initial_value: Any) -> OneThirdRuleState:
        return OneThirdRuleState(x=initial_value)

    def send(
        self, round: Round, process: ProcessId, state: OneThirdRuleState
    ) -> OneThirdRuleMessage:
        return OneThirdRuleMessage(x=state.x)

    def transition(
        self,
        round: Round,
        process: ProcessId,
        state: OneThirdRuleState,
        received: Mapping[ProcessId, OneThirdRuleMessage],
    ) -> OneThirdRuleState:
        n = self.n
        values = [message.x for message in received.values()]
        if len(values) * 3 <= 2 * n:
            # |HO(p, r)| <= 2n/3: the state is left unchanged.
            return state

        counts = Counter(values)
        new_x = state.x
        most_common_value, most_common_count = counts.most_common(1)[0]
        if len(values) - most_common_count <= n // 3:
            # All received values except at most floor(n/3) equal this value.
            new_x = most_common_value
        else:
            new_x = min(values)

        decision = state.decision
        if decision is None:
            for value, count in counts.items():
                if 3 * count > 2 * n:
                    decision = value
                    break

        if new_x == state.x and decision == state.decision:
            return state
        return replace(state, x=new_x, decision=decision)

    def decision(self, state: OneThirdRuleState) -> Optional[Any]:
        return state.decision


__all__ = ["OneThirdRule", "OneThirdRuleState", "OneThirdRuleMessage"]
