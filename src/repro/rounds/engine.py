"""The shared round engine: one send -> environment -> transition loop.

The paper's central object is the heard-of collection: every environment is
fully described by the ``HO(p, r)`` sets it produces.  Accordingly there is
exactly one way a round happens, regardless of the layer that drives it:

1. the process computes its round message with the sending function,
2. the *environment* decides which senders it hears of (the heard-of set),
3. the process applies its transition function to the received partial
   vector, and the outcome is recorded.

:class:`RoundEngine` owns that loop.  The *environment* step is abstracted
behind the :class:`RoundTransport` protocol with two implementations:

* :class:`OracleTransport` -- the heard-of set comes from a heard-of oracle
  (:mod:`repro.adversaries`); rounds execute in lockstep for all processes.
  This is the engine behind the slimmed-down
  :class:`~repro.core.machine.HOMachine`.
* :class:`StepTransport` -- the heard-of set emerges from messages actually
  delivered by the step-level system model; the predicate-implementation
  programs (:mod:`repro.predimpl`) deposit receptions as they take receive
  steps and ask the engine to finish rounds per process, at their own pace.

Both paths write the unified :class:`~repro.rounds.record.RoundRecord`
schema through a structural :class:`RoundTraceSink`, so the analysis layer
never needs to know which transport produced a trace.  In the hot path,
heard-of sets are integer bitmasks (:mod:`repro.rounds.bitmask`);
``frozenset`` only appears at API boundaries.

This module deliberately depends on nothing above :mod:`repro.rounds`: the
algorithm and the sinks are structural protocols, so the import direction is
strictly ``core / predimpl / sysmodel -> rounds``.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    MutableMapping,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from .bitmask import MaskMapping, full_mask, iter_bits, mask_of
from .record import ProcessId, Round, RoundRecord

#: Cap on distinct masks whose member tuples OracleTransport memoises.
#: Structured environments (partitions, crash complements, the full set)
#: produce a handful of distinct masks and stay far below it; noisy oracles
#: whose every mask is fresh fall back to building the tuple per query.
_BITS_CACHE_LIMIT = 4096


class RoundAlgorithm(Protocol):
    """The slice of :class:`repro.core.algorithm.HOAlgorithm` the engine uses."""

    @property
    def n(self) -> int: ...

    def send(self, round: Round, process: ProcessId, state: Any) -> Any: ...

    def transition(
        self, round: Round, process: ProcessId, state: Any, received: Mapping[ProcessId, Any]
    ) -> Any: ...

    def decision(self, state: Any) -> Optional[Any]: ...


@runtime_checkable
class RoundTraceSink(Protocol):
    """Where the engine writes unified per-round records and decisions.

    Implemented by :class:`repro.core.types.RunTrace` (round-level) and
    :class:`repro.sysmodel.trace.SystemRunTrace` (step-level).
    """

    def record_round_result(self, record: RoundRecord) -> None: ...

    def record_decision(
        self, process: ProcessId, value: Any, round: Round, time: float
    ) -> None: ...


@runtime_checkable
class RoundObserver(Protocol):
    """A hook fed every :class:`RoundRecord` the engine produces, as it is produced.

    Observers see records on *both* transport paths -- lockstep oracle
    rounds and per-process step-backed rounds -- right after the trace sink
    does, so online consumers (the streaming predicate monitors of
    :mod:`repro.predicates.monitors`) never need the recorded collection.
    An observer may additionally expose a boolean ``stop_requested``
    attribute; :attr:`RoundEngine.stop_requested` folds those into one
    early-stop signal that run loops poll between rounds.
    """

    def on_record(self, record: RoundRecord) -> None: ...


class RoundTransport(Protocol):
    """The environment of the round engine: who is heard of, with what payloads.

    ``round_view`` returns the heard-of mask and the received partial vector
    for one (round, process) pair.  *payloads* is the dense per-process
    payload sequence of lockstep execution; step-backed transports ignore it
    because delivered messages already carry their payloads.
    """

    def round_view(
        self, round: Round, process: ProcessId, payloads: Optional[Sequence[Any]]
    ) -> Tuple[int, Mapping[ProcessId, Any]]: ...


class OracleTransport:
    """Oracle-backed environment: ``HO(p, r)`` comes from a heard-of oracle.

    The oracle is any callable ``(round, process) -> iterable of processes``;
    oracles that implement the mask-native ``ho_mask(round, process)`` fast
    path (every oracle in :mod:`repro.adversaries`) skip set construction
    entirely.  Returned sets/masks are clamped to ``Pi``, so oracles may be
    sloppy about bounds.

    *view* selects the received-mapping representation handed to transition
    functions: ``"dict"`` materialises a plain dict (ascending process id),
    ``"mask"`` hands out a zero-copy :class:`~repro.rounds.bitmask.MaskMapping`
    view.  Both iterate identically; ``"mask"`` is faster for transition
    functions that only need cardinality or membership.
    """

    __slots__ = ("oracle", "n", "_full", "_mask_fn", "_lazy_views", "_bits_cache")

    def __init__(self, oracle: Any, n: int, view: str = "dict") -> None:
        if view not in ("dict", "mask"):
            raise ValueError(f"view must be 'dict' or 'mask', got {view!r}")
        self.oracle = oracle
        self.n = n
        self._full = full_mask(n)
        mask_fn = getattr(oracle, "ho_mask", None)
        self._mask_fn: Callable[[Round, ProcessId], int] = (
            mask_fn if callable(mask_fn) else self._mask_from_sets
        )
        self._lazy_views = view == "mask"
        #: mask -> tuple of member ids; environments reuse the same heard-of
        #: sets over and over (blocks, the full set, crash complements), so
        #: materialised views iterate a cached tuple at C speed instead of
        #: walking mask bits per (process, round).  Bounded: a noisy oracle
        #: producing a fresh mask per query must not accumulate O(rounds * n)
        #: tuples over a long run.
        self._bits_cache: Dict[int, Tuple[ProcessId, ...]] = {}

    def _mask_from_sets(self, round: Round, process: ProcessId) -> int:
        return mask_of(q for q in self.oracle(round, process) if 0 <= q < self.n)

    def round_view(
        self, round: Round, process: ProcessId, payloads: Optional[Sequence[Any]]
    ) -> Tuple[int, Mapping[ProcessId, Any]]:
        mask = self._mask_fn(round, process) & self._full
        if payloads is None:
            raise ValueError(
                "OracleTransport requires the lockstep payload sequence; "
                "per-process finish_rounds is a step-transport operation"
            )
        if self._lazy_views:
            return mask, MaskMapping(payloads, mask)
        bits = self._bits_cache.get(mask)
        if bits is None:
            bits = tuple(iter_bits(mask))
            if len(self._bits_cache) < _BITS_CACHE_LIMIT:
                self._bits_cache[mask] = bits
        return mask, {q: payloads[q] for q in bits}


class StepTransport:
    """Step-backed environment: heard-of sets emerge from delivered messages.

    Each process owns a mailbox of ``(round, sender) -> payload`` entries.
    The predicate-implementation program :meth:`deposit`\\ s a reception as
    soon as its receive step returns round evidence; when the program leaves
    a round, the engine pulls the round's view out of the mailbox and
    :meth:`advance` discards entries for finished rounds.  :meth:`reset`
    models a crash: the mailbox is volatile state.
    """

    __slots__ = ("n", "_mail")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(f"number of processes must be positive, got {n}")
        self.n = n
        self._mail: List[Dict[Tuple[Round, ProcessId], Any]] = [{} for _ in range(n)]

    def deposit(self, process: ProcessId, round: Round, sender: ProcessId, payload: Any) -> None:
        """Record that *process* obtained *sender*'s round-*round* payload."""
        self._mail[process][(round, sender)] = payload

    def round_view(
        self, round: Round, process: ProcessId, payloads: Optional[Sequence[Any]] = None
    ) -> Tuple[int, Mapping[ProcessId, Any]]:
        received = {
            sender: payload
            for (message_round, sender), payload in self._mail[process].items()
            if message_round == round
        }
        return mask_of(received), received

    def advance(self, process: ProcessId, next_round: Round) -> None:
        """Discard mailbox entries of rounds before *next_round* (they are finished)."""
        box = self._mail[process]
        self._mail[process] = {key: value for key, value in box.items() if key[0] >= next_round}

    def reset(self, process: ProcessId) -> None:
        """Clear the mailbox of *process* (volatile state lost in a crash)."""
        self._mail[process].clear()


class RoundEngine:
    """The unified round executor over one algorithm, transport and trace sink.

    Lockstep use (oracle transport)::

        engine = RoundEngine(algorithm, OracleTransport(oracle, n), trace)
        states = {p: algorithm.initial_state(p, value_p) for p in range(n)}
        engine.execute_round(1, states)   # mutates states, records the round

    Per-process use (step transport): the program calls
    :meth:`send_payload` at the top of each round, deposits receptions into
    the :class:`StepTransport` as they arrive, and calls
    :meth:`finish_rounds` when it leaves the round -- the engine applies the
    transition for the finished round, empty transitions for skipped rounds,
    records everything, and prunes the mailbox.
    """

    __slots__ = ("algorithm", "transport", "sink", "n", "observers")

    def __init__(
        self,
        algorithm: RoundAlgorithm,
        transport: RoundTransport,
        sink: Any,
        observers: Sequence[RoundObserver] = (),
    ) -> None:
        self.algorithm = algorithm
        self.transport = transport
        self.sink = sink
        self.n = algorithm.n
        self.observers: List[RoundObserver] = list(observers)

    def add_observer(self, observer: RoundObserver) -> None:
        """Attach *observer* to the record stream (fed after the trace sink)."""
        self.observers.append(observer)

    @property
    def stop_requested(self) -> bool:
        """Whether any observer requests an early stop (polled between rounds)."""
        return any(getattr(observer, "stop_requested", False) for observer in self.observers)

    # ------------------------------------------------------------------ #
    # lockstep execution (oracle-backed)
    # ------------------------------------------------------------------ #

    def execute_round(
        self, round: Round, states: MutableMapping[ProcessId, Any]
    ) -> MutableMapping[ProcessId, Any]:
        """Execute one full round for all processes, in lockstep.

        *states* maps each process to its current state and is updated in
        place.  Time is recorded as the round number (round-level runs have
        no finer clock).
        """
        algorithm = self.algorithm
        transport = self.transport
        sink = self.sink
        observers = self.observers
        n = self.n
        time = float(round)

        payloads = [algorithm.send(round, p, states[p]) for p in range(n)]
        sink.messages_sent += n * n

        delivered = 0
        for p in range(n):
            mask, received = transport.round_view(round, p, payloads)
            delivered += len(received)
            new_state = algorithm.transition(round, p, states[p], received)
            states[p] = new_state
            decision = algorithm.decision(new_state)
            record = RoundRecord(
                process=p,
                round=round,
                ho_mask=mask,
                state_after=new_state,
                decision=decision,
                sent_payload=payloads[p],
                time=time,
            )
            sink.record_round_result(record)
            for observer in observers:
                observer.on_record(record)
            if decision is not None:
                sink.record_decision(p, decision, round, time)
        sink.messages_delivered += delivered
        return states

    # ------------------------------------------------------------------ #
    # per-process execution (step-backed)
    # ------------------------------------------------------------------ #

    def send_payload(self, round: Round, process: ProcessId, state: Any) -> Any:
        """The sending function ``S_p^r``: the payload *process* broadcasts."""
        return self.algorithm.send(round, process, state)

    def finish_rounds(
        self,
        process: ProcessId,
        round: Round,
        next_round: Round,
        state: Any,
        time: float,
    ) -> Any:
        """Finish *round* for *process* and skip ahead to *next_round*.

        Applies ``T^round`` to the messages the transport collected, then
        ``T^{r'}`` with the empty view for every skipped round
        ``round < r' < next_round`` (a jump over rounds whose messages were
        never received), records every executed round through the sink, and
        prunes the transport mailbox.  Returns the new state.
        """
        mask, received = self.transport.round_view(round, process, None)
        state = self._apply(process, round, state, mask, received, time)
        for skipped in range(round + 1, next_round):
            state = self._apply(process, skipped, state, 0, {}, time)
        advance = getattr(self.transport, "advance", None)
        if advance is not None:
            advance(process, next_round)
        return state

    def _apply(
        self,
        process: ProcessId,
        round: Round,
        state: Any,
        mask: int,
        received: Mapping[ProcessId, Any],
        time: float,
    ) -> Any:
        new_state = self.algorithm.transition(round, process, state, received)
        decision = self.algorithm.decision(new_state)
        record = RoundRecord(
            process=process,
            round=round,
            ho_mask=mask,
            state_after=new_state,
            decision=decision,
            time=time,
        )
        self.sink.record_round_result(record)
        for observer in self.observers:
            observer.on_record(record)
        if decision is not None:
            self.sink.record_decision(process, decision, round, time)
        return new_state


__all__ = [
    "RoundAlgorithm",
    "RoundTraceSink",
    "RoundObserver",
    "RoundTransport",
    "OracleTransport",
    "StepTransport",
    "RoundEngine",
]
