"""The unified per-round record schema shared by every execution layer.

Whether a round was executed by the lockstep round engine (the HO machine)
or pieced together from steps by a predicate-implementation program, what
happened in it is the same shape: *this process*, in *this round*, heard of
*these senders*, transitioned to *this state*, and possibly decided.  Both
trace classes (:class:`repro.core.types.RunTrace` and
:class:`repro.sysmodel.trace.SystemRunTrace`) store :class:`RoundRecord`
instances, so the analysis layer (:mod:`repro.analysis`) consumes one schema
regardless of which layer produced the trace.

The heard-of set is stored as an integer bitmask (:mod:`.bitmask`); the
``ho_set`` property converts to ``frozenset`` at the API boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Optional

from .bitmask import mask_of, mask_to_frozenset

#: A process identifier (processes are numbered ``0 .. n-1``).
ProcessId = int

#: A round number (rounds start at 1).
Round = int


class RoundRecord:
    """Everything recorded about one process in one round of a run.

    *time* is the (normalised) time at which the transition ran: simulated
    time for step-level runs, the round number for lockstep round-level runs.
    The heard-of set may be given either as an iterable of process ids
    (*ho_set*, the API-boundary form) or directly as a bitmask (*ho_mask*,
    the hot-path form).
    """

    __slots__ = (
        "process",
        "round",
        "ho_mask",
        "state_after",
        "decision",
        "sent_payload",
        "time",
    )

    def __init__(
        self,
        process: ProcessId,
        round: Round,
        ho_set: Optional[Iterable[ProcessId]] = None,
        state_after: Any = None,
        decision: Optional[Any] = None,
        sent_payload: Any = None,
        time: Optional[float] = None,
        *,
        ho_mask: Optional[int] = None,
    ) -> None:
        if ho_mask is None:
            ho_mask = 0 if ho_set is None else mask_of(ho_set)
        self.process = process
        self.round = round
        self.ho_mask = ho_mask
        self.state_after = state_after
        self.decision = decision
        self.sent_payload = sent_payload
        self.time = time

    @property
    def ho_set(self) -> FrozenSet[ProcessId]:
        """The heard-of set as a ``frozenset`` (the API-boundary view)."""
        return mask_to_frozenset(self.ho_mask)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundRecord):
            return NotImplemented
        return (
            self.process == other.process
            and self.round == other.round
            and self.ho_mask == other.ho_mask
            and self.state_after == other.state_after
            and self.decision == other.decision
            and self.sent_payload == other.sent_payload
            and self.time == other.time
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RoundRecord(p={self.process}, r={self.round}, ho={sorted(self.ho_set)}, "
            f"decision={self.decision!r})"
        )


@dataclass(frozen=True)
class DecisionRecord:
    """A first decision of the upper-layer algorithm: value, round and time."""

    process: ProcessId
    value: Any
    round: Round
    time: float


__all__ = ["RoundRecord", "DecisionRecord", "ProcessId", "Round"]
