"""The shared round-execution core.

One :class:`RoundEngine` owns the send -> environment -> transition loop for
every layer of the reproduction; the environment is a :class:`RoundTransport`
(oracle-backed for the lockstep HO machine, step-backed for the
predicate-implementation programs), and every executed round is recorded
under the unified :class:`RoundRecord` schema.  Heard-of sets travel as
integer bitmasks in the hot path (:mod:`repro.rounds.bitmask`).

This package sits *below* :mod:`repro.core`: it depends only on the standard
library, so every layer above can share it without import cycles.
"""

from .backend import (
    AUTO_BACKEND,
    ExecutionBackend,
    MonitorSpec,
    ReplicaBatch,
    ReplicaOutcome,
    ReplicaTask,
    ScalarBackend,
    backend_names,
    get_backend,
    register_backend,
)
from .fallback import FallbackReason
from .bitmask import (
    WORD_BITS,
    MaskMapping,
    bit_count,
    full_mask,
    iter_bits,
    mask_contains,
    mask_issubset,
    mask_of,
    mask_to_frozenset,
    mask_to_words,
    word_count,
    words_to_mask,
)
from .engine import (
    OracleTransport,
    RoundAlgorithm,
    RoundEngine,
    RoundObserver,
    RoundTraceSink,
    RoundTransport,
    StepTransport,
)
from .record import DecisionRecord, RoundRecord

__all__ = [
    # bitmask helpers
    "bit_count",
    "full_mask",
    "mask_of",
    "mask_to_frozenset",
    "iter_bits",
    "mask_contains",
    "mask_issubset",
    "WORD_BITS",
    "word_count",
    "mask_to_words",
    "words_to_mask",
    "MaskMapping",
    # execution backends
    "AUTO_BACKEND",
    "ExecutionBackend",
    "ScalarBackend",
    "MonitorSpec",
    "ReplicaTask",
    "ReplicaBatch",
    "ReplicaOutcome",
    "register_backend",
    "backend_names",
    "get_backend",
    "FallbackReason",
    # unified record schema
    "RoundRecord",
    "DecisionRecord",
    # engine
    "RoundEngine",
    "RoundTransport",
    "OracleTransport",
    "StepTransport",
    "RoundAlgorithm",
    "RoundTraceSink",
    "RoundObserver",
]
