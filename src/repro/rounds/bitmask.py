"""Integer bitmasks over process sets: the hot-path representation of HO sets.

A heard-of set over processes ``0 .. n-1`` is represented as an ``int`` in
which bit ``p`` is set iff process ``p`` is a member.  Set algebra becomes
word-wide integer arithmetic (``&``, ``|``, ``==``), membership a shift, and
cardinality a popcount -- no per-round ``frozenset`` churn in large-``n``
sweeps.  ``frozenset`` remains the representation at API boundaries
(:meth:`repro.core.types.HOCollection.ho`, record ``ho_set`` properties);
these helpers convert between the two.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, FrozenSet, Iterable, Iterator, Sequence, Tuple

try:  # Python >= 3.10
    _POPCOUNT = int.bit_count

    def bit_count(mask: int) -> int:
        """The number of set bits in *mask* (the cardinality of the set)."""
        return _POPCOUNT(mask)

except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def bit_count(mask: int) -> int:
        """The number of set bits in *mask* (the cardinality of the set)."""
        return bin(mask).count("1")


def full_mask(n: int) -> int:
    """The mask of the full process set ``Pi = {0, ..., n-1}``."""
    return (1 << n) - 1


def mask_of(processes: Iterable[int]) -> int:
    """The mask of an iterable of process ids (ids must be non-negative)."""
    mask = 0
    for p in processes:
        mask |= 1 << p
    return mask


def mask_to_frozenset(mask: int) -> FrozenSet[int]:
    """The ``frozenset`` of process ids encoded by *mask*."""
    return frozenset(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set bit positions of *mask*, in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_contains(mask: int, process: int) -> bool:
    """Whether bit *process* is set in *mask*."""
    return (mask >> process) & 1 == 1


def mask_issubset(inner: int, outer: int) -> bool:
    """Whether every member of *inner* is a member of *outer*."""
    return inner & ~outer == 0


# --------------------------------------------------------------------------- #
# uint64 word spill: the boundary between Python int masks and array backends
# --------------------------------------------------------------------------- #

#: Bits per mask word in the array representation used by the batch backends
#: (:mod:`repro.batch`): heard-of sets travel as ``ceil(n / 64)`` uint64 words
#: per process, so word ``w`` holds processes ``64*w .. 64*w + 63``.
WORD_BITS = 64

_WORD_MASK = (1 << WORD_BITS) - 1


def word_count(n: int) -> int:
    """How many uint64 words an *n*-process mask spills into (``ceil(n/64)``)."""
    if n <= 0:
        raise ValueError(f"number of processes must be positive, got {n}")
    return (n + WORD_BITS - 1) // WORD_BITS


def mask_to_words(mask: int, n: int) -> Tuple[int, ...]:
    """Spill an arbitrary-width Python int mask into ``word_count(n)`` uint64 words.

    Word ``w`` holds bits ``64*w .. 64*w + 63`` of *mask* (little-endian word
    order), matching the ``(R, ceil(n/64))`` layout of the batch mask arrays.
    Bits at or above *n* must be clear -- the batch boundary never smuggles
    out-of-range processes.
    """
    if mask < 0:
        raise ValueError(f"mask must be non-negative, got {mask}")
    if mask >> n:
        raise ValueError(f"mask {bin(mask)} has bits set at or above n={n}")
    return tuple(
        (mask >> (WORD_BITS * w)) & _WORD_MASK for w in range(word_count(n))
    )


def words_to_mask(words: Iterable[int]) -> int:
    """Reassemble a Python int mask from its little-endian uint64 word spill."""
    mask = 0
    for w, word in enumerate(words):
        if not 0 <= word <= _WORD_MASK:
            raise ValueError(f"word {w} out of uint64 range: {word}")
        mask |= int(word) << (WORD_BITS * w)
    return mask


class MaskMapping(Mapping):
    """A read-only ``{process: payload}`` view selected by a bitmask.

    Wraps the dense per-round payload sequence (indexed by process id) and a
    heard-of mask; ``len`` is a popcount and construction is O(1), so the
    round engine can hand transition functions their received-message view
    without materialising a dict per (process, round).  Iteration order is
    ascending process id, matching the dict the engine would otherwise build.
    """

    __slots__ = ("_payloads", "_mask")

    def __init__(self, payloads: Sequence[Any], mask: int) -> None:
        self._payloads = payloads
        self._mask = mask

    @property
    def mask(self) -> int:
        return self._mask

    def __getitem__(self, process: int) -> Any:
        if not isinstance(process, int) or process < 0 or not mask_contains(self._mask, process):
            raise KeyError(process)
        return self._payloads[process]

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self._mask)

    def __len__(self) -> int:
        return bit_count(self._mask)

    def __contains__(self, process: object) -> bool:
        return isinstance(process, int) and process >= 0 and mask_contains(self._mask, process)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MaskMapping({dict(self)!r})"


__all__ = [
    "bit_count",
    "full_mask",
    "mask_of",
    "mask_to_frozenset",
    "iter_bits",
    "mask_contains",
    "mask_issubset",
    "WORD_BITS",
    "word_count",
    "mask_to_words",
    "words_to_mask",
    "MaskMapping",
]
