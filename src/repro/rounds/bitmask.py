"""Integer bitmasks over process sets: the hot-path representation of HO sets.

A heard-of set over processes ``0 .. n-1`` is represented as an ``int`` in
which bit ``p`` is set iff process ``p`` is a member.  Set algebra becomes
word-wide integer arithmetic (``&``, ``|``, ``==``), membership a shift, and
cardinality a popcount -- no per-round ``frozenset`` churn in large-``n``
sweeps.  ``frozenset`` remains the representation at API boundaries
(:meth:`repro.core.types.HOCollection.ho`, record ``ho_set`` properties);
these helpers convert between the two.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, FrozenSet, Iterable, Iterator, Sequence

try:  # Python >= 3.10
    _POPCOUNT = int.bit_count

    def bit_count(mask: int) -> int:
        """The number of set bits in *mask* (the cardinality of the set)."""
        return _POPCOUNT(mask)

except AttributeError:  # pragma: no cover - Python 3.9 fallback

    def bit_count(mask: int) -> int:
        """The number of set bits in *mask* (the cardinality of the set)."""
        return bin(mask).count("1")


def full_mask(n: int) -> int:
    """The mask of the full process set ``Pi = {0, ..., n-1}``."""
    return (1 << n) - 1


def mask_of(processes: Iterable[int]) -> int:
    """The mask of an iterable of process ids (ids must be non-negative)."""
    mask = 0
    for p in processes:
        mask |= 1 << p
    return mask


def mask_to_frozenset(mask: int) -> FrozenSet[int]:
    """The ``frozenset`` of process ids encoded by *mask*."""
    return frozenset(iter_bits(mask))


def iter_bits(mask: int) -> Iterator[int]:
    """Iterate over the set bit positions of *mask*, in ascending order."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def mask_contains(mask: int, process: int) -> bool:
    """Whether bit *process* is set in *mask*."""
    return (mask >> process) & 1 == 1


def mask_issubset(inner: int, outer: int) -> bool:
    """Whether every member of *inner* is a member of *outer*."""
    return inner & ~outer == 0


class MaskMapping(Mapping):
    """A read-only ``{process: payload}`` view selected by a bitmask.

    Wraps the dense per-round payload sequence (indexed by process id) and a
    heard-of mask; ``len`` is a popcount and construction is O(1), so the
    round engine can hand transition functions their received-message view
    without materialising a dict per (process, round).  Iteration order is
    ascending process id, matching the dict the engine would otherwise build.
    """

    __slots__ = ("_payloads", "_mask")

    def __init__(self, payloads: Sequence[Any], mask: int) -> None:
        self._payloads = payloads
        self._mask = mask

    @property
    def mask(self) -> int:
        return self._mask

    def __getitem__(self, process: int) -> Any:
        if not isinstance(process, int) or process < 0 or not mask_contains(self._mask, process):
            raise KeyError(process)
        return self._payloads[process]

    def __iter__(self) -> Iterator[int]:
        return iter_bits(self._mask)

    def __len__(self) -> int:
        return bit_count(self._mask)

    def __contains__(self, process: object) -> bool:
        return isinstance(process, int) and process >= 0 and mask_contains(self._mask, process)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"MaskMapping({dict(self)!r})"


__all__ = [
    "bit_count",
    "full_mask",
    "mask_of",
    "mask_to_frozenset",
    "iter_bits",
    "mask_contains",
    "mask_issubset",
    "MaskMapping",
]
