"""Pluggable execution backends for oracle-driven replica batches.

Every measurement the paper makes (Table 1, Section 4.2, the 2f+3
translation bound) is a statement about a *distribution over runs*: the same
heard-of-oracle scenario, executed under R seeds, then aggregated.  An
:class:`ExecutionBackend` owns exactly that unit of work -- a
:class:`ReplicaBatch` of R seeded replicas of one lockstep scenario -- and
returns one :class:`ReplicaOutcome` per replica.

Three backends ship:

* ``scalar`` -- :class:`ScalarBackend`, defined here: the reference
  implementation, looping the replicas one by one through the ordinary
  :class:`~repro.rounds.engine.RoundEngine` /
  :class:`~repro.rounds.engine.OracleTransport` path.  Every other backend
  is specified by bit-identity against it.
* ``batch`` -- :class:`repro.batch.backends.BatchBackend`: runs all R
  replicas in lockstep with per-process estimates as ``(R, n)`` numpy
  arrays and heard-of sets as ``(R, ceil(n/64))`` uint64 mask arrays,
  falling back to the scalar loop per cell whenever vectorisation cannot
  engage (no numpy, no batched kernel for the algorithm, unencodable
  values).
* ``super`` -- :class:`repro.batch.super.SuperBatchBackend`: packs *many*
  heterogeneous batches (different n, horizons, fault models) into one
  padded row space and steps the whole grid in a single lockstep loop,
  retiring rows as replicas decide; ineligible cells (monitored,
  fingerprinted, unencodable) take the per-cell batch path instead.

The *contract* between backends is replica determinism: for every seed in
the batch, a backend must produce exactly the decisions, decision rounds,
predicate reports and round fingerprints the scalar reference produces for
the single run with that seed.  Fingerprints (:class:`ReplicaFingerprint`)
exist so tests can pin that contract round by round, not just on final
decisions; they are opt-in because computing them costs per-round Python
work that the batch hot path otherwise avoids.

This module deliberately depends on nothing above :mod:`repro.rounds`: the
algorithm, oracle and monitor are structural, and the registry resolves the
``batch`` backend by a lazy import so the import direction stays
``batch -> rounds``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from .bitmask import full_mask, iter_bits
from .engine import OracleTransport, RoundAlgorithm, RoundEngine
from .record import ProcessId, Round, RoundRecord

#: The backend name meaning "the fastest backend that keeps the contract":
#: resolves to ``compiled`` when numba is importable, else ``batch`` (each
#: tier degrades to the one below it per cell when it cannot engage, so the
#: outcomes are identical at every resolution).
AUTO_BACKEND = "auto"


@dataclass(frozen=True)
class ReplicaTask:
    """One replica of a batch: a fully built lockstep run for one seed.

    *algorithm* and *oracle* must be freshly constructed per replica (they
    may be stateful); building them from the seed is the caller's job, which
    keeps the backend layer free of scenario knowledge.
    """

    seed: int
    algorithm: RoundAlgorithm
    oracle: Any
    initial_values: Sequence[Any]


@dataclass(frozen=True)
class MonitorSpec:
    """A declarative description of the predicate monitors a batch wants.

    The scalar backend runs monitors through the structural
    ``monitor_factory`` observer; vectorised backends cannot introspect an
    arbitrary observer, so callers that want vectorised monitoring also
    attach this data-only spec (predicate names as accepted by
    :func:`repro.predicates.build_monitor`, the Pi0 scope as a bitmask, and
    the optional stop-after-held policy).  A batch carrying a factory but no
    spec simply runs on the scalar loop.
    """

    predicates: Tuple[str, ...]
    pi0_mask: Optional[int] = None
    stop_after_held: Optional[int] = None


@dataclass
class ReplicaBatch:
    """R seeded replicas of one oracle-driven scenario, as one unit of work.

    *scope_mask* is the set of processes whose decisions end a replica
    (``None`` means all of Pi); *run_full_horizon* keeps executing rounds
    after the scope decided (monitored runs measuring first-hold rounds).
    *monitor_factory* builds one fresh observer per replica -- anything with
    an ``on_record(record)`` hook, a ``stop_requested`` flag and a
    ``reports_json()`` method (a :class:`repro.predicates.MonitorBank`
    fits); the batch backend pairs it with its vectorised monitor kernels
    instead of calling it per record.
    """

    n: int
    tasks: List[ReplicaTask]
    max_rounds: int
    scope_mask: Optional[int] = None
    run_full_horizon: bool = False
    monitor_factory: Optional[Callable[[], Any]] = None
    monitor_spec: Optional[MonitorSpec] = None
    fingerprints: bool = False

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError(f"number of processes must be positive, got {self.n}")
        if self.max_rounds <= 0:
            raise ValueError(f"max_rounds must be positive, got {self.max_rounds}")
        if not self.tasks:
            raise ValueError("a replica batch needs at least one task")

    @property
    def replicas(self) -> int:
        return len(self.tasks)

    @property
    def effective_scope_mask(self) -> int:
        return full_mask(self.n) if self.scope_mask is None else self.scope_mask


@dataclass(frozen=True)
class ReplicaOutcome:
    """What one replica produced: the trace-free summary of its run."""

    seed: int
    decisions: Dict[ProcessId, Any]
    decision_rounds: Dict[ProcessId, Round]
    rounds_executed: int
    messages_sent: int
    messages_delivered: int
    stopped_early: bool = False
    predicate_reports: Optional[Dict[str, Dict[str, Any]]] = None
    fingerprint: Optional[str] = None

    def first_decision_round(self) -> Optional[Round]:
        return min(self.decision_rounds.values()) if self.decision_rounds else None

    def last_decision_round(self) -> Optional[Round]:
        return max(self.decision_rounds.values()) if self.decision_rounds else None


@dataclass(frozen=True)
class CellPlan:
    """One sweep cell prepared for execution, decoupled from *who* executes it.

    A scenario's batch *builder* returns the fully built
    :class:`ReplicaBatch` plus the ``finalize`` callable that flattens the
    backend's outcomes into the scenario's wire records.  The per-cell path
    runs ``finalize(get_backend(name).run(batch))``; the super-batch path
    collects many plans, hands all their batches to
    :meth:`repro.batch.super.SuperBatchBackend.run_batches` in one call,
    and finalizes each cell from the grid-wide result.
    """

    batch: ReplicaBatch
    finalize: Callable[[List[ReplicaOutcome]], Any]


@runtime_checkable
class ExecutionBackend(Protocol):
    """A strategy for executing a :class:`ReplicaBatch`.

    ``run`` returns one outcome per task, in task order.  Backends must be
    bit-identical to :class:`ScalarBackend` per seed: decisions, decision
    rounds, predicate reports and (when enabled) round fingerprints.
    """

    name: str

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]: ...


class ReplicaFingerprint:
    """A streaming digest of one replica's rounds, identical across backends.

    Per executed round the digest consumes the heard-of masks, the
    post-transition estimates (``repr`` of each state's ``x`` attribute --
    every shipped algorithm exposes one) and the decisions that fired; the
    final digest also covers the decision table and message accounting.  Any
    divergence between two backends therefore shows up as a fingerprint
    mismatch in the round where it happened.
    """

    __slots__ = ("_hash",)

    def __init__(self) -> None:
        self._hash = hashlib.sha256()

    def observe_round(
        self,
        round: Round,
        masks: Sequence[int],
        estimates: Sequence[str],
        newly_decided: Sequence[Tuple[ProcessId, str]],
    ) -> None:
        payload = (round, tuple(masks), tuple(estimates), tuple(newly_decided))
        self._hash.update(repr(payload).encode("utf-8"))

    def finish(self, outcome_fields: Tuple[Any, ...]) -> str:
        self._hash.update(repr(outcome_fields).encode("utf-8"))
        return self._hash.hexdigest()


def finish_fingerprint(
    fingerprint: Optional[ReplicaFingerprint],
    decisions: Dict[ProcessId, Any],
    decision_rounds: Dict[ProcessId, Round],
    rounds_executed: int,
    messages_sent: int,
    messages_delivered: int,
) -> Optional[str]:
    """Close a fingerprint over the outcome summary (shared by all backends)."""
    if fingerprint is None:
        return None
    return fingerprint.finish(
        (
            tuple(sorted((p, repr(v)) for p, v in decisions.items())),
            tuple(sorted(decision_rounds.items())),
            rounds_executed,
            messages_sent,
            messages_delivered,
        )
    )


class _TallySink:
    """The minimal trace sink of the scalar reference loop.

    Buffers the records of the current round (for decisions, estimates and
    fingerprints) instead of accumulating a full trace: backends return
    trace-free outcomes.
    """

    __slots__ = ("messages_sent", "messages_delivered", "round_records")

    def __init__(self) -> None:
        self.messages_sent = 0
        self.messages_delivered = 0
        self.round_records: List[RoundRecord] = []

    def record_round_result(self, record: RoundRecord) -> None:
        self.round_records.append(record)

    def record_decision(
        self, process: ProcessId, value: Any, round: Round, time: float
    ) -> None:  # decisions are read off the buffered records
        pass


class ScalarBackend:
    """The reference backend: replicas loop one by one through the RoundEngine.

    This is exactly the lockstep path every scalar scenario takes
    (:class:`~repro.core.machine.HOMachine` is the same engine with a full
    trace sink), re-expressed over :class:`ReplicaBatch`: run rounds until
    every process in scope decided (or the horizon / an observer stop), with
    each replica's oracle and rng untouched by its siblings.
    """

    name = "scalar"

    def run(self, batch: ReplicaBatch) -> List[ReplicaOutcome]:
        return [self._run_replica(batch, task) for task in batch.tasks]

    def _run_replica(self, batch: ReplicaBatch, task: ReplicaTask) -> ReplicaOutcome:
        n = batch.n
        algorithm = task.algorithm
        if algorithm.n != n:
            raise ValueError(f"algorithm is sized for n={algorithm.n}, batch has n={n}")
        scope = tuple(iter_bits(batch.effective_scope_mask))
        sink = _TallySink()
        monitor = batch.monitor_factory() if batch.monitor_factory is not None else None
        observers = (monitor,) if monitor is not None else ()
        engine = RoundEngine(algorithm, OracleTransport(task.oracle, n), sink, observers)
        states: Dict[ProcessId, Any] = {
            p: algorithm.initial_state(p, task.initial_values[p]) for p in range(n)
        }
        fingerprint = ReplicaFingerprint() if batch.fingerprints else None
        decisions: Dict[ProcessId, Any] = {}
        decision_rounds: Dict[ProcessId, Round] = {}

        round = 0
        while round < batch.max_rounds:
            if engine.stop_requested:
                break
            if not batch.run_full_horizon and all(p in decisions for p in scope):
                break
            round += 1
            sink.round_records.clear()
            engine.execute_round(round, states)
            newly_decided: List[Tuple[ProcessId, str]] = []
            for record in sink.round_records:
                if record.decision is not None and record.process not in decisions:
                    decisions[record.process] = record.decision
                    decision_rounds[record.process] = round
                    newly_decided.append((record.process, repr(record.decision)))
            if fingerprint is not None:
                fingerprint.observe_round(
                    round,
                    [record.ho_mask for record in sink.round_records],
                    [repr(getattr(record.state_after, "x", None)) for record in sink.round_records],
                    newly_decided,
                )

        stopped_early = bool(getattr(monitor, "stop_requested", False))
        reports = monitor.reports_json() if monitor is not None else None
        return ReplicaOutcome(
            seed=task.seed,
            decisions=decisions,
            decision_rounds=decision_rounds,
            rounds_executed=round,
            messages_sent=sink.messages_sent,
            messages_delivered=sink.messages_delivered,
            stopped_early=stopped_early,
            predicate_reports=reports,
            fingerprint=finish_fingerprint(
                fingerprint,
                decisions,
                decision_rounds,
                round,
                sink.messages_sent,
                sink.messages_delivered,
            ),
        )


# --------------------------------------------------------------------------- #
# the backend registry
# --------------------------------------------------------------------------- #

_BACKENDS: Dict[str, ExecutionBackend] = {}


def register_backend(backend: ExecutionBackend) -> ExecutionBackend:
    """Register *backend* under its ``name`` (later registrations win)."""
    _BACKENDS[backend.name] = backend
    return backend


def backend_names() -> List[str]:
    """The registered backend names plus the ``auto`` alias."""
    _ensure_populated()
    return sorted(_BACKENDS) + [AUTO_BACKEND]


def get_backend(name: str) -> ExecutionBackend:
    """Resolve a backend by name.

    ``auto`` means the fastest tier that can engage in this process: the
    ``compiled`` backend when numba is importable, else ``batch`` -- both
    degrade per cell down the tier ladder with identical outcomes.  The
    ``batch`` and ``compiled`` backends register themselves when their
    packages are imported; resolution triggers those imports lazily so
    that ``repro.rounds`` itself never depends upward.
    """
    _ensure_populated()
    if name == AUTO_BACKEND:
        from .._optional import have_numba

        key = "compiled" if have_numba() else "batch"
    else:
        key = name
    try:
        return _BACKENDS[key]
    except KeyError:
        raise KeyError(
            f"unknown execution backend {name!r}; known: {backend_names()}"
        ) from None


def _ensure_populated() -> None:
    if "batch" not in _BACKENDS:
        import repro.batch  # noqa: F401  (registers the batch backend)
    if "step-scalar" not in _BACKENDS:
        # Registers the step-path backends (and the translation kernel via
        # the package __init__); lazy for the same reason as repro.batch.
        import repro.predimpl.step_backend  # noqa: F401
    if "compiled" not in _BACKENDS:
        # Registers the compiled tier (which degrades to batch without
        # numba); lazy for the same reason as repro.batch.
        import repro.compiled  # noqa: F401


register_backend(ScalarBackend())


__all__ = [
    "AUTO_BACKEND",
    "CellPlan",
    "MonitorSpec",
    "ReplicaTask",
    "ReplicaBatch",
    "ReplicaOutcome",
    "ReplicaFingerprint",
    "finish_fingerprint",
    "ExecutionBackend",
    "ScalarBackend",
    "register_backend",
    "backend_names",
    "get_backend",
]
