"""The closed vocabulary of backend fallback reasons.

Every execution backend that can decline to vectorise a cell records *why*
in ``last_fallback_reason`` (and the super backend per cell in
``last_fallback_reasons``); the sweep executor stamps the reason into the
wire record's backend label (``"super:cell-fallback (<reason>)"``), tests
pin it, and the benchmark harness reports it.  Scattering the strings over
the backends made the vocabulary drift-prone and impossible to audit, so
they live here as one :class:`FallbackReason` enum: each member's value is
the message template, :meth:`FallbackReason.render` formats it, and the
``repro.lint`` parity rule REP104 statically rejects raw string literals in
the backends' fallback decisions.

This module sits in :mod:`repro.rounds` (below every backend) and depends
only on the standard library, so the batch, super and step backends -- and
:mod:`repro.algorithms.batched`, whose :class:`BatchUnsupported` messages
become fallback reasons verbatim -- can all share it without cycles.
"""

from __future__ import annotations

from enum import Enum


class FallbackReason(Enum):
    """Why a backend declined its vectorised path for a cell.

    Members' values are ``str.format`` templates; call :meth:`render` with
    the template's keyword arguments to produce the recorded reason string.
    The wording is part of the observable contract (wire-record backend
    labels, pinned tests), so change it deliberately.
    """

    # -- shared by every decision layer ------------------------------- #
    FORCED = "forced"
    NO_NUMPY = "numpy unavailable (install the 'fast' extra)"

    # -- the per-cell batch backend (repro.batch.backends) ------------- #
    SIZE_MISMATCH = "algorithm size does not match the batch"
    MIXED_ALGORITHMS = "mixed algorithm classes: {classes}"
    NO_BATCH_KERNEL = "no batched kernel for {algorithm}"
    OPAQUE_MONITOR = "opaque monitor factory without a MonitorSpec"

    # -- value encoding (repro.algorithms.batched.encode_values) ------- #
    UNENCODABLE_VALUES = "initial values are not encodable: {error}"
    VALUE_REPR_COLLISION = (
        "values {kept!r} and {value!r} compare equal but differ "
        "in repr; the code table cannot represent both"
    )

    # -- the super-batch backend (repro.batch.super) ------------------- #
    NOT_SUPER_BATCHABLE = "{kernel} does not super-batch (per-cell row space only)"
    MONITORED_PER_CELL = "monitored runs take the per-cell batch path"
    FINGERPRINTED_PER_CELL = "fingerprinted runs take the per-cell batch path"

    # -- the compiled backend (repro.compiled.backend) ------------------ #
    NO_NUMBA = "numba unavailable (install the 'compiled' extra)"
    NO_COMPILED_KERNEL = "no compiled dual for {kernel}"
    OPAQUE_COMPILED_ORACLE = (
        "oracle needs the per-replica query loop; the fused round loop "
        "cannot precompute its masks"
    )
    MONITORED_COMPILED_CELL = "monitored runs take the numpy batch path"
    FINGERPRINTED_COMPILED_CELL = "fingerprinted runs take the numpy batch path"

    # -- the step backend (repro.predimpl.step_backend) ---------------- #
    MIXED_STEP_ENVIRONMENTS = "replicas disagree on the step environment"
    ARBITRARY_GOOD_STACK = (
        "the arbitrary-good stack does not vectorise "
        "(INIT/round wire protocol; event-granular timing)"
    )
    FAULTED_STEP_CELL = (
        "fault model {fault_model!r} breaks lockstep "
        "(down processes and bad-period timing are event-granular)"
    )
    MONITORED_STEP_PATH = "monitored step runs take the scalar step path"

    def render(self, **context: object) -> str:
        """The recorded reason string: the member's template, formatted."""
        return self.value.format(**context)


__all__ = ["FallbackReason"]
