"""The ``ho-classic-*`` scenarios: the oracle-driven hot path, batchable per cell.

These scenarios exist for exactly the experiment shape the paper measures:
one algorithm, one classic fault model, R seeds, aggregate.  Each run is a
pure lockstep round-level execution (no step-level simulator), so a sweep
cell of R seeds can be executed either as R independent scalar runs or as
*one* vectorised replica batch -- and the two must agree bit for bit.

Three scenarios are registered, one per consensus algorithm:

* ``ho-classic-otr`` -- OneThirdRule,
* ``ho-classic-uv``  -- UniformVoting,
* ``ho-classic-lv``  -- LastVoting,

each crossed with the standard fault-model axis, expressed purely with the
classic oracle zoo:

* ``fault-free``     -- :class:`FaultFreeOracle`;
* ``crash-stop``     -- :class:`StaticCrashOracle` silencing the last
  process from round 3 (replica-invariant: broadcast across the batch);
* ``crash-recovery`` -- a :class:`SequenceOracle` partition schedule:
  fault-free rounds, a transient crash window of the last process, then
  fault-free again (still replica-invariant);
* ``lossy``          -- :class:`RandomOmissionOracle` (seeded, stateful:
  the batch backend engages its automatic per-replica fallback loop for
  the environment while the transitions stay vectorised).

Replicas differ even under the deterministic fault models because every
seed shuffles the initial-value assignment through the run's
``values`` :class:`~repro.engine.rng.SeededRng` sub-stream -- the
round-level analogue of drawing a workload per seed.

``run_classic`` is the scalar reference (an ordinary
:class:`~repro.core.machine.HOMachine` run); ``run_classic_batch`` is the
registered batch runner the sweep executor calls for ``replicas=`` cells.
The equivalence tests pin them against each other per seed.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..adversaries import (
    FaultFreeOracle,
    HOOracleBase,
    RandomOmissionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from ..algorithms import LastVoting, OneThirdRule, UniformVoting
from ..analysis.consensus_check import check_consensus
from ..analysis.metrics import metrics_from_trace
from ..core.machine import HOMachine
from ..engine.rng import SeededRng
from ..predicates import MonitorBank, build_monitor_bank
from ..rounds.backend import (
    CellPlan,
    MonitorSpec,
    ReplicaBatch,
    ReplicaTask,
    get_backend,
)
from ..rounds.bitmask import mask_of
from ..runner.registry import REGISTRY
from .scenarios import FAULT_MODELS, ScenarioResult, _initial_values, _scope_for

#: algorithm key -> class, as accepted by the scenarios' ``algorithm`` param.
CLASSIC_ALGORITHMS = {
    "otr": OneThirdRule,
    "uv": UniformVoting,
    "lv": LastVoting,
}

#: round the crash-stop fault model silences the last process from.
CRASH_ROUND = 3


def _classic_values(n: int, rng: SeededRng, shuffle_values: bool) -> List[int]:
    """The run's initial values: the standard ladder, seed-shuffled.

    The shuffle draws from the ``values`` sub-stream, so it never perturbs
    oracle noise -- and replica i of a batch shuffles exactly like the
    single run with seed ``seed + i`` (see :meth:`SeededRng.replicate`).
    """
    values = _initial_values(n)
    if shuffle_values:
        rng.stream("values").shuffle(values)
    return values


def _classic_oracle(
    fault_model: str,
    n: int,
    rng: SeededRng,
    rounds: int,
    loss_probability: float,
) -> HOOracleBase:
    if fault_model == "fault-free":
        return FaultFreeOracle(n)
    if fault_model == "crash-stop":
        return StaticCrashOracle(n, {n - 1: CRASH_ROUND})
    if fault_model == "crash-recovery":
        # A deterministic partition schedule: the last process is down for a
        # window of the first half of the horizon, then comes back.
        down_from = max(2, rounds // 6)
        down_length = max(1, rounds // 6)
        return SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), down_from - 1),
                (StaticCrashOracle(n, {n - 1: 1}), down_length),
                (FaultFreeOracle(n), None),
            ],
        )
    if fault_model == "lossy":
        return RandomOmissionOracle(n, loss_probability, rng=rng)
    raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")


def run_classic(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    algorithm: str = "otr",
    rounds: int = 60,
    loss_probability: float = 0.2,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
    keep_trace: bool = False,
) -> ScenarioResult:
    """Run one classic-oracle lockstep scenario on the scalar RoundEngine path.

    This is the per-seed reference the batch runner is pinned against.  The
    surface mirrors :func:`repro.workloads.adversarial.run_round_adversary`:
    *predicates* attaches streaming monitors scoped to the surviving
    processes, *stop_after_held* adds the early-stop policy, and
    *run_full_horizon* keeps executing after the scope decided.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if algorithm not in CLASSIC_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(CLASSIC_ALGORITHMS)}"
        )
    rng = SeededRng(seed)
    values = _classic_values(n, rng, shuffle_values)
    oracle = _classic_oracle(fault_model, n, rng, rounds, loss_probability)
    scope = _scope_for(fault_model, n)
    bank: Optional[MonitorBank] = None
    observers: Sequence[Any] = ()
    if predicates:
        bank = build_monitor_bank(n, predicates, pi0=scope, stop_after_held=stop_after_held)
        observers = (bank,)
    elif stop_after_held is not None:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    machine = HOMachine(CLASSIC_ALGORITHMS[algorithm](n), oracle, values, observers=observers)
    if run_full_horizon:
        while machine.current_round < rounds and not machine.engine.stop_requested:
            machine.run_round()
        trace = machine.trace
    else:
        trace = machine.run_until_decision(max_rounds=rounds, scope=scope)
    verdict = check_consensus(trace, values, scope=scope)
    extra: Dict[str, Any] = {"algorithm": algorithm, "rounds": rounds}
    if bank is not None:
        extra["predicate_reports"] = bank.reports_json()
        extra["stopped_early"] = bank.stop_requested
    if keep_trace:
        extra["trace"] = trace
    return ScenarioResult(
        stack=f"ho-classic/{algorithm}",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_trace(trace, scope=scope),
        extra=extra,
    )


class _DecisionsView:
    """Adapt a backend outcome's decision table to the trace checker protocol."""

    def __init__(self, decisions: Dict[int, Any]) -> None:
        self._decisions = decisions

    def decision_values(self) -> Dict[int, Any]:
        return dict(self._decisions)


def _replica_outcome_dict(
    outcome: Any, values: Sequence[Any], scope: Sequence[int]
) -> Dict[str, Any]:
    """Flatten one backend ReplicaOutcome into the sweep's wire shape.

    The verdict comes from the very same :func:`check_consensus` the scalar
    scenario path uses (over the outcome's trace-free decision table), so
    the consensus semantics cannot drift between the two paths; the metric
    fields mirror ``metrics_from_trace`` scoped to the surviving processes,
    with round-level times equal to round numbers.
    """
    verdict = check_consensus(_DecisionsView(outcome.decisions), values, scope=scope)
    scope_set = frozenset(scope)
    scoped_rounds = [r for p, r in outcome.decision_rounds.items() if p in scope_set]
    return {
        "seed": outcome.seed,
        "solved": verdict.solved,
        "safe": verdict.safe,
        "terminated": verdict.termination,
        "decided_processes": sum(1 for p in outcome.decisions if p in scope_set),
        "scope_size": len(scope_set),
        "first_decision_time": float(min(scoped_rounds)) if scoped_rounds else None,
        "last_decision_time": float(max(scoped_rounds)) if scoped_rounds else None,
        "messages_sent": outcome.messages_sent,
        "error": None,
        "predicates": outcome.predicate_reports,
    }


def build_classic_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    algorithm: str = "otr",
    rounds: int = 60,
    loss_probability: float = 0.2,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
) -> CellPlan:
    """Build one sweep cell -- all *seeds* of one classic scenario -- as data.

    One :class:`~repro.rounds.backend.ReplicaTask` per seed, with exactly
    the algorithm/oracle/values the scalar :func:`run_classic` run of that
    seed would build, plus the flattener from backend outcomes to the
    sweep's per-replica wire dicts.  Execution is the caller's choice: the
    per-cell batch runner hands the batch to one backend, the super-batch
    sweep path packs many plans into one cross-cell engine run.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if algorithm not in CLASSIC_ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {sorted(CLASSIC_ALGORITHMS)}"
        )
    if stop_after_held is not None and not predicates:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    algorithm_class = CLASSIC_ALGORITHMS[algorithm]
    scope = sorted(_scope_for(fault_model, n))
    tasks: List[ReplicaTask] = []
    for seed in seeds:
        rng = SeededRng(seed)
        values = _classic_values(n, rng, shuffle_values)
        oracle = _classic_oracle(fault_model, n, rng, rounds, loss_probability)
        tasks.append(ReplicaTask(seed=seed, algorithm=algorithm_class(n), oracle=oracle,
                                 initial_values=values))
    monitor_factory: Optional[Callable[[], Any]] = None
    monitor_spec: Optional[MonitorSpec] = None
    if predicates:
        names = tuple(predicates)
        pi0 = frozenset(scope)
        monitor_factory = lambda: build_monitor_bank(  # noqa: E731
            n, names, pi0=pi0, stop_after_held=stop_after_held
        )
        monitor_spec = MonitorSpec(
            predicates=names, pi0_mask=mask_of(pi0), stop_after_held=stop_after_held
        )
    batch = ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(scope),
        run_full_horizon=run_full_horizon,
        monitor_factory=monitor_factory,
        monitor_spec=monitor_spec,
    )
    task_values = [task.initial_values for task in tasks]

    def finalize(outcomes: Sequence[Any]) -> List[Dict[str, Any]]:
        return [
            _replica_outcome_dict(outcome, values, scope)
            for outcome, values in zip(outcomes, task_values)
        ]

    return CellPlan(batch=batch, finalize=finalize)


def run_classic_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    backend: str = "auto",
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Run one sweep cell -- all *seeds* of one classic scenario -- as a batch.

    Builds the cell with :func:`build_classic_batch`, hands it to the
    requested execution backend, and flattens the outcomes into the sweep's
    per-replica wire dicts.  Bit-identity with R scalar runs is the
    contract (and is pinned by the equivalence tests).
    """
    plan = build_classic_batch(fault_model, n=n, seeds=seeds, **kwargs)
    return plan.finalize(get_backend(backend).run(plan.batch))


for _key in CLASSIC_ALGORITHMS:
    REGISTRY.register_scenario(
        f"ho-classic-{_key}",
        partial(run_classic, algorithm=_key),
        monitorable=True,
        batch_runner=partial(run_classic_batch, algorithm=_key),
        batch_builder=partial(build_classic_batch, algorithm=_key),
    )


__all__ = [
    "CLASSIC_ALGORITHMS",
    "run_classic",
    "build_classic_batch",
    "run_classic_batch",
]
