"""End-to-end consensus scenarios used by the comparison benchmarks (E7-E9).

Three stacks are compared under identical fault models:

* the HO stack: OneThirdRule over Algorithm 2 (or Algorithm 4 over 3) on the
  step-level system model;
* the Chandra-Toueg ◇S baseline (crash-stop, reliable links) on the DES;
* the Aguilera et al. ◇Su baseline (crash-recovery, lossy links) on the DES.

The fault models are named after the Section 2.2 taxonomy scenarios they
instantiate: ``fault-free``, ``crash-stop`` (SP), ``crash-recovery`` (ST/DT)
and ``lossy`` (DT transmission faults without process crashes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..runner.registry import REGISTRY
from ..algorithms import OneThirdRule
from ..analysis.consensus_check import ConsensusVerdict, check_consensus
from ..analysis.metrics import RunMetrics, metrics_from_des, metrics_from_system_trace
from ..analysis.taxonomy import FaultConfiguration, classify
from ..des import ChannelConfig, EventSimulator
from ..failure_detectors import (
    EventuallyStrongDetector,
    EventuallyStrongRecoveryDetector,
    build_aguilera_processes,
    build_chandra_toueg_processes,
)
from ..predicates import MonitorBank, build_monitor_bank
from ..predimpl import build_down_stack
from ..sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    FaultSchedule,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)

#: Fault-model identifiers shared by every runner in this module.
FAULT_MODELS = ("fault-free", "crash-stop", "crash-recovery", "lossy")


@dataclass(frozen=True)
class ScenarioResult:
    """Outcome of one consensus scenario run."""

    stack: str
    fault_model: str
    n: int
    seed: int
    verdict: ConsensusVerdict
    metrics: RunMetrics
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def solved(self) -> bool:
        return self.verdict.solved

    @property
    def safe(self) -> bool:
        return self.verdict.safe

    def row(self) -> str:
        """A fixed-width text row for benchmark reports."""
        latency = (
            "   -  "
            if self.metrics.last_decision_time is None
            else f"{self.metrics.last_decision_time:6.1f}"
        )
        return (
            f"{self.stack:<16} {self.fault_model:<15} n={self.n:<3} seed={self.seed:<3} "
            f"safe={'yes' if self.safe else 'NO '} "
            f"terminated={'yes' if self.verdict.termination else 'no '} "
            f"latency={latency} messages={self.metrics.messages_sent}"
        )


def _initial_values(n: int) -> List[int]:
    return [10 * (p + 1) for p in range(n)]


def _scope_for(fault_model: str, n: int) -> frozenset:
    """Processes required to decide: crashed-forever processes are excluded."""
    if fault_model == "crash-stop":
        return frozenset(range(n)) - {n - 1}
    return frozenset(range(n))


# --------------------------------------------------------------------------- #
# the HO stack on the step-level system model
# --------------------------------------------------------------------------- #


def run_ho_stack(
    fault_model: str,
    n: int = 4,
    phi: float = 1.0,
    delta: float = 2.0,
    seed: int = 0,
    bad_period_length: float = 80.0,
    good_period_length: float = 400.0,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
) -> ScenarioResult:
    """Run OneThirdRule over Algorithm 2 under the given fault model.

    The same algorithm and the same predicate implementation are used for
    every fault model; only the fault schedule differs -- this is the
    Section 3.3 claim made executable.

    *predicates* attaches streaming monitors
    (:data:`repro.predicates.MONITOR_NAMES`) to the shared round engine of
    the predicate-implementation stack, scoped to the surviving processes;
    their reports land in ``extra["predicate_reports"]``.  *stop_after_held*
    ends the step-level simulation early once any monitored predicate's
    good condition held for that many consecutive rounds.  Monitored rounds
    complete once the surviving scope reported them (so monitoring is live
    even when a crashed process never reports again); a laggard's record
    arriving after that is dropped and counted in
    ``extra["predicate_late_records"]`` -- when non-zero, the verdicts of
    the *unscoped* predicates (``p_otr``, ``p_restr_otr``) are anytime
    approximations rather than exact whole-collection verdicts.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    params = SynchronyParams(phi=phi, delta=delta)
    values = _initial_values(n)
    scope = _scope_for(fault_model, n)
    bank: Optional[MonitorBank] = None
    observers: Sequence[Any] = ()
    if predicates:
        # completion_scope: under crash-stop the dead process stops
        # reporting forever, and waiting out the collator window on every
        # round would defer all monitoring to the end of the run -- rounds
        # complete once the surviving scope reported instead.
        bank = build_monitor_bank(
            n, predicates, pi0=scope, stop_after_held=stop_after_held,
            completion_scope=scope,
        )
        observers = (bank,)
    elif stop_after_held is not None:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    stack = build_down_stack(OneThirdRule(n), values, params, observers=observers)

    faults = FaultSchedule.none()
    lossy = False
    if fault_model == "fault-free":
        schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI_GOOD)
    elif fault_model == "crash-stop":
        # The last process crashes for good during the bad period; the good
        # period is pi0-down for the surviving processes.
        pi0 = frozenset(range(n - 1))
        faults = FaultSchedule.crash_stop([(n - 1, bad_period_length / 4)])
        schedule = PeriodSchedule.single_good_period(
            n, start=bad_period_length, length=good_period_length,
            kind=GoodPeriodKind.PI0_DOWN, pi0=pi0,
        )
        lossy = True
    elif fault_model == "crash-recovery":
        # Every process crashes and recovers at least once during the bad period.
        incidents = [
            (p, bad_period_length * (0.1 + 0.15 * p), bad_period_length * (0.3 + 0.15 * p))
            for p in range(n)
        ]
        faults = FaultSchedule.crash_recovery(incidents)
        schedule = PeriodSchedule.single_good_period(
            n, start=bad_period_length, length=good_period_length,
            kind=GoodPeriodKind.PI0_DOWN,
        )
        lossy = True
    else:  # "lossy": no crashes, only message loss before the good period
        schedule = PeriodSchedule.single_good_period(
            n, start=bad_period_length, length=good_period_length,
            kind=GoodPeriodKind.PI0_DOWN,
        )
        lossy = True

    simulator = SystemSimulator(
        stack.programs,
        params,
        schedule,
        seed=seed,
        trace=stack.trace,
        fault_schedule=faults,
        bad_network=BadPeriodNetwork(loss_probability=0.5 if lossy else 0.0,
                                     min_delay=1.0, max_delay=30.0),
        bad_process_behavior=BadPeriodProcessBehavior(
            min_step_gap=1.0, max_step_gap=5.0, stall_probability=0.2
        ),
    )
    stop_when = None
    if bank is not None and stop_after_held is not None:
        stop_when = lambda: bank.stop_requested  # noqa: E731
    trace = simulator.run(until=bad_period_length + good_period_length, stop_when=stop_when)
    verdict = check_consensus(trace, values, scope=scope)
    configuration = FaultConfiguration(n=n, schedule=faults, lossy_links=lossy)
    extra: Dict[str, Any] = {"fault_class": classify(configuration).value}
    if bank is not None:
        extra["predicate_reports"] = bank.reports_json()
        extra["stopped_early"] = bank.stop_requested
        # Non-zero when a process reported a round after the surviving
        # scope already completed it: scoped predicates are unaffected, but
        # unscoped ones (p_otr, p_restr_otr) then carry anytime verdicts
        # rather than exact whole-collection ones.
        extra["predicate_late_records"] = bank.late_records
    return ScenarioResult(
        stack="ho-stack",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_system_trace(trace, scope=scope),
        extra=extra,
    )


# --------------------------------------------------------------------------- #
# failure-detector baselines on the DES
# --------------------------------------------------------------------------- #


def _des_fault_schedule(fault_model: str, n: int) -> Dict[str, Dict[int, float]]:
    if fault_model == "crash-stop":
        return {"crash_times": {n - 1: 5.0}, "recovery_times": {}}
    if fault_model == "crash-recovery":
        crash_times = {p: 3.0 + 2.0 * p for p in range(n)}
        recovery_times = {p: 20.0 + 2.0 * p for p in range(n)}
        return {"crash_times": crash_times, "recovery_times": recovery_times}
    return {"crash_times": {}, "recovery_times": {}}


def run_chandra_toueg(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    stabilization_time: float = 30.0,
    horizon: float = 400.0,
) -> ScenarioResult:
    """Run the Chandra-Toueg ◇S baseline under the given fault model.

    The algorithm assumes reliable links and crash-stop faults; running it
    under ``lossy`` or ``crash-recovery`` exercises exactly the limitation
    the paper describes (it may block forever, which shows up as a
    termination failure -- never as a safety violation).
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    values = _initial_values(n)
    processes = build_chandra_toueg_processes(n, values)
    faults = _des_fault_schedule(fault_model, n)
    channel = ChannelConfig(
        loss_probability=0.3 if fault_model in ("lossy", "crash-recovery") else 0.0
    )
    simulator = EventSimulator(
        processes,
        channel=channel,
        crash_times=faults["crash_times"],
        recovery_times=faults["recovery_times"],
        seed=seed,
    )
    simulator.register_failure_detector(
        "default", EventuallyStrongDetector(stabilization_time=stabilization_time, seed=seed + 1)
    )
    scope = _scope_for(fault_model, n)
    simulator.run_until_all_decided(until=horizon, scope=scope)
    verdict = check_consensus_des(simulator, values, scope)
    return ScenarioResult(
        stack="chandra-toueg",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_des(simulator, scope=scope),
    )


def run_aguilera(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    stabilization_time: float = 40.0,
    horizon: float = 600.0,
) -> ScenarioResult:
    """Run the Aguilera et al. ◇Su baseline under the given fault model."""
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    values = _initial_values(n)
    processes = build_aguilera_processes(n, values)
    faults = _des_fault_schedule(fault_model, n)
    channel = ChannelConfig(
        loss_probability=0.3 if fault_model in ("lossy", "crash-recovery") else 0.0
    )
    simulator = EventSimulator(
        processes,
        channel=channel,
        crash_times=faults["crash_times"],
        recovery_times=faults["recovery_times"],
        seed=seed,
    )
    simulator.register_failure_detector(
        "default",
        EventuallyStrongRecoveryDetector(stabilization_time=stabilization_time, seed=seed + 1),
    )
    scope = _scope_for(fault_model, n)
    simulator.run_until_all_decided(until=horizon, scope=scope)
    verdict = check_consensus_des(simulator, values, scope)
    return ScenarioResult(
        stack="aguilera",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_des(simulator, scope=scope),
    )


def check_consensus_des(simulator: EventSimulator, values: Sequence[Any], scope) -> ConsensusVerdict:
    """Consensus check adapted to the DES decision records."""
    decisions = simulator.decision_values()
    violations = []
    integrity = all(value in set(values) for value in decisions.values())
    if not integrity:
        violations.append("a decision value is not an initial value")
    agreement = len(set(decisions.values())) <= 1
    if not agreement:
        violations.append("processes decided differently")
    missing = set(scope) - set(decisions)
    termination = not missing
    if missing:
        violations.append(f"processes {sorted(missing)} never decided")
    return ConsensusVerdict(
        integrity=integrity,
        agreement=agreement,
        termination=termination,
        decisions=decisions,
        violations=tuple(violations),
    )


#: the three stacks, in report order, as registered with the runner.
STACKS = ("ho-stack", "chandra-toueg", "aguilera")

REGISTRY.register_scenario("ho-stack", run_ho_stack, monitorable=True)
REGISTRY.register_scenario("chandra-toueg", run_chandra_toueg)
REGISTRY.register_scenario("aguilera", run_aguilera)
for _fault_model in FAULT_MODELS:
    REGISTRY.register_fault_model(_fault_model)


def compare_stacks(
    fault_models: Sequence[str] = FAULT_MODELS,
    n: int = 4,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[ScenarioResult]:
    """Run every stack under every fault model (the E8 comparison matrix).

    The grid goes through the :mod:`repro.runner` sweep executor; pass
    *workers* > 1 to fan the matrix out over parallel worker processes.
    This consumer needs the full in-process ``ScenarioResult`` of every
    cell, so it opts into ``keep_results`` (parallel workers return only
    the slim wire record by default).
    """
    from ..runner.sweep import RunSpec, run_sweep

    specs = [
        RunSpec.make(stack, fault_model, seed, n=n)
        for fault_model in fault_models
        for stack in STACKS
    ]
    sweep = run_sweep(specs, workers=workers, keep_results=True)
    results: List[ScenarioResult] = []
    for record in sweep.records:
        if record.result is None:
            raise RuntimeError(
                f"{record.scenario} under {record.fault_model} failed: {record.error}"
            )
        results.append(record.result)
    return results


__all__ = [
    "STACKS",
    "FAULT_MODELS",
    "ScenarioResult",
    "run_ho_stack",
    "run_chandra_toueg",
    "run_aguilera",
    "compare_stacks",
    "check_consensus_des",
]
