"""The measurement harness: run scenarios and compare against the paper's bounds.

Each ``measure_*`` function sets up a step-level simulation matching one of
the paper's analytical scenarios (Theorems 3, 5, 6, 7, Corollary 4 and the
Section 4.2.2(c) composition), measures the time at which the target
predicate was achieved, and returns it together with the corresponding
closed-form bound.  Every ``measure_*`` function is registered with the
:mod:`repro.runner` registry, and the benchmark harness in ``benchmarks/``
sweeps them over parameters through the runner's (optionally parallel)
measurement executor, printing the paper-vs-measured tables recorded in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence

from ..runner.registry import REGISTRY
from ..algorithms import OneThirdRule
from ..predimpl import (
    arbitrary_p2otr_length,
    build_arbitrary_stack,
    build_down_stack,
    corollary4_p11otr_length,
    corollary4_p2otr_length,
    theorem3_good_period_length,
    theorem5_initial_good_period_length,
    theorem6_good_period_length,
    theorem7_initial_good_period_length,
)
from ..sysmodel import (
    BadPeriodNetwork,
    BadPeriodProcessBehavior,
    GoodPeriodKind,
    PeriodSchedule,
    SynchronyParams,
    SystemSimulator,
)


@dataclass(frozen=True)
class Measurement:
    """A measured good-period length (or latency) compared against its bound."""

    name: str
    n: int
    x: int
    phi: float
    delta: float
    seed: int
    measured: Optional[float]
    bound: float
    f: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    @property
    def within_bound(self) -> bool:
        """Whether the measurement respects the analytic bound."""
        return self.measured is not None and self.measured <= self.bound + 1e-9

    @property
    def ratio(self) -> Optional[float]:
        """measured / bound (tightness of the worst-case analysis)."""
        if self.measured is None or self.bound == 0:
            return None
        return self.measured / self.bound

    def row(self) -> str:
        """A fixed-width text row for benchmark reports."""
        measured = "unreached" if self.measured is None else f"{self.measured:9.2f}"
        ratio = "  -  " if self.ratio is None else f"{self.ratio:5.2f}"
        return (
            f"{self.name:<22} n={self.n:<3} f={self.f:<2} x={self.x:<2} "
            f"phi={self.phi:<4} delta={self.delta:<5} "
            f"measured={measured}  bound={self.bound:9.2f}  ratio={ratio}  "
            f"{'OK' if self.within_bound else 'VIOLATION'}"
        )


#: bad-period behaviour used by the non-initial scenarios: lossy asynchronous
#: links and irregular process speeds, to create round skew before the good
#: period starts.
DEFAULT_BAD_NETWORK = BadPeriodNetwork(loss_probability=0.6, min_delay=1.0, max_delay=40.0)
DEFAULT_BAD_BEHAVIOR = BadPeriodProcessBehavior(
    min_step_gap=1.0, max_step_gap=6.0, stall_probability=0.25
)


def _initial_values(n: int) -> list[int]:
    return [10 * (p + 1) for p in range(n)]


def _run_down(
    n: int,
    phi: float,
    delta: float,
    schedule: PeriodSchedule,
    until: float,
    seed: int,
    good_step_gap: Optional[float] = None,
):
    params = SynchronyParams(phi=phi, delta=delta)
    stack = build_down_stack(OneThirdRule(n), _initial_values(n), params)
    simulator = SystemSimulator(
        stack.programs,
        params,
        schedule,
        seed=seed,
        trace=stack.trace,
        bad_network=DEFAULT_BAD_NETWORK,
        bad_process_behavior=DEFAULT_BAD_BEHAVIOR,
        good_step_gap=good_step_gap,
    )
    simulator.run(until=until)
    return stack.trace


def _run_arbitrary(
    n: int,
    f: int,
    phi: float,
    delta: float,
    schedule: PeriodSchedule,
    until: float,
    seed: int,
    use_translation: bool = False,
):
    params = SynchronyParams(phi=phi, delta=delta)
    stack = build_arbitrary_stack(
        OneThirdRule(n), f, _initial_values(n), params, use_translation=use_translation
    )
    simulator = SystemSimulator(
        stack.programs,
        params,
        schedule,
        seed=seed,
        trace=stack.trace,
        bad_network=DEFAULT_BAD_NETWORK,
        bad_process_behavior=DEFAULT_BAD_BEHAVIOR,
    )
    simulator.run(until=until)
    return stack.trace


# --------------------------------------------------------------------------- #
# Algorithm 2 ("pi0-down") measurements: Theorems 3 and 5, Corollary 4
# --------------------------------------------------------------------------- #


def measure_theorem3(
    n: int,
    x: int,
    phi: float = 1.0,
    delta: float = 2.0,
    seed: int = 0,
    good_start: float = 120.0,
) -> Measurement:
    """Measure the good-period length needed for ``P_su(Pi, ., .+x-1)`` after a bad period."""
    bound = theorem3_good_period_length(x, n, phi, delta)
    pi0 = frozenset(range(n))
    schedule = PeriodSchedule.single_good_period(
        n, start=good_start, length=3 * bound + 50.0, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
    )
    trace = _run_down(n, phi, delta, schedule, until=good_start + 3 * bound + 50.0, seed=seed)
    window = trace.earliest_psu_window(pi0, x, not_before=good_start)
    measured = None if window is None else window[1] - good_start
    return Measurement("theorem3", n, x, phi, delta, seed, measured, bound)


def measure_theorem5(
    n: int, x: int, phi: float = 1.0, delta: float = 2.0, seed: int = 0
) -> Measurement:
    """Measure the initial good-period length needed for ``P_su(Pi, 1, x)`` (a nice run)."""
    bound = theorem5_initial_good_period_length(x, n, phi, delta)
    pi0 = frozenset(range(n))
    schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI0_DOWN, pi0=pi0)
    trace = _run_down(n, phi, delta, schedule, until=2 * bound + 50.0, seed=seed)
    window = trace.earliest_psu_window(pi0, x)
    measured = None if window is None else window[1]
    return Measurement("theorem5", n, x, phi, delta, seed, measured, bound)


def measure_corollary4(
    n: int,
    phi: float = 1.0,
    delta: float = 2.0,
    seed: int = 0,
    good_start: float = 120.0,
) -> Sequence[Measurement]:
    """Measure the P_2otr and P_1/1otr achievement lengths of Corollary 4."""
    pi0 = frozenset(range(n))
    p2_bound = corollary4_p2otr_length(n, phi, delta)
    schedule = PeriodSchedule.single_good_period(
        n, start=good_start, length=3 * p2_bound, kind=GoodPeriodKind.PI0_DOWN, pi0=pi0
    )
    trace = _run_down(n, phi, delta, schedule, until=good_start + 3 * p2_bound, seed=seed)
    p2otr = trace.earliest_p2otr(pi0, not_before=good_start)
    p2_measurement = Measurement(
        "corollary4_p2otr",
        n,
        2,
        phi,
        delta,
        seed,
        None if p2otr is None else p2otr[1] - good_start,
        p2_bound,
    )
    # P_1/1otr: one space-uniform round suffices per (shorter) good period.
    p11_bound = corollary4_p11otr_length(n, phi, delta)
    window = trace.earliest_psu_window(pi0, 1, not_before=good_start)
    p11_measurement = Measurement(
        "corollary4_p11otr",
        n,
        1,
        phi,
        delta,
        seed,
        None if window is None else window[1] - good_start,
        p11_bound,
    )
    return [p2_measurement, p11_measurement]


def measure_ratio_noninitial_vs_initial(
    n: int, x: int = 2, phi: float = 1.0, delta: float = 2.0, seed: int = 0
) -> Dict[str, float]:
    """The paper's 'factor of approximately 3/2' between Theorems 3 and 5, measured."""
    theorem3 = measure_theorem3(n, x, phi, delta, seed)
    theorem5 = measure_theorem5(n, x, phi, delta, seed)
    result = {
        "bound_ratio": theorem3.bound / theorem5.bound,
        "measured_theorem3": theorem3.measured,
        "measured_theorem5": theorem5.measured,
    }
    if theorem3.measured is not None and theorem5.measured:
        result["measured_ratio"] = theorem3.measured / theorem5.measured
    return result


# --------------------------------------------------------------------------- #
# Algorithm 3 ("pi0-arbitrary") measurements: Theorems 6 and 7, Section 4.2.2(c)
# --------------------------------------------------------------------------- #


def measure_theorem6(
    n: int,
    f: int,
    x: int,
    phi: float = 1.0,
    delta: float = 2.0,
    seed: int = 0,
    good_start: float = 120.0,
) -> Measurement:
    """Measure the pi0-arbitrary good-period length for ``P_k(pi0, ., .+x-1)`` after a bad period."""
    bound = theorem6_good_period_length(x, n, phi, delta)
    pi0 = frozenset(range(n - f))
    schedule = PeriodSchedule.single_good_period(
        n, start=good_start, length=3 * bound + 50.0, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=pi0
    )
    trace = _run_arbitrary(
        n, f, phi, delta, schedule, until=good_start + 3 * bound + 50.0, seed=seed
    )
    window = trace.earliest_pk_window(
        pi0, x, not_before=good_start, last_round_by_reception=True
    )
    measured = None if window is None else window[1] - good_start
    return Measurement("theorem6", n, x, phi, delta, seed, measured, bound, f=f)


def measure_theorem7(
    n: int, f: int, x: int, phi: float = 1.0, delta: float = 2.0, seed: int = 0
) -> Measurement:
    """Measure the initial pi0-arbitrary good-period length for ``P_k(pi0, 1, x)``."""
    bound = theorem7_initial_good_period_length(x, n, phi, delta)
    pi0 = frozenset(range(n - f))
    schedule = PeriodSchedule.always_good(n, GoodPeriodKind.PI0_ARBITRARY, pi0=pi0)
    trace = _run_arbitrary(n, f, phi, delta, schedule, until=3 * bound + 100.0, seed=seed)
    window = trace.earliest_pk_window(pi0, x, last_round_by_reception=True)
    measured = None if window is None else window[1]
    return Measurement("theorem7", n, x, phi, delta, seed, measured, bound, f=f)


def measure_arbitrary_p2otr(
    n: int,
    f: int,
    phi: float = 1.0,
    delta: float = 2.0,
    seed: int = 0,
    good_start: float = 100.0,
) -> Measurement:
    """Measure consensus latency of the full stack (Algorithm 1 over 4 over 3).

    Section 4.2.2(c): one pi0-arbitrary good period of the 2f+3-round bound
    suffices for ``P_2otr`` through the translation, hence for consensus.
    The measured quantity is the time from the start of the good period to
    the last decision of a pi0 process.
    """
    bound = arbitrary_p2otr_length(f, n, phi, delta)
    pi0 = frozenset(range(n - f))
    schedule = PeriodSchedule.single_good_period(
        n, start=good_start, length=3 * bound, kind=GoodPeriodKind.PI0_ARBITRARY, pi0=pi0
    )
    trace = _run_arbitrary(
        n,
        f,
        phi,
        delta,
        schedule,
        until=good_start + 3 * bound,
        seed=seed,
        use_translation=True,
    )
    decision_time = trace.last_decision_time(pi0)
    measured = None if decision_time is None else max(decision_time - good_start, 0.0)
    return Measurement(
        "arbitrary_p2otr",
        n,
        2 * f + 3,
        phi,
        delta,
        seed,
        measured,
        bound,
        f=f,
        extra={"decisions": dict(trace.decision_values())},
    )


REGISTRY.register_measurement("theorem3", measure_theorem3)
REGISTRY.register_measurement("theorem5", measure_theorem5)
REGISTRY.register_measurement("theorem6", measure_theorem6)
REGISTRY.register_measurement("theorem7", measure_theorem7)
REGISTRY.register_measurement("corollary4", measure_corollary4)
REGISTRY.register_measurement("arbitrary_p2otr", measure_arbitrary_p2otr)
REGISTRY.register_measurement(
    "ratio_noninitial_vs_initial", measure_ratio_noninitial_vs_initial
)


__all__ = [
    "Measurement",
    "DEFAULT_BAD_NETWORK",
    "DEFAULT_BAD_BEHAVIOR",
    "measure_theorem3",
    "measure_theorem5",
    "measure_corollary4",
    "measure_ratio_noninitial_vs_initial",
    "measure_theorem6",
    "measure_theorem7",
    "measure_arbitrary_p2otr",
]
