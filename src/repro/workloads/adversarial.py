"""Round-level adversarial scenarios: the dynamic-fault sweep matrix.

Each scenario runs OneThirdRule on the lockstep
:class:`~repro.core.machine.HOMachine` (i.e. through the shared
:class:`~repro.rounds.RoundEngine`) under one of the dynamic adversary
families of :mod:`repro.adversaries.dynamic`, crossed with the standard
fault-model axis.  The fault-model overlays are themselves built with the
oracle combinators -- composition by :class:`IntersectOracle`, transient
crashes by a :class:`SequenceOracle` of crash and fault-free phases -- so
the sweep exercises the whole adversary algebra:

* ``fault-free``     -- the dynamic family alone;
* ``crash-stop``     -- plus a permanent crash of the last process;
* ``crash-recovery`` -- plus a transient crash window for the last process;
* ``lossy``          -- plus independent 20% message loss.

Every family stabilises at ``stabilize_round`` (its churn stops and
communication becomes fault free for the surviving processes), so these runs
terminate for the processes in scope -- the round-level analogue of a good
period after a bad one.  Scenarios are registered with
:mod:`repro.runner.registry` under ``ho-round-<family>``, so
``python -m repro.runner`` sweeps cover the dynamic-fault matrix.

One master :class:`~repro.engine.rng.SeededRng` per run feeds every oracle
through named sub-streams, so a single seed controls the whole environment.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Dict, Optional

from ..adversaries import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    FaultFreeOracle,
    HOOracleBase,
    IntersectOracle,
    MobileOmissionOracle,
    RandomOmissionOracle,
    RotatingPartitionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from ..algorithms import OneThirdRule
from ..analysis.consensus_check import check_consensus
from ..analysis.metrics import metrics_from_trace
from ..core.machine import HOMachine
from ..engine.rng import SeededRng
from ..runner.registry import REGISTRY
from .scenarios import FAULT_MODELS, ScenarioResult, _initial_values, _scope_for

#: The dynamic adversary families swept by the ``ho-round-*`` scenarios.
ROUND_FAMILIES = (
    "mobile-omission",
    "rotating-partition",
    "bursty-loss",
    "eventually-stable-coordinator",
)


#: per-family default knobs; any keyword of the family's oracle constructor
#: may be overridden through the scenario's **params.
_FAMILY_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "mobile-omission": {"faults": None},  # None -> max(1, n // 4)
    "rotating-partition": {"blocks": 2, "period": 4, "churn": 0.3},
    "bursty-loss": {"p_burst": 0.15, "p_recover": 0.3, "loss_burst": 1.0, "loss_good": 0.0},
    "eventually-stable-coordinator": {
        "stable_coordinator": 0,
        "flaky_probability": 0.3,
        "background_probability": 0.4,
    },
}

_FAMILY_CLASSES = {
    "mobile-omission": MobileOmissionOracle,
    "rotating-partition": RotatingPartitionOracle,
    "bursty-loss": BurstyLossOracle,
    "eventually-stable-coordinator": EventuallyStableCoordinatorOracle,
}


def _family_oracle(
    family: str, n: int, stabilize_round: int, rng: SeededRng, params: Dict[str, Any]
) -> HOOracleBase:
    if family not in _FAMILY_CLASSES:
        raise ValueError(
            f"unknown adversary family {family!r}; expected one of {ROUND_FAMILIES}"
        )
    kwargs = dict(_FAMILY_DEFAULTS[family])
    unknown = set(params) - set(kwargs)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for family {family!r}; "
            f"known: {sorted(kwargs)}"
        )
    kwargs.update(params)
    if family == "mobile-omission" and kwargs["faults"] is None:
        kwargs["faults"] = max(1, n // 4)
    stability_key = {
        "mobile-omission": "stable_from",
        "rotating-partition": "heal_from",
        "bursty-loss": "stable_from",
        "eventually-stable-coordinator": "stable_from",
    }[family]
    kwargs[stability_key] = stabilize_round
    return _FAMILY_CLASSES[family](n, rng=rng.spawn("family"), **kwargs)


def _overlay_oracle(
    fault_model: str, n: int, stabilize_round: int, rng: SeededRng
) -> Optional[HOOracleBase]:
    """The fault-model axis, expressed with the oracle combinators."""
    if fault_model == "fault-free":
        return None
    if fault_model == "crash-stop":
        # The last process crashes early and never recovers.
        return StaticCrashOracle(n, {n - 1: 3})
    if fault_model == "crash-recovery":
        # The last process is down for a window during the unstable phase:
        # fault-free, then crashed, then fault-free again -- a transient
        # crash scripted with SequenceOracle.
        down_from = max(2, stabilize_round // 3)
        down_length = max(1, stabilize_round // 3)
        return SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), down_from - 1),
                (StaticCrashOracle(n, {n - 1: 1}), down_length),
                (FaultFreeOracle(n), None),
            ],
        )
    if fault_model == "lossy":
        return RandomOmissionOracle(n, 0.2, rng=rng.spawn("overlay"))
    raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")


def run_round_adversary(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    family: str = "mobile-omission",
    rounds: int = 80,
    stabilize_round: Optional[int] = None,
    keep_trace: bool = False,
    **params: Any,
) -> ScenarioResult:
    """Run OneThirdRule under a dynamic adversary family crossed with *fault_model*.

    The environment is ``IntersectOracle(family, overlay)``: the dynamic
    family provides the churn, the fault-model overlay the static/transient
    crashes or extra loss.  Latency is measured in rounds (the round-level
    clock).  *keep_trace* attaches the full :class:`~repro.core.types.RunTrace`
    as ``extra["trace"]`` for in-process consumers (predicate checks on the
    heard-of collection); such results are deliberately heavy, which is why
    the sweep executor ships only slim wire records across worker pools.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if stabilize_round is None:
        stabilize_round = max(2, rounds // 2)
    rng = SeededRng(seed)
    oracle: HOOracleBase = _family_oracle(family, n, stabilize_round, rng, params)
    overlay = _overlay_oracle(fault_model, n, stabilize_round, rng)
    if overlay is not None:
        oracle = IntersectOracle(n, oracle, overlay)

    values = _initial_values(n)
    machine = HOMachine(OneThirdRule(n), oracle, values)
    scope = _scope_for(fault_model, n)
    # Under the lossy overlay the post-stabilisation rounds still lose
    # messages, so a decision is likely but not certain within the horizon.
    trace = machine.run_until_decision(max_rounds=rounds, scope=scope)
    verdict = check_consensus(trace, values, scope=scope)
    extra: Dict[str, Any] = {
        "family": family,
        "stabilize_round": stabilize_round,
        "rounds": rounds,
    }
    if keep_trace:
        extra["trace"] = trace
    return ScenarioResult(
        stack=f"ho-round/{family}",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_trace(trace, scope=scope),
        extra=extra,
    )


for _family in ROUND_FAMILIES:
    REGISTRY.register_scenario(
        f"ho-round-{_family}", partial(run_round_adversary, family=_family)
    )


__all__ = ["ROUND_FAMILIES", "run_round_adversary"]
