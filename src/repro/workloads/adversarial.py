"""Round-level adversarial scenarios: the dynamic-fault sweep matrix.

Each scenario runs OneThirdRule on the lockstep
:class:`~repro.core.machine.HOMachine` (i.e. through the shared
:class:`~repro.rounds.RoundEngine`) under one of the dynamic adversary
families of :mod:`repro.adversaries.dynamic`, crossed with the standard
fault-model axis.  The fault-model overlays are themselves built with the
oracle combinators -- composition by :class:`IntersectOracle`, transient
crashes by a :class:`SequenceOracle` of crash and fault-free phases -- so
the sweep exercises the whole adversary algebra:

* ``fault-free``     -- the dynamic family alone;
* ``crash-stop``     -- plus a permanent crash of the last process;
* ``crash-recovery`` -- plus a transient crash window for the last process;
* ``lossy``          -- plus independent 20% message loss.

Every family stabilises at ``stabilize_round`` (its churn stops and
communication becomes fault free for the surviving processes), so these runs
terminate for the processes in scope -- the round-level analogue of a good
period after a bad one.  Scenarios are registered with
:mod:`repro.runner.registry` under ``ho-round-<family>``, so
``python -m repro.runner`` sweeps cover the dynamic-fault matrix.

One master :class:`~repro.engine.rng.SeededRng` per run feeds every oracle
through named sub-streams, so a single seed controls the whole environment.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..adversaries import (
    BurstyLossOracle,
    EventuallyStableCoordinatorOracle,
    FaultFreeOracle,
    HOOracleBase,
    IntersectOracle,
    MobileOmissionOracle,
    RandomOmissionOracle,
    RotatingPartitionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from ..algorithms import OneThirdRule
from ..analysis.consensus_check import check_consensus
from ..analysis.metrics import metrics_from_trace
from ..core.machine import HOMachine
from ..engine.rng import SeededRng
from ..predicates import MonitorBank, build_monitor_bank
from ..predimpl.bounds import arbitrary_p2otr_rounds
from ..rounds.backend import (
    CellPlan,
    MonitorSpec,
    ReplicaBatch,
    ReplicaTask,
    get_backend,
)
from ..rounds.bitmask import mask_of
from ..runner.registry import REGISTRY
from .batched import _replica_outcome_dict
from .scenarios import FAULT_MODELS, ScenarioResult, _initial_values, _scope_for

#: The dynamic adversary families swept by the ``ho-round-*`` scenarios.
ROUND_FAMILIES = (
    "mobile-omission",
    "rotating-partition",
    "bursty-loss",
    "eventually-stable-coordinator",
)


#: per-family default knobs; any keyword of the family's oracle constructor
#: may be overridden through the scenario's **params.
_FAMILY_DEFAULTS: Dict[str, Dict[str, Any]] = {
    "mobile-omission": {"faults": None},  # None -> max(1, n // 4)
    "rotating-partition": {"blocks": 2, "period": 4, "churn": 0.3},
    "bursty-loss": {"p_burst": 0.15, "p_recover": 0.3, "loss_burst": 1.0, "loss_good": 0.0},
    "eventually-stable-coordinator": {
        "stable_coordinator": 0,
        "flaky_probability": 0.3,
        "background_probability": 0.4,
    },
}

_FAMILY_CLASSES = {
    "mobile-omission": MobileOmissionOracle,
    "rotating-partition": RotatingPartitionOracle,
    "bursty-loss": BurstyLossOracle,
    "eventually-stable-coordinator": EventuallyStableCoordinatorOracle,
}


def _family_oracle(
    family: str, n: int, stabilize_round: int, rng: SeededRng, params: Dict[str, Any]
) -> HOOracleBase:
    if family not in _FAMILY_CLASSES:
        raise ValueError(
            f"unknown adversary family {family!r}; expected one of {ROUND_FAMILIES}"
        )
    kwargs = dict(_FAMILY_DEFAULTS[family])
    unknown = set(params) - set(kwargs)
    if unknown:
        raise ValueError(
            f"unknown parameter(s) {sorted(unknown)} for family {family!r}; "
            f"known: {sorted(kwargs)}"
        )
    kwargs.update(params)
    if family == "mobile-omission" and kwargs["faults"] is None:
        kwargs["faults"] = max(1, n // 4)
    stability_key = {
        "mobile-omission": "stable_from",
        "rotating-partition": "heal_from",
        "bursty-loss": "stable_from",
        "eventually-stable-coordinator": "stable_from",
    }[family]
    kwargs[stability_key] = stabilize_round
    return _FAMILY_CLASSES[family](n, rng=rng.spawn("family"), **kwargs)


def _overlay_oracle(
    fault_model: str, n: int, stabilize_round: int, rng: SeededRng
) -> Optional[HOOracleBase]:
    """The fault-model axis, expressed with the oracle combinators."""
    if fault_model == "fault-free":
        return None
    if fault_model == "crash-stop":
        # The last process crashes early and never recovers.
        return StaticCrashOracle(n, {n - 1: 3})
    if fault_model == "crash-recovery":
        # The last process is down for a window during the unstable phase:
        # fault-free, then crashed, then fault-free again -- a transient
        # crash scripted with SequenceOracle.
        down_from = max(2, stabilize_round // 3)
        down_length = max(1, stabilize_round // 3)
        return SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), down_from - 1),
                (StaticCrashOracle(n, {n - 1: 1}), down_length),
                (FaultFreeOracle(n), None),
            ],
        )
    if fault_model == "lossy":
        return RandomOmissionOracle(n, 0.2, rng=rng.spawn("overlay"))
    raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")


def run_round_adversary(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    family: str = "mobile-omission",
    rounds: int = 80,
    stabilize_round: Optional[int] = None,
    keep_trace: bool = False,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
    **params: Any,
) -> ScenarioResult:
    """Run OneThirdRule under a dynamic adversary family crossed with *fault_model*.

    The environment is ``IntersectOracle(family, overlay)``: the dynamic
    family provides the churn, the fault-model overlay the static/transient
    crashes or extra loss.  Latency is measured in rounds (the round-level
    clock).  *keep_trace* attaches the full :class:`~repro.core.types.RunTrace`
    as ``extra["trace"]`` for in-process consumers (predicate checks on the
    heard-of collection); such results are deliberately heavy, which is why
    the sweep executor ships only slim wire records across worker pools.

    *predicates* names streaming monitors (:data:`repro.predicates.MONITOR_NAMES`)
    attached to the round engine, scoped to the fault model's surviving
    processes; their compact reports land in ``extra["predicate_reports"]``
    (JSON form) without the trace ever leaving the run.  *stop_after_held*
    additionally stops the run once any monitored predicate's good
    condition held for that many consecutive rounds.  *run_full_horizon*
    keeps executing rounds after every in-scope process decided (monitored
    runs measuring first-hold rounds want the whole horizon, not the
    decision prefix); early-stop policies still apply.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if stabilize_round is None:
        stabilize_round = max(2, rounds // 2)
    rng = SeededRng(seed)
    oracle: HOOracleBase = _family_oracle(family, n, stabilize_round, rng, params)
    overlay = _overlay_oracle(fault_model, n, stabilize_round, rng)
    if overlay is not None:
        oracle = IntersectOracle(n, oracle, overlay)

    values = _initial_values(n)
    scope = _scope_for(fault_model, n)
    bank: Optional[MonitorBank] = None
    observers: Sequence[Any] = ()
    if predicates:
        bank = build_monitor_bank(n, predicates, pi0=scope, stop_after_held=stop_after_held)
        observers = (bank,)
    elif stop_after_held is not None:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    machine = HOMachine(OneThirdRule(n), oracle, values, observers=observers)
    # Under the lossy overlay the post-stabilisation rounds still lose
    # messages, so a decision is likely but not certain within the horizon.
    if run_full_horizon:
        while machine.current_round < rounds and not machine.engine.stop_requested:
            machine.run_round()
        trace = machine.trace
    else:
        trace = machine.run_until_decision(max_rounds=rounds, scope=scope)
    verdict = check_consensus(trace, values, scope=scope)
    extra: Dict[str, Any] = {
        "family": family,
        "stabilize_round": stabilize_round,
        "rounds": rounds,
    }
    if bank is not None:
        extra["predicate_reports"] = bank.reports_json()
        extra["stopped_early"] = bank.stop_requested
    if keep_trace:
        extra["trace"] = trace
    return ScenarioResult(
        stack=f"ho-round/{family}",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_trace(trace, scope=scope),
        extra=extra,
    )


def build_round_adversary_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    family: str = "mobile-omission",
    rounds: int = 80,
    stabilize_round: Optional[int] = None,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
    **params: Any,
) -> CellPlan:
    """Build one dynamic-adversary sweep cell as data (super-batch food).

    One :class:`~repro.rounds.backend.ReplicaTask` per seed with exactly
    the oracle stack the scalar :func:`run_round_adversary` run of that
    seed would build -- the counter-based dynamic family intersected with
    the fault-model overlay -- so every backend, per-cell or cross-cell,
    reproduces the scalar decisions bit for bit.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if stabilize_round is None:
        stabilize_round = max(2, rounds // 2)
    if stop_after_held is not None and not predicates:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    values = _initial_values(n)
    scope = sorted(_scope_for(fault_model, n))
    tasks: List[ReplicaTask] = []
    for seed in seeds:
        rng = SeededRng(seed)
        oracle: HOOracleBase = _family_oracle(family, n, stabilize_round, rng, params)
        overlay = _overlay_oracle(fault_model, n, stabilize_round, rng)
        if overlay is not None:
            oracle = IntersectOracle(n, oracle, overlay)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=OneThirdRule(n),
                oracle=oracle,
                initial_values=list(values),
            )
        )
    monitor_factory: Optional[Callable[[], Any]] = None
    monitor_spec: Optional[MonitorSpec] = None
    if predicates:
        names = tuple(predicates)
        pi0 = frozenset(scope)
        monitor_factory = lambda: build_monitor_bank(  # noqa: E731
            n, names, pi0=pi0, stop_after_held=stop_after_held
        )
        monitor_spec = MonitorSpec(
            predicates=names, pi0_mask=mask_of(pi0), stop_after_held=stop_after_held
        )
    batch = ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(scope),
        run_full_horizon=run_full_horizon,
        monitor_factory=monitor_factory,
        monitor_spec=monitor_spec,
    )

    def finalize(outcomes: Sequence[Any]) -> List[Dict[str, Any]]:
        return [_replica_outcome_dict(outcome, values, scope) for outcome in outcomes]

    return CellPlan(batch=batch, finalize=finalize)


def run_round_adversary_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    backend: str = "auto",
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Run one dynamic-adversary sweep cell -- all *seeds* -- as one batch.

    The counter-based draws of the dynamic families make the whole
    environment replica-vectorisable, so these cells no longer need the
    per-replica oracle fallback loop; bit-identity with R scalar
    :func:`run_round_adversary` runs is the contract.
    """
    plan = build_round_adversary_batch(fault_model, n=n, seeds=seeds, **kwargs)
    return plan.finalize(get_backend(backend).run(plan.batch))


#: Predicates monitored by default in the ``ho-round-*-monitored`` family.
DEFAULT_MONITORED_PREDICATES = ("p_su", "p_k", "p_2otr", "p_restr_otr")


def run_round_adversary_monitored(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    family: str = "mobile-omission",
    rounds: int = 80,
    stabilize_round: Optional[int] = None,
    predicates: Sequence[str] = DEFAULT_MONITORED_PREDICATES,
    stop_after_held: Optional[int] = None,
    keep_trace: bool = False,
    **params: Any,
) -> ScenarioResult:
    """The monitored twin of :func:`run_round_adversary`: measure *when* predicates hold.

    Runs the same environment with streaming monitors always on and
    cross-checks the theoretical round bound of
    :func:`repro.predimpl.bounds.arbitrary_p2otr_rounds` against the
    *monitored* first-hold round of ``P_2otr``: once the adversary family
    stabilises at ``stabilize_round``, a ``P_2otr``-satisfying pattern is
    due within ``2f+3`` rounds (``f`` = processes outside the surviving
    scope) -- unless the fault-model overlay keeps losing messages, which
    the recorded ``within_round_bound`` then makes visible.  Results land
    in ``extra["bound_check"]`` next to the predicate reports; nothing of
    this requires shipping a trace out of the run.
    """
    if stabilize_round is None:
        stabilize_round = max(2, rounds // 2)
    result = run_round_adversary(
        fault_model,
        n=n,
        seed=seed,
        family=family,
        rounds=rounds,
        stabilize_round=stabilize_round,
        keep_trace=keep_trace,
        predicates=tuple(predicates),
        stop_after_held=stop_after_held,
        run_full_horizon=True,
        **params,
    )
    scope = _scope_for(fault_model, n)
    f = n - len(scope)
    round_bound = stabilize_round + arbitrary_p2otr_rounds(f)
    reports = result.extra.get("predicate_reports") or {}
    report = reports.get("p_2otr")
    first_hold = report.get("first_hold_round") if report else None
    result.extra["bound_check"] = {
        "predicate": "p_2otr",
        "f": f,
        "stabilize_round": stabilize_round,
        "round_bound": round_bound,
        "first_hold_round": first_hold,
        "within_round_bound": None if first_hold is None else first_hold <= round_bound,
    }
    return result


for _family in ROUND_FAMILIES:
    REGISTRY.register_scenario(
        f"ho-round-{_family}",
        partial(run_round_adversary, family=_family),
        monitorable=True,
        batch_runner=partial(run_round_adversary_batch, family=_family),
        batch_builder=partial(build_round_adversary_batch, family=_family),
    )
    REGISTRY.register_scenario(
        f"ho-round-{_family}-monitored",
        partial(run_round_adversary_monitored, family=_family),
        monitorable=True,
    )


__all__ = [
    "ROUND_FAMILIES",
    "DEFAULT_MONITORED_PREDICATES",
    "run_round_adversary",
    "build_round_adversary_batch",
    "run_round_adversary_batch",
    "run_round_adversary_monitored",
]
