"""The ``ho-step-*`` / ``ho-theorem8-*`` scenarios: Theorems 3-8 as sweepable cells.

The measurement harness (:mod:`repro.workloads.measure`) checks the
theorems' closed-form bounds one run at a time; this module exposes the
same stacks as *scenarios* -- ``fn(fault_model, n=..., seed=...)`` cells
the sweep executor can replicate R-fold through the execution-backend
axis (``--replicas``/``--backend``):

* ``ho-step-down-otr`` -- OneThirdRule over Algorithm 2 (``P_su`` in
  pi0-down good periods; Theorems 3/5) on the step-level system model,
  executed through the step-path backends of
  :mod:`repro.predimpl.step_backend`;
* ``ho-step-arbitrary-otr`` -- OneThirdRule over Algorithm 4 over
  Algorithm 3 (``P_k`` made space-uniform; Theorems 6/7/8), same backend
  surface (these cells always degrade to the scalar step path -- the
  INIT/round wire protocol is not round-shaped);
* ``ho-theorem8-translation`` -- the *round-level* Theorem 8 cell:
  Algorithm 4 as an HO algorithm over a kernel oracle
  (:class:`~repro.adversaries.CounterKernelOracle`), fully
  replica-vectorisable through the ordinary ``batch`` backend via
  :class:`~repro.predimpl.batched_translation.BatchTranslationKernel`.

The step scenarios register :data:`STEP_BACKEND_ALIASES`, so the sweep's
generic ``--backend`` choices resolve to the step-path backends without
the executor knowing what a step replica is.  Scalar-vs-batched
bit-identity per seed is the contract everywhere, pinned by the
equivalence tests.

Sweep records stay slim by default: no scenario here retains a trace
unless the in-process caller opts in with ``keep_trace=True``.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..adversaries import (
    CounterKernelOracle,
    FaultFreeOracle,
    HOOracleBase,
    IntersectOracle,
    RandomOmissionOracle,
    SequenceOracle,
    StaticCrashOracle,
)
from ..algorithms import OneThirdRule
from ..analysis.consensus_check import check_consensus
from ..analysis.metrics import RunMetrics, metrics_from_trace
from ..core.machine import HOMachine
from ..engine.rng import SeededRng
from ..predicates import MonitorBank, build_monitor_bank
from ..predimpl.step_backend import (
    ARBITRARY_GOOD,
    DOWN_GOOD,
    ScalarStepBackend,
    StepEnvironment,
    step_horizon_rounds,
)
from ..predimpl.translation import KernelToUniformTranslation
from ..rounds.backend import (
    CellPlan,
    MonitorSpec,
    ReplicaBatch,
    ReplicaOutcome,
    ReplicaTask,
    get_backend,
)
from ..rounds.bitmask import mask_of
from ..runner.registry import REGISTRY
from .batched import _classic_values, _DecisionsView, _replica_outcome_dict
from .scenarios import FAULT_MODELS, ScenarioResult, _scope_for

#: How the sweep's generic backend choices resolve for step-path scenarios.
#: Registered as the scenarios' ``backend_aliases``; the batch runners apply
#: the same map so direct calls with ``backend="auto"`` work identically.
STEP_BACKEND_ALIASES = {
    "auto": "step-batch",
    "batch": "step-batch",
    "compiled": "step-batch",
    "super": "step-batch",
    "scalar": "step-scalar",
}


def _resolve_step_backend(backend: str) -> str:
    return STEP_BACKEND_ALIASES.get(backend, backend)


def _metrics_from_outcome(outcome: ReplicaOutcome, scope: Sequence[int]) -> RunMetrics:
    """Round-level RunMetrics from a backend outcome (times = round numbers).

    Field for field the shape :func:`_replica_outcome_dict` exposes on the
    wire, so a scalar sweep loop over :func:`run_step` and a batched cell
    produce identical records.
    """
    scope_set = frozenset(scope)
    decided = {p: v for p, v in outcome.decisions.items() if p in scope_set}
    rounds = [outcome.decision_rounds[p] for p in decided]
    return RunMetrics(
        decided_processes=len(decided),
        scope_size=len(scope_set),
        unanimous=len(set(decided.values())) <= 1,
        first_decision_time=float(min(rounds)) if rounds else None,
        last_decision_time=float(max(rounds)) if rounds else None,
        first_decision_round=min(rounds) if rounds else None,
        last_decision_round=max(rounds) if rounds else None,
        messages_sent=outcome.messages_sent,
    )


# --------------------------------------------------------------------------- #
# the step-path scenarios (Theorems 3/5 down-good, 6/7/8 arbitrary-good)
# --------------------------------------------------------------------------- #


def _step_environment(
    kind: str,
    fault_model: str,
    n: int,
    phi: float,
    delta: float,
    f: Optional[int],
    use_translation: bool,
    bad_period_length: float,
    good_period_length: float,
) -> StepEnvironment:
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if f is None:
        f = (n - 1) // 3 if kind == ARBITRARY_GOOD else 0
    return StepEnvironment(
        kind=kind,
        fault_model=fault_model,
        phi=phi,
        delta=delta,
        f=f,
        use_translation=use_translation,
        bad_period_length=bad_period_length,
        good_period_length=good_period_length,
    )


def _step_monitoring(
    n: int,
    scope: Sequence[int],
    predicates: Optional[Sequence[str]],
    stop_after_held: Optional[int],
) -> tuple:
    """(monitor_factory, monitor_spec) for a step cell, or (None, None)."""
    if not predicates:
        if stop_after_held is not None:
            raise ValueError("stop_after_held requires at least one monitored predicate")
        return None, None
    names = tuple(predicates)
    pi0 = frozenset(scope)
    # completion_scope: as in run_ho_stack -- a crashed process stops
    # reporting forever, so rounds complete once the surviving scope did.
    factory = lambda: build_monitor_bank(  # noqa: E731
        n, names, pi0=pi0, stop_after_held=stop_after_held, completion_scope=pi0
    )
    spec = MonitorSpec(predicates=names, pi0_mask=mask_of(pi0), stop_after_held=stop_after_held)
    return factory, spec


def build_step_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    kind: str = DOWN_GOOD,
    phi: float = 1.0,
    delta: float = 2.0,
    f: Optional[int] = None,
    use_translation: bool = True,
    bad_period_length: float = 80.0,
    good_period_length: float = 400.0,
    rounds: Optional[int] = None,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
) -> CellPlan:
    """Build one step-path sweep cell -- all *seeds* of one stack/fault pair -- as data.

    One :class:`~repro.rounds.backend.ReplicaTask` per seed, carrying the
    :class:`~repro.predimpl.step_backend.StepEnvironment` as its oracle and
    the seed-shuffled initial values; the flattener produces the sweep's
    per-replica wire dicts over the backends' round-level projection.
    """
    env = _step_environment(
        kind, fault_model, n, phi, delta, f, use_translation,
        bad_period_length, good_period_length,
    )
    if rounds is None:
        rounds = step_horizon_rounds(env, n)
    scope = sorted(_scope_for(fault_model, n))
    tasks: List[ReplicaTask] = []
    for seed in seeds:
        rng = SeededRng(seed)
        values = _classic_values(n, rng, shuffle_values)
        upper = OneThirdRule(n)
        tasks.append(
            ReplicaTask(seed=seed, algorithm=upper, oracle=env, initial_values=values)
        )
    monitor_factory, monitor_spec = _step_monitoring(n, scope, predicates, stop_after_held)
    batch = ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(scope),
        run_full_horizon=run_full_horizon,
        monitor_factory=monitor_factory,
        monitor_spec=monitor_spec,
    )
    task_values = [task.initial_values for task in tasks]

    def finalize(outcomes: Sequence[Any]) -> List[Dict[str, Any]]:
        return [
            _replica_outcome_dict(outcome, values, scope)
            for outcome, values in zip(outcomes, task_values)
        ]

    return CellPlan(batch=batch, finalize=finalize)


def run_step_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    backend: str = "auto",
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Run one step-path sweep cell -- all *seeds* -- through a step backend.

    The generic backend names resolve through :data:`STEP_BACKEND_ALIASES`
    (``auto``/``batch``/``super`` -> ``step-batch``, ``scalar`` ->
    ``step-scalar``); bit-identity between the two step backends per seed
    is the contract.
    """
    plan = build_step_batch(fault_model, n=n, seeds=seeds, **kwargs)
    return plan.finalize(get_backend(_resolve_step_backend(backend)).run(plan.batch))


def run_step(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    kind: str = DOWN_GOOD,
    phi: float = 1.0,
    delta: float = 2.0,
    f: Optional[int] = None,
    use_translation: bool = True,
    bad_period_length: float = 80.0,
    good_period_length: float = 400.0,
    rounds: Optional[int] = None,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
    keep_trace: bool = False,
) -> ScenarioResult:
    """Run one step-path scenario (one seed) on the scalar step backend.

    The per-seed reference of the ``ho-step-*`` family: a single-replica
    cell executed by :class:`~repro.predimpl.step_backend.ScalarStepBackend`
    and reported at round granularity (latency in rounds, an all-to-all
    message count per round), so scalar and batched sweeps of the same cell
    are comparable record for record.  *keep_trace* attaches the full
    step-level :class:`~repro.sysmodel.trace.SystemRunTrace` as
    ``extra["trace"]`` for in-process consumers; sweeps leave it off so
    records stay slim and picklable.
    """
    env = _step_environment(
        kind, fault_model, n, phi, delta, f, use_translation,
        bad_period_length, good_period_length,
    )
    if rounds is None:
        rounds = step_horizon_rounds(env, n)
    plan = build_step_batch(
        fault_model, n=n, seeds=(seed,), kind=kind, phi=phi, delta=delta, f=f,
        use_translation=use_translation, bad_period_length=bad_period_length,
        good_period_length=good_period_length, rounds=rounds,
        shuffle_values=shuffle_values, predicates=predicates,
        stop_after_held=stop_after_held, run_full_horizon=run_full_horizon,
    )
    # A private backend instance: the registered singleton must not have
    # its trace retention toggled behind the sweeps' back.
    backend = ScalarStepBackend(keep_traces=keep_trace)
    outcome = backend.run(plan.batch)[0]
    values = plan.batch.tasks[0].initial_values
    scope = sorted(_scope_for(fault_model, n))
    verdict = check_consensus(_DecisionsView(outcome.decisions), values, scope=scope)
    extra: Dict[str, Any] = {
        "kind": kind,
        "rounds": rounds,
        "f": env.f,
        "use_translation": env.use_translation,
        "rounds_executed": outcome.rounds_executed,
    }
    if predicates:
        extra["predicate_reports"] = outcome.predicate_reports
        extra["stopped_early"] = outcome.stopped_early
    if keep_trace:
        extra["trace"] = backend.last_traces[0]
    return ScenarioResult(
        stack=f"ho-step/{kind}",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=_metrics_from_outcome(outcome, scope),
        extra=extra,
    )


# --------------------------------------------------------------------------- #
# the round-level Theorem 8 cell: Algorithm 4 over a kernel oracle
# --------------------------------------------------------------------------- #


def _translation_f(n: int, f: Optional[int]) -> int:
    """Default resilience: the largest f with both n > 2f and n > 3f.

    ``n > 2f`` is Algorithm 4's own requirement; ``n > 3f`` additionally
    lets the embedded OneThirdRule decide from ``NewHO`` sets of size
    ``n - f``, so the default cell terminates in a fault-free kernel.
    """
    if f is not None:
        return f
    return (n - 1) // 3


def _translation_oracle(
    fault_model: str,
    n: int,
    pi0: Sequence[int],
    rng: SeededRng,
    rounds: int,
    loss_probability: float,
) -> HOOracleBase:
    """The kernel oracle crossed with the standard fault-model overlays."""
    base: HOOracleBase = CounterKernelOracle(n, pi0, rng=rng)
    if fault_model == "fault-free":
        return base
    if fault_model == "crash-stop":
        overlay: HOOracleBase = StaticCrashOracle(n, {n - 1: 3})
    elif fault_model == "crash-recovery":
        down_from = max(2, rounds // 6)
        down_length = max(1, rounds // 6)
        overlay = SequenceOracle(
            n,
            [
                (FaultFreeOracle(n), down_from - 1),
                (StaticCrashOracle(n, {n - 1: 1}), down_length),
                (FaultFreeOracle(n), None),
            ],
        )
    elif fault_model == "lossy":
        overlay = RandomOmissionOracle(n, loss_probability, rng=rng.spawn("overlay"))
    else:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    return IntersectOracle(n, base, overlay)


def _translation_rounds(f: int, rounds: Optional[int]) -> int:
    if rounds is not None:
        return rounds
    return max(60, 12 * (f + 1))


def run_translation(
    fault_model: str,
    n: int = 4,
    seed: int = 0,
    f: Optional[int] = None,
    rounds: Optional[int] = None,
    loss_probability: float = 0.2,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
    keep_trace: bool = False,
) -> ScenarioResult:
    """Run the Theorem 8 translation cell (one seed) on the scalar round path.

    OneThirdRule under Algorithm 4 over a ``P_k`` kernel oracle: the
    kernel ``pi0 = {0..n-f-1}`` hears of itself every round, so every
    macro-round of ``f+1`` kernel rounds yields a space-uniform ``NewHO``
    of at least ``n - f`` processes and the embedded OneThirdRule decides
    (Theorem 8 at round granularity).  The fault-model overlays intersect
    the kernel exactly like the ``ho-round-*`` scenarios' overlays.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    f = _translation_f(n, f)
    rounds = _translation_rounds(f, rounds)
    rng = SeededRng(seed)
    values = _classic_values(n, rng, shuffle_values)
    pi0 = sorted(range(n - f))
    oracle = _translation_oracle(fault_model, n, pi0, rng, rounds, loss_probability)
    scope = sorted(frozenset(pi0) & _scope_for(fault_model, n))
    bank: Optional[MonitorBank] = None
    observers: Sequence[Any] = ()
    if predicates:
        bank = build_monitor_bank(
            n, predicates, pi0=frozenset(scope), stop_after_held=stop_after_held
        )
        observers = (bank,)
    elif stop_after_held is not None:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    algorithm = KernelToUniformTranslation(OneThirdRule(n), f)
    machine = HOMachine(algorithm, oracle, values, observers=observers)
    if run_full_horizon:
        while machine.current_round < rounds and not machine.engine.stop_requested:
            machine.run_round()
        trace = machine.trace
    else:
        trace = machine.run_until_decision(max_rounds=rounds, scope=scope)
    verdict = check_consensus(trace, values, scope=scope)
    extra: Dict[str, Any] = {
        "f": f,
        "rounds": rounds,
        "rounds_per_macro": algorithm.rounds_per_macro,
    }
    if bank is not None:
        extra["predicate_reports"] = bank.reports_json()
        extra["stopped_early"] = bank.stop_requested
    if keep_trace:
        extra["trace"] = trace
    return ScenarioResult(
        stack="ho-theorem8/translation",
        fault_model=fault_model,
        n=n,
        seed=seed,
        verdict=verdict,
        metrics=metrics_from_trace(trace, scope=scope),
        extra=extra,
    )


def build_translation_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    f: Optional[int] = None,
    rounds: Optional[int] = None,
    loss_probability: float = 0.2,
    shuffle_values: bool = True,
    predicates: Optional[Sequence[str]] = None,
    stop_after_held: Optional[int] = None,
    run_full_horizon: bool = False,
) -> CellPlan:
    """Build one Theorem 8 sweep cell as data.

    One task per seed with exactly the translation algorithm and oracle
    stack the scalar :func:`run_translation` of that seed builds.  The
    ``batch`` backend vectorises these cells end to end: the transitions
    through :class:`~repro.predimpl.batched_translation.BatchTranslationKernel`,
    the fault-free environment through
    :class:`~repro.adversaries.counter_batch.CounterKernelBatchDual`.
    """
    if fault_model not in FAULT_MODELS:
        raise ValueError(f"unknown fault model {fault_model!r}; expected one of {FAULT_MODELS}")
    if stop_after_held is not None and not predicates:
        raise ValueError("stop_after_held requires at least one monitored predicate")
    f = _translation_f(n, f)
    rounds = _translation_rounds(f, rounds)
    pi0 = sorted(range(n - f))
    scope = sorted(frozenset(pi0) & _scope_for(fault_model, n))
    tasks: List[ReplicaTask] = []
    for seed in seeds:
        rng = SeededRng(seed)
        values = _classic_values(n, rng, shuffle_values)
        oracle = _translation_oracle(fault_model, n, pi0, rng, rounds, loss_probability)
        tasks.append(
            ReplicaTask(
                seed=seed,
                algorithm=KernelToUniformTranslation(OneThirdRule(n), f),
                oracle=oracle,
                initial_values=values,
            )
        )
    monitor_factory: Optional[Callable[[], Any]] = None
    monitor_spec: Optional[MonitorSpec] = None
    if predicates:
        names = tuple(predicates)
        pi0_set = frozenset(scope)
        monitor_factory = lambda: build_monitor_bank(  # noqa: E731
            n, names, pi0=pi0_set, stop_after_held=stop_after_held
        )
        monitor_spec = MonitorSpec(
            predicates=names, pi0_mask=mask_of(pi0_set), stop_after_held=stop_after_held
        )
    batch = ReplicaBatch(
        n=n,
        tasks=tasks,
        max_rounds=rounds,
        scope_mask=mask_of(scope),
        run_full_horizon=run_full_horizon,
        monitor_factory=monitor_factory,
        monitor_spec=monitor_spec,
    )
    task_values = [task.initial_values for task in tasks]

    def finalize(outcomes: Sequence[Any]) -> List[Dict[str, Any]]:
        return [
            _replica_outcome_dict(outcome, values, scope)
            for outcome, values in zip(outcomes, task_values)
        ]

    return CellPlan(batch=batch, finalize=finalize)


def run_translation_batch(
    fault_model: str,
    n: int = 4,
    seeds: Sequence[int] = (0,),
    backend: str = "auto",
    **kwargs: Any,
) -> List[Dict[str, Any]]:
    """Run one Theorem 8 sweep cell -- all *seeds* -- as one replica batch."""
    plan = build_translation_batch(fault_model, n=n, seeds=seeds, **kwargs)
    return plan.finalize(get_backend(backend).run(plan.batch))


REGISTRY.register_scenario(
    "ho-step-down-otr",
    partial(run_step, kind=DOWN_GOOD),
    monitorable=True,
    batch_runner=partial(run_step_batch, kind=DOWN_GOOD),
    backend_aliases=STEP_BACKEND_ALIASES,
)
REGISTRY.register_scenario(
    "ho-step-arbitrary-otr",
    partial(run_step, kind=ARBITRARY_GOOD),
    monitorable=True,
    batch_runner=partial(run_step_batch, kind=ARBITRARY_GOOD),
    backend_aliases=STEP_BACKEND_ALIASES,
)
REGISTRY.register_scenario(
    "ho-theorem8-translation",
    run_translation,
    monitorable=True,
    batch_runner=run_translation_batch,
    batch_builder=build_translation_batch,
)


__all__ = [
    "STEP_BACKEND_ALIASES",
    "run_step",
    "build_step_batch",
    "run_step_batch",
    "run_translation",
    "build_translation_batch",
    "run_translation_batch",
]
