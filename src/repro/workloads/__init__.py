"""Workloads: scenario generators and the measurement harness behind the benchmarks."""

from .adversarial import (
    DEFAULT_MONITORED_PREDICATES,
    ROUND_FAMILIES,
    run_round_adversary,
    run_round_adversary_monitored,
)
from .batched import (
    CLASSIC_ALGORITHMS,
    run_classic,
    run_classic_batch,
)
from .measure import (
    DEFAULT_BAD_BEHAVIOR,
    DEFAULT_BAD_NETWORK,
    Measurement,
    measure_arbitrary_p2otr,
    measure_corollary4,
    measure_ratio_noninitial_vs_initial,
    measure_theorem3,
    measure_theorem5,
    measure_theorem6,
    measure_theorem7,
)
from .scenarios import (
    FAULT_MODELS,
    STACKS,
    ScenarioResult,
    compare_stacks,
    run_aguilera,
    run_chandra_toueg,
    run_ho_stack,
)
from .theorems import (
    STEP_BACKEND_ALIASES,
    run_step,
    run_step_batch,
    run_translation,
    run_translation_batch,
)

__all__ = [
    "Measurement",
    "DEFAULT_BAD_NETWORK",
    "DEFAULT_BAD_BEHAVIOR",
    "measure_theorem3",
    "measure_theorem5",
    "measure_corollary4",
    "measure_ratio_noninitial_vs_initial",
    "measure_theorem6",
    "measure_theorem7",
    "measure_arbitrary_p2otr",
    "FAULT_MODELS",
    "STACKS",
    "ScenarioResult",
    "run_ho_stack",
    "run_chandra_toueg",
    "run_aguilera",
    "compare_stacks",
    "ROUND_FAMILIES",
    "DEFAULT_MONITORED_PREDICATES",
    "run_round_adversary",
    "run_round_adversary_monitored",
    "CLASSIC_ALGORITHMS",
    "run_classic",
    "run_classic_batch",
    "STEP_BACKEND_ALIASES",
    "run_step",
    "run_step_batch",
    "run_translation",
    "run_translation_batch",
]
