"""Failure-detector oracles: ◇S (crash-stop) and ◇Su (crash-recovery).

The failure-detector model is the baseline the paper argues against
(Section 1, Section 2, Appendix A).  A failure detector is an oracle local
to each process; its output only has to satisfy *eventual* completeness and
accuracy properties, so any finite prefix of bad output is allowed.

The oracles here are *ground-truth based*: they look at the simulator's
actual crash state, but deliberately behave badly (arbitrary suspicions,
noisy epochs) before a configurable stabilisation time.  This mirrors the
standard way failure-detector algorithms are evaluated -- the algorithm must
cope with the bad prefix and exploit the eventual guarantees -- while
keeping runs deterministic.

* :class:`EventuallyStrongDetector` implements ◇S for the crash-stop model:
  after stabilisation it suspects exactly the crashed processes (strong
  completeness + eventual weak accuracy).
* :class:`EventuallyStrongRecoveryDetector` implements ◇Su, the
  crash-recovery detector of Aguilera et al.: its output is a *trust list*
  plus an *epoch number* per trusted process; eventually the trust list
  contains exactly the good (eventually-up) processes and their epochs stop
  increasing.
"""

from __future__ import annotations

# The oracles draw their pre-stabilisation noise from random.Random(seed)
# directly: behavioural tests pin outcomes of this exact draw sequence
# (e.g. that stabilization_time 10 vs 60 yields different decision times at
# seed 0), so re-routing through SeededRng's hashed sub-seeds would silently
# re-roll every detector experiment.  The draws are still seeded, isolated
# per detector instance, and never shared with any other concern.
import random  # repro: noqa[REP001] -- pinned-seed detector noise; see note above

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping

from ..core.types import ProcessId
from ..des.simulator import EventSimulator


class EventuallyStrongDetector:
    """The ◇S failure detector for the crash-stop model.

    ``query`` returns the set of *suspected* processes.  Before
    *stabilization_time* any process may be wrongly suspected (with
    probability *false_suspicion_probability* per query and per process);
    afterwards exactly the crashed processes are suspected.
    """

    def __init__(
        self,
        stabilization_time: float = 0.0,
        false_suspicion_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        if stabilization_time < 0:
            raise ValueError("stabilization_time must be non-negative")
        if not 0.0 <= false_suspicion_probability <= 1.0:
            raise ValueError("false_suspicion_probability must be in [0, 1]")
        self.stabilization_time = stabilization_time
        self.false_suspicion_probability = false_suspicion_probability
        self._rng = random.Random(seed)

    def query(self, simulator: EventSimulator, process: ProcessId) -> FrozenSet[ProcessId]:
        """The set of processes *process* currently suspects."""
        crashed = frozenset(q for q in range(simulator.n) if not simulator.is_up(q))
        if simulator.now >= self.stabilization_time:
            return crashed
        noisy = set(crashed)
        for q in range(simulator.n):
            if q != process and self._rng.random() < self.false_suspicion_probability:
                noisy.add(q)
        return frozenset(noisy)

    def __call__(self, simulator: EventSimulator, process: ProcessId) -> FrozenSet[ProcessId]:
        return self.query(simulator, process)


@dataclass(frozen=True)
class TrustListOutput:
    """The output of ◇Su: a trust list and an epoch number per process."""

    trustlist: FrozenSet[ProcessId]
    epoch: Mapping[ProcessId, int]

    def trusts(self, process: ProcessId) -> bool:
        """Whether *process* is currently trusted."""
        return process in self.trustlist


class EventuallyStrongRecoveryDetector:
    """The ◇Su failure detector for the crash-recovery model (Aguilera et al.).

    ``query`` returns a :class:`TrustListOutput`.  After stabilisation the
    trust list contains exactly the *good* processes (those that are up and
    will stay up given the configured fault schedule) and the epoch of every
    good process stops increasing.  Before stabilisation, trust and epochs
    are noisy.
    """

    def __init__(
        self,
        stabilization_time: float = 0.0,
        mistrust_probability: float = 0.3,
        seed: int = 0,
    ) -> None:
        if stabilization_time < 0:
            raise ValueError("stabilization_time must be non-negative")
        if not 0.0 <= mistrust_probability <= 1.0:
            raise ValueError("mistrust_probability must be in [0, 1]")
        self.stabilization_time = stabilization_time
        self.mistrust_probability = mistrust_probability
        self._rng = random.Random(seed)

    def query(self, simulator: EventSimulator, process: ProcessId) -> TrustListOutput:
        epochs: Dict[ProcessId, int] = {
            q: simulator.crash_count[q] for q in range(simulator.n)
        }
        if simulator.now >= self.stabilization_time:
            good = simulator.eventually_up_processes()
            trusted = frozenset(q for q in good if simulator.is_up(q)) | frozenset(
                {process} if simulator.is_up(process) else set()
            )
            return TrustListOutput(trustlist=trusted, epoch=epochs)
        trusted = set()
        for q in range(simulator.n):
            if simulator.is_up(q) and (
                q == process or self._rng.random() >= self.mistrust_probability
            ):
                trusted.add(q)
            if self._rng.random() < self.mistrust_probability / 2:
                epochs[q] = epochs.get(q, 0) + 1
        return TrustListOutput(trustlist=frozenset(trusted), epoch=epochs)

    def __call__(self, simulator: EventSimulator, process: ProcessId) -> TrustListOutput:
        return self.query(simulator, process)


__all__ = [
    "EventuallyStrongDetector",
    "EventuallyStrongRecoveryDetector",
    "TrustListOutput",
]
