"""Failure-detector baselines (Appendix A of the paper).

* :mod:`repro.failure_detectors.detectors` -- the ◇S and ◇Su oracles;
* :mod:`repro.failure_detectors.chandra_toueg` -- Algorithm 5: consensus
  with ◇S in the crash-stop model (rotating coordinator);
* :mod:`repro.failure_detectors.aguilera` -- Algorithm 6: consensus with
  ◇Su, stable storage and retransmission in the crash-recovery model.
"""

from .aguilera import ACTMessage, AguileraProcess, build_aguilera_processes
from .chandra_toueg import CTMessage, ChandraTouegProcess, build_chandra_toueg_processes
from .detectors import (
    EventuallyStrongDetector,
    EventuallyStrongRecoveryDetector,
    TrustListOutput,
)

__all__ = [
    "EventuallyStrongDetector",
    "EventuallyStrongRecoveryDetector",
    "TrustListOutput",
    "CTMessage",
    "ChandraTouegProcess",
    "build_chandra_toueg_processes",
    "ACTMessage",
    "AguileraProcess",
    "build_aguilera_processes",
]
