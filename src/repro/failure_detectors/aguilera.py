"""The Aguilera-Chen-Toueg crash-recovery consensus algorithm (Algorithm 6).

This is the second baseline of the paper's Appendix A: consensus in the
crash-*recovery* model with stable storage, the ◇Su failure detector (a
trust list with epoch numbers) and lossy links compensated by per-link
retransmission ("s-send" plus a retransmit task).

The point the paper makes with this algorithm is structural: although the
*problem* barely changed (crashes became transient instead of permanent),
the failure-detector solution changes drastically -- a new failure detector,
stable storage writes on the critical path, an explicit retransmission task,
a round-skipping task, and recovery handlers.  Compare with the HO stack,
where Algorithm 1 is reused verbatim and only the predicate-implementation
layer deals with recoveries.  Experiment E8 quantifies the comparison;
:func:`algorithm_complexity_summary` in :mod:`repro.analysis.metrics`
reports the structural metrics.

The implementation follows the published pseudo-code task by task, with the
"wait until" conditions turned into message-driven state checks and the
``retransmit`` / ``skip_round`` tasks turned into periodic timers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core.types import ProcessId
from ..des.simulator import DESProcess, ProcessContext
from .detectors import TrustListOutput


@dataclass(frozen=True)
class ACTMessage:
    """Wire message of the Aguilera-Chen-Toueg algorithm."""

    kind: str  # "newround", "estimate", "newestimate", "ack", "decide"
    round: int = 0
    estimate: Any = None
    timestamp: int = 0


class AguileraProcess(DESProcess):
    """One process of the Aguilera et al. crash-recovery consensus algorithm."""

    #: period between retransmissions of the last message sent per link
    RETRANSMIT_PERIOD = 2.0
    #: period between failure-detector polls of the skip_round task
    FD_POLL_PERIOD = 1.0

    def __init__(
        self,
        process_id: ProcessId,
        n: int,
        initial_value: Any,
        detector_name: str = "default",
    ) -> None:
        super().__init__(process_id, n)
        self.initial_value = initial_value
        self.detector_name = detector_name
        # Volatile state; rebuilt from stable storage on recovery.
        self.round = 1
        self.estimate = initial_value
        self.timestamp = 0
        self.decided: Optional[Any] = None
        self.xmitmsg: Dict[ProcessId, Optional[ACTMessage]] = {}
        self.max_round_seen = 1
        self._estimates: Dict[int, Dict[ProcessId, Tuple[Any, int]]] = {}
        self._acks: Dict[int, Set[ProcessId]] = {}
        self._round_start_fd: Optional[TrustListOutput] = None
        self.messages_sent = 0
        self.stable_writes = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def coordinator(self, round: int) -> ProcessId:
        """The rotating coordinator of *round* (rounds are 1-based)."""
        return (round - 1) % self.n

    def majority(self) -> int:
        return self.n // 2 + 1

    def _store(self, ctx: ProcessContext, **values: Any) -> None:
        for key, value in values.items():
            ctx.stable_store(key, value)
            self.stable_writes += 1

    def _s_send(self, ctx: ProcessContext, destination: ProcessId, message: ACTMessage) -> None:
        """The paper's s-send: remember the message for retransmission, then send."""
        self.xmitmsg[destination] = message
        self.messages_sent += 1
        if destination == self.process_id:
            # "simulate receive m from p": loop the message back locally.
            self.on_message(ctx, self.process_id, message)
        else:
            ctx.send(destination, message)

    def _s_send_all(self, ctx: ProcessContext, message: ACTMessage) -> None:
        for destination in range(self.n):
            self._s_send(ctx, destination, message)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def on_start(self, ctx: ProcessContext) -> None:
        # upon propose(v): store the proposal and fork the tasks.
        self._store(ctx, proposed=True, round=1, estimate=self.initial_value, timestamp=0)
        self._start_tasks(ctx)
        self._start_4phases(ctx)

    def on_recover(self, ctx: ProcessContext) -> None:
        # upon recovery: reload stable state; resume only if undecided.
        self.xmitmsg = {}
        self._estimates = {}
        self._acks = {}
        self.max_round_seen = 1
        decided_value = ctx.stable_load("decided")
        if decided_value is not None:
            self.decided = decided_value
            return
        if not ctx.stable_load("proposed", False):
            return
        self.round = ctx.stable_load("round", 1)
        self.estimate = ctx.stable_load("estimate", self.initial_value)
        self.timestamp = ctx.stable_load("timestamp", 0)
        self.decided = None
        self._start_tasks(ctx)
        self._start_4phases(ctx)

    def _start_tasks(self, ctx: ProcessContext) -> None:
        ctx.set_timer(self.RETRANSMIT_PERIOD, "retransmit")
        ctx.set_timer(self.FD_POLL_PERIOD, "skip-round")

    # ------------------------------------------------------------------ #
    # the 4phases task
    # ------------------------------------------------------------------ #

    def _start_4phases(self, ctx: ProcessContext) -> None:
        if self.decided is not None:
            return
        self._store(ctx, round=self.round)
        self._round_start_fd = ctx.query_failure_detector(self.detector_name)
        coordinator = self.coordinator(self.round)
        if self.process_id == coordinator:
            if self.timestamp != self.round:
                # Phase NEWROUND: ask everyone for their estimates.
                self._s_send_all(ctx, ACTMessage("newround", self.round))
            else:
                # Recovered with an adopted estimate: go straight to NEWESTIMATE.
                self._s_send_all(
                    ctx, ACTMessage("newestimate", self.round, self.estimate)
                )
        # Phase ESTIMATE (participant side).
        if self.timestamp != self.round:
            self._s_send(
                ctx,
                coordinator,
                ACTMessage("estimate", self.round, self.estimate, self.timestamp),
            )
        elif self.process_id != coordinator:
            # timestamp == round means the stable state proves an ACK for this
            # round was already s-sent, but the crash wiped it from the
            # volatile xmitmsg.  Re-issue it so retransmission resumes --
            # otherwise a process recovering right after its ACK stays silent
            # and, once everybody else decided and went quiet, blocks forever.
            # Acks are collected in a set, so the duplicate is harmless.
            self._s_send(ctx, coordinator, ACTMessage("ack", self.round))

    # ------------------------------------------------------------------ #
    # timers: retransmission and skip_round
    # ------------------------------------------------------------------ #

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name == "retransmit":
            self._retransmit(ctx)
            ctx.set_timer(self.RETRANSMIT_PERIOD, "retransmit")
        elif name == "skip-round":
            self._skip_round_check(ctx)
            if self.decided is None:
                ctx.set_timer(self.FD_POLL_PERIOD, "skip-round")

    def _retransmit(self, ctx: ProcessContext) -> None:
        if self.decided is not None:
            return
        for destination, message in self.xmitmsg.items():
            if message is not None and destination != self.process_id:
                self.messages_sent += 1
                ctx.send(destination, message)

    def _skip_round_check(self, ctx: ProcessContext) -> None:
        """The skip_round task: abort the round when the coordinator is no longer viable."""
        if self.decided is not None:
            return
        detector: TrustListOutput = ctx.query_failure_detector(self.detector_name)
        coordinator = self.coordinator(self.round)
        started = self._round_start_fd
        coordinator_failed = not detector.trusts(coordinator)
        epoch_increased = (
            started is not None
            and detector.epoch.get(coordinator, 0) > started.epoch.get(coordinator, 0)
        )
        higher_round_seen = self.max_round_seen > self.round
        if not (coordinator_failed or epoch_increased or higher_round_seen):
            return
        if not detector.trustlist:
            return
        # Pick the smallest round r' > round whose coordinator is trusted and
        # which is at least as large as any round number seen in messages.
        candidate = max(self.round + 1, self.max_round_seen)
        while self.coordinator(candidate) not in detector.trustlist:
            candidate += 1
        self.round = candidate
        self._start_4phases(ctx)

    # ------------------------------------------------------------------ #
    # message handling
    # ------------------------------------------------------------------ #

    def on_message(self, ctx: ProcessContext, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, ACTMessage):
            return
        if payload.kind == "decide":
            self._deliver_decide(ctx, payload.estimate)
            return
        if self.decided is not None:
            # Already decided: answer any other message with the decision.
            self._s_send(ctx, sender, ACTMessage("decide", 0, self.decided))
            return
        self.max_round_seen = max(self.max_round_seen, payload.round)
        if payload.kind == "newround":
            self._handle_newround(ctx, payload)
        elif payload.kind == "estimate":
            self._handle_estimate(ctx, sender, payload)
        elif payload.kind == "newestimate":
            self._handle_newestimate(ctx, sender, payload)
        elif payload.kind == "ack":
            self._handle_ack(ctx, sender, payload)

    def _handle_newround(self, ctx: ProcessContext, payload: ACTMessage) -> None:
        if payload.round != self.round:
            return
        if self.timestamp != self.round:
            self._s_send(
                ctx,
                self.coordinator(self.round),
                ACTMessage("estimate", self.round, self.estimate, self.timestamp),
            )

    def _handle_estimate(self, ctx: ProcessContext, sender: ProcessId, payload: ACTMessage) -> None:
        if self.process_id != self.coordinator(payload.round):
            return
        store = self._estimates.setdefault(payload.round, {})
        store[sender] = (payload.estimate, payload.timestamp)
        if payload.round != self.round or self.timestamp == self.round:
            return
        if len(store) >= self.majority():
            best_timestamp = max(timestamp for _, timestamp in store.values())
            candidates = sorted(
                (estimate for estimate, timestamp in store.values() if timestamp == best_timestamp),
                key=repr,
            )
            self.estimate = candidates[0]
            self.timestamp = self.round
            self._store(ctx, estimate=self.estimate, timestamp=self.timestamp)
            self._s_send_all(ctx, ACTMessage("newestimate", self.round, self.estimate))

    def _handle_newestimate(self, ctx: ProcessContext, sender: ProcessId, payload: ACTMessage) -> None:
        if payload.round != self.round:
            return
        coordinator = self.coordinator(self.round)
        if sender != coordinator:
            return
        if self.process_id != coordinator:
            self.estimate = payload.estimate
            self.timestamp = self.round
            self._store(ctx, estimate=self.estimate, timestamp=self.timestamp)
        self._s_send(ctx, coordinator, ACTMessage("ack", self.round))

    def _handle_ack(self, ctx: ProcessContext, sender: ProcessId, payload: ACTMessage) -> None:
        if self.process_id != self.coordinator(payload.round) or payload.round != self.round:
            return
        acks = self._acks.setdefault(payload.round, set())
        acks.add(sender)
        if len(acks) >= self.majority():
            self._s_send_all(ctx, ACTMessage("decide", self.round, self.estimate))

    def _deliver_decide(self, ctx: ProcessContext, value: Any) -> None:
        if self.decided is None:
            self.decided = value
            self._store(ctx, decided=value)
            ctx.decide(value)


def build_aguilera_processes(
    n: int, initial_values: List[Any], detector_name: str = "default"
) -> List[AguileraProcess]:
    """One :class:`AguileraProcess` per process."""
    if len(initial_values) != n:
        raise ValueError(f"expected {n} initial values, got {len(initial_values)}")
    return [AguileraProcess(p, n, initial_values[p], detector_name) for p in range(n)]


__all__ = ["ACTMessage", "AguileraProcess", "build_aguilera_processes"]
