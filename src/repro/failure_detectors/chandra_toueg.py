"""The Chandra-Toueg ◇S consensus algorithm for the crash-stop model (Algorithm 5).

This is the baseline the paper contrasts with the HO approach: the rotating
coordinator algorithm of Chandra & Toueg, which solves consensus in an
asynchronous system augmented with the ◇S failure detector, a majority of
correct processes, and **reliable** channels.  Each round has four phases:

1. every process sends its timestamped estimate to the round's coordinator;
2. the coordinator waits for a majority of estimates and picks the one with
   the largest timestamp;
3. every process waits for the coordinator's new estimate *or* suspects the
   coordinator (the failure-detector query), answering with ACK or NACK;
4. the coordinator waits for a majority of answers; if they are all ACKs it
   reliably broadcasts the decision.

The dependence on reliable links and on the crash-*stop* assumption is the
point of experiment E8: the same algorithm breaks (blocks forever or loses
its quorum) under message loss or crash-recovery, whereas the HO stack of
Section 4 is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.types import ProcessId
from ..des.simulator import DESProcess, ProcessContext


@dataclass(frozen=True)
class CTMessage:
    """Wire message of the Chandra-Toueg algorithm."""

    kind: str  # "estimate", "newestimate", "ack", "nack", "decide"
    round: int = 0
    estimate: Any = None
    timestamp: int = 0


class ChandraTouegProcess(DESProcess):
    """One process of the Chandra-Toueg ◇S rotating-coordinator algorithm."""

    #: period (simulated time) between failure-detector polls in phase 3
    FD_POLL_PERIOD = 1.0

    def __init__(
        self,
        process_id: ProcessId,
        n: int,
        initial_value: Any,
        detector_name: str = "default",
    ) -> None:
        super().__init__(process_id, n)
        self.initial_value = initial_value
        self.detector_name = detector_name
        # Volatile algorithm state (crash-stop: nothing survives a crash).
        self.estimate = initial_value
        self.timestamp = 0
        self.round = 0
        self.decided: Optional[Any] = None
        self.waiting_phase: Optional[int] = None
        self._phase1_msgs: Dict[int, Dict[ProcessId, Tuple[Any, int]]] = {}
        self._phase3_answers: Dict[int, Dict[ProcessId, bool]] = {}
        self._newestimates: Dict[int, Any] = {}
        self._relayed_decide = False
        self.messages_sent = 0

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #

    def coordinator(self, round: int) -> ProcessId:
        """The rotating coordinator of *round* (rounds are 1-based)."""
        return (round - 1) % self.n

    def majority(self) -> int:
        """The quorum size ceil((n+1)/2)."""
        return self.n // 2 + 1

    def _send(self, ctx: ProcessContext, destination: ProcessId, message: CTMessage) -> None:
        self.messages_sent += 1
        ctx.send(destination, message)

    def _broadcast(self, ctx: ProcessContext, message: CTMessage) -> None:
        for destination in range(self.n):
            self._send(ctx, destination, message)

    # ------------------------------------------------------------------ #
    # round machinery
    # ------------------------------------------------------------------ #

    def on_start(self, ctx: ProcessContext) -> None:
        self._start_round(ctx, 1)
        ctx.set_timer(self.FD_POLL_PERIOD, "fd-poll")

    def _start_round(self, ctx: ProcessContext, round: int) -> None:
        if self.decided is not None:
            return
        self.round = round
        coordinator = self.coordinator(round)
        # Phase 1: send the timestamped estimate to the coordinator.
        self._send(
            ctx,
            coordinator,
            CTMessage("estimate", round, self.estimate, self.timestamp),
        )
        # Phase 2 is the coordinator's wait; phase 3 is everybody's wait.
        self.waiting_phase = 2 if self.process_id == coordinator else 3
        self._maybe_finish_phase2(ctx)
        self._maybe_finish_phase3(ctx)

    def on_timer(self, ctx: ProcessContext, name: str) -> None:
        if name != "fd-poll" or self.decided is not None:
            return
        if self.waiting_phase == 3:
            suspects = ctx.query_failure_detector(self.detector_name)
            coordinator = self.coordinator(self.round)
            if coordinator in suspects and self.round not in self._newestimates:
                # Suspect the coordinator: NACK and move on to the next round.
                self._send(ctx, coordinator, CTMessage("nack", self.round))
                self._start_round(ctx, self.round + 1)
        ctx.set_timer(self.FD_POLL_PERIOD, "fd-poll")

    def on_message(self, ctx: ProcessContext, sender: ProcessId, payload: Any) -> None:
        if not isinstance(payload, CTMessage):
            return
        if payload.kind == "decide":
            self._deliver_decide(ctx, payload.estimate)
            return
        if self.decided is not None:
            return
        if payload.kind == "estimate":
            store = self._phase1_msgs.setdefault(payload.round, {})
            store[sender] = (payload.estimate, payload.timestamp)
            self._maybe_finish_phase2(ctx)
        elif payload.kind == "newestimate":
            self._newestimates[payload.round] = payload.estimate
            self._maybe_finish_phase3(ctx)
        elif payload.kind in ("ack", "nack"):
            answers = self._phase3_answers.setdefault(payload.round, {})
            answers[sender] = payload.kind == "ack"
            self._maybe_finish_phase4(ctx)

    # Phase 2: the coordinator selects the estimate with the largest timestamp.
    def _maybe_finish_phase2(self, ctx: ProcessContext) -> None:
        if self.waiting_phase != 2 or self.process_id != self.coordinator(self.round):
            return
        received = self._phase1_msgs.get(self.round, {})
        if len(received) < self.majority():
            return
        best_timestamp = max(timestamp for _, timestamp in received.values())
        candidates = sorted(
            (estimate for estimate, timestamp in received.values() if timestamp == best_timestamp),
            key=repr,
        )
        self.estimate = candidates[0]
        self._broadcast(ctx, CTMessage("newestimate", self.round, self.estimate))
        self.waiting_phase = 3
        self._maybe_finish_phase3(ctx)

    # Phase 3: adopt the coordinator's estimate and ACK it.
    def _maybe_finish_phase3(self, ctx: ProcessContext) -> None:
        if self.waiting_phase != 3:
            return
        if self.round not in self._newestimates:
            return
        coordinator = self.coordinator(self.round)
        self.estimate = self._newestimates[self.round]
        self.timestamp = self.round
        self._send(ctx, coordinator, CTMessage("ack", self.round))
        if self.process_id == coordinator:
            self.waiting_phase = 4
            self._maybe_finish_phase4(ctx)
        else:
            self._start_round(ctx, self.round + 1)

    # Phase 4: the coordinator counts ACKs and reliably broadcasts the decision.
    def _maybe_finish_phase4(self, ctx: ProcessContext) -> None:
        if self.waiting_phase != 4 or self.process_id != self.coordinator(self.round):
            return
        answers = self._phase3_answers.get(self.round, {})
        if len(answers) < self.majority():
            return
        acks = sum(1 for positive in answers.values() if positive)
        if acks >= self.majority():
            self._broadcast(ctx, CTMessage("decide", self.round, self.estimate))
            self._deliver_decide(ctx, self.estimate)
        else:
            self._start_round(ctx, self.round + 1)

    # Reliable broadcast of the decision: relay on first delivery, then decide.
    def _deliver_decide(self, ctx: ProcessContext, value: Any) -> None:
        if not self._relayed_decide:
            self._relayed_decide = True
            self._broadcast(ctx, CTMessage("decide", self.round, value))
        if self.decided is None:
            self.decided = value
            ctx.decide(value)


def build_chandra_toueg_processes(
    n: int, initial_values: List[Any], detector_name: str = "default"
) -> List[ChandraTouegProcess]:
    """One :class:`ChandraTouegProcess` per process."""
    if len(initial_values) != n:
        raise ValueError(f"expected {n} initial values, got {len(initial_values)}")
    return [
        ChandraTouegProcess(p, n, initial_values[p], detector_name) for p in range(n)
    ]


__all__ = ["CTMessage", "ChandraTouegProcess", "build_chandra_toueg_processes"]
